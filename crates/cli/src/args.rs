//! Minimal command-line argument parser.
//!
//! No external parsing crate is on the allowed dependency list, and the
//! CLI's needs are modest: positional arguments, `--flag value` pairs,
//! and boolean `--switch`es. Unknown flags are an error (typos should
//! never be silently ignored on a tool that can overwrite files).

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, flags by name.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Specification of what a subcommand accepts.
#[derive(Clone, Copy, Debug)]
pub struct Spec<'a> {
    /// Flags that take a value (`--eps 0.025`).
    pub value_flags: &'a [&'a str],
    /// Boolean switches (`--degrees`).
    pub switches: &'a [&'a str],
}

impl Args {
    /// Parse `tokens` against `spec`.
    pub fn parse<I, S>(tokens: I, spec: Spec<'_>) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut it = tokens.into_iter().map(Into::into).peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if spec.switches.contains(&name) {
                    out.switches.push(name.to_string());
                } else if spec.value_flags.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} expects a value"))?;
                    if out.flags.insert(name.to_string(), value).is_some() {
                        return Err(format!("flag --{name} given twice"));
                    }
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// Positional argument `i`, or an error naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// Raw flag value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a switch was passed.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parse a flag into any `FromStr` type, with a default.
    pub fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {raw:?}")),
        }
    }

    /// Required flag, parsed.
    pub fn flag_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .flag(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("flag --{name}: cannot parse {raw:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: Spec<'_> = Spec {
        value_flags: &["eps", "out", "seed"],
        switches: &["degrees"],
    };

    #[test]
    fn mixes_positionals_flags_switches() {
        let a = Args::parse(["g.bin", "--eps", "0.05", "--degrees", "idx.bin"], SPEC).unwrap();
        assert_eq!(a.positional(0, "graph").unwrap(), "g.bin");
        assert_eq!(a.positional(1, "index").unwrap(), "idx.bin");
        assert_eq!(a.flag("eps"), Some("0.05"));
        assert!(a.switch("degrees"));
        assert!(!a.switch("missing"));
    }

    #[test]
    fn rejects_unknown_and_duplicate_flags() {
        assert!(Args::parse(["--bogus", "1"], SPEC).is_err());
        assert!(Args::parse(["--eps", "1", "--eps", "2"], SPEC).is_err());
        assert!(
            Args::parse(["--eps"], SPEC).is_err(),
            "value flag without value"
        );
    }

    #[test]
    fn typed_flag_parsing() {
        let a = Args::parse(["--eps", "0.1", "--seed", "42"], SPEC).unwrap();
        assert_eq!(a.flag_parse("eps", 0.5f64).unwrap(), 0.1);
        assert_eq!(a.flag_parse("seed", 0u64).unwrap(), 42);
        assert_eq!(a.flag_parse::<u64>("missingflag", 7).unwrap(), 7);
        assert!(a.flag_required::<f64>("out").is_err());
        let bad = Args::parse(["--eps", "abc"], SPEC).unwrap();
        assert!(bad.flag_parse("eps", 0.0f64).is_err());
    }

    #[test]
    fn missing_positional_is_named_in_error() {
        let a = Args::parse(Vec::<String>::new(), SPEC).unwrap();
        let err = a.positional(0, "graph").unwrap_err();
        assert!(err.contains("graph"));
    }
}
