//! `sling` — command-line interface to the SLING SimRank reproduction.
//!
//! See [`commands::USAGE`] or run `sling help` for the command list.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
