//! `sling` — command-line interface to the SLING SimRank reproduction.
//!
//! See [`commands::USAGE`] or run `sling help` for the command list.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        // Write without panicking on EPIPE so `sling ... | head` exits
        // quietly once the reader closes the pipe.
        Ok(report) => {
            use std::io::Write as _;
            let stdout = std::io::stdout();
            let _ = writeln!(stdout.lock(), "{report}");
        }
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
