//! Subcommand implementations.
//!
//! Every command is a plain function from parsed [`Args`] to a `String`
//! report (printed by `main`), so the full CLI surface is unit-testable
//! without spawning processes.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use sling_core::disk_query::BufferedDiskStore;
use sling_core::lifecycle::{GenId, GenerationStore};
use sling_core::obs::{MetricsRegistry, StageNanos};
use sling_core::out_of_core::DiskHpStore;
use sling_core::workload::{
    adversarial_cold_scan, characterize, diurnal_burst, read_trace_file, read_trace_tolerant,
    zipf_sweep, SynthOpts, Trace, TraceKey, TraceRecord, TraceVerb, TraceWriter,
};
use sling_core::{
    Admission, HpStore, QueryEngine, QueryWorkspace, ShardedResultCache, SharedEngine, SlingConfig,
    SlingError, SlingIndex,
};
use sling_graph::traversal::double_sweep_diameter;
use sling_graph::{
    binfmt, components, datasets, edgelist, generators, DegreeDistribution, DegreeKind, DiGraph,
    GraphStats, NodeId,
};
use sling_server::{
    serve, serve_reloadable, Client, Listener, ReloadableEngine, ServerConfig, ServerReport,
};

use crate::args::{Args, Spec};

/// Top-level usage text.
pub const USAGE: &str = "sling — SimRank queries with the SLING index (SIGMOD 2016 reproduction)

USAGE: sling <command> [args]

COMMANDS:
  datasets                                list the bundled synthetic dataset suite
  generate --dataset NAME --out FILE      materialize a suite dataset
  generate --ba N,K | --er N,M | --ws N,K,BETA | --grid R,C [--seed S] --out FILE
  stats GRAPH [--degrees]                 structural statistics of a graph file
  build GRAPH --out FILE [--eps E] [--c C] [--seed S] [--threads T]
  query GRAPH INDEX pair U V              one SimRank score
  query GRAPH INDEX source U [--top K]    single-source scores / top-k
  join GRAPH INDEX --tau T [--limit L]    all pairs with score >= T

  query and join accept --index-backend {mem,mmap,mmap-compressed,disk}:
    mem              decode the whole index into memory (default)
    mmap             zero-copy memory-mapped reads from a SLNGIDX1 file
    mmap-compressed  block-decoded memory-mapped reads from a SLNGIDX2/3
                     file (see compact), with a decoded-block cache
    disk             positioned reads (any format) with an LRU buffer
                     pool (--buffer-entries N)
  All backends return identical scores (bit-identical for lossless files).
  compact INDEX --out FILE [--quantize] [--block-entries N] [--format v2|v3]
                                          convert to a block-compressed format
                                          (SLNGIDX3 by default) with a
                                          before/after byte report (lossless by
                                          default)
  inspect INDEX                           header version, per-section byte
                                          breakdown, and compression ratio
  batch GRAPH INDEX --random N | --pairs FILE
        [--threads T] [--cache CAP] [--seed S] [--index-backend B]
                                          bulk single-pair scoring through the
                                          shared engine + sharded result cache
  serve GRAPH INDEX [--listen ADDR] [--unix PATH] [--workers N]
        [--cache CAP] [--shards S] [--max-connections N] [--index-backend B]
        [--slow-query-us U] [--deadline-us D] [--shed-queue-depth Q]
        [--shed-pending-bytes P] [--faults SPEC]
        [--metrics-snapshot FILE [--metrics-snapshot-ms N]]
        [--record FILE [--record-sample N]] [--cache-admission lru|tinylfu]
                                          long-lived epoll-based query server
                                          (wire protocol: see sling-server docs);
                                          queries at or above U microseconds land
                                          in the SLOWLOG ring (default 10000,
                                          0 disables); queries buffered longer
                                          than D microseconds answer ERR
                                          deadline, and past Q queued requests
                                          or P pending bytes answer ERR
                                          overloaded (0 = off); --faults
                                          installs a deterministic fault
                                          schedule (see sling-core faults docs;
                                          also read from SLING_FAULTS);
                                          --metrics-snapshot dumps the metrics
                                          registry to FILE as JSON every N ms
                                          (default 1000); --record streams a
                                          SLNGTRACE traffic trace to FILE
                                          (every Nth query with
                                          --record-sample, default 1) without
                                          ever blocking the event loop;
                                          --cache-admission picks the result
                                          cache's admission policy (default
                                          lru; tinylfu is frequency-aware)
  serve --index-root DIR [GRAPH] [--watch] [--watch-ms N]
        [--rollback-errors E] [..]
                                          serve the promoted generation of an
                                          index root and hot-swap (zero dropped
                                          requests) when a new one is promoted;
                                          GRAPH is the fallback for generations
                                          without a co-located graph snapshot;
                                          after E runtime corruption/IO errors
                                          (default 8, 0 = off) the serving
                                          generation is quarantined and the
                                          server rolls back to the newest
                                          verified prior generation
  generations ROOT [--gc KEEP]            list/inspect the generations of an
                                          index root; --gc removes retired ones
                                          (keeping KEEP rollback candidates)
  promote ROOT [--gen N | --index FILE [--graph FILE]]
                                          verify + atomically promote a
                                          generation to CURRENT; --index first
                                          publishes the file as a new generation
  client MODE [..] --connect HOST:PORT | --unix PATH
                                          pair U V | source U | topk U K |
                                          stats | metrics | slowlog |
                                          reload [--force] | ping | shutdown
                                          (--force lifts a rollback quarantine)
  metrics --connect HOST:PORT | --unix PATH [--slow]
                                          scrape a running server's Prometheus
                                          text exposition (METRICS verb);
                                          --slow prints the slow-query ring
                                          instead
  record --connect HOST:PORT | --unix PATH --out FILE
        [--duration-ms D] [--poll-ms P] [--max-records N]
                                          capture a SLNGTRACE traffic trace
                                          from a server running with --record
                                          (pull-based over the TRACE verb;
                                          written to FILE.tmp, renamed when
                                          complete)
  replay GRAPH INDEX TRACE | --synth zipf|diurnal|scan
        [--records N] [--nodes N] [--seed S] [--speed X]
        [--cache CAP] [--cache-admission lru|tinylfu] [--spot-check N]
                                          replay a captured or synthesized
                                          trace through the local engine at X×
                                          recorded pacing (0 = flat out);
                                          every Nth pair answer is recomputed
                                          uncached and must be bit-identical
  replay GRAPH INDEX --suite [--out FILE]
                                          pinned admission-policy comparison
                                          (three synthetic scenarios; the
                                          adversarial scan under both lru and
                                          tinylfu); --out writes the
                                          machine-readable BENCH_replay.json
  traffic-report TRACE                    SkyServer-style characterization of
                                          a trace: verb mix, key-popularity
                                          skew, burstiness, and hit-rate-vs-
                                          cache-size curves per policy
  bench-serve GRAPH INDEX [--threads T] [--requests N] [--hot F]
        [--hot-keys K] [--connections C] [--workers W] [--cache CAP]
        [--max-connections N] [--index-backend B] [--quick] [--trace]
        [--out FILE] [--seed S]
                                          drive an in-process server with
                                          concurrent skewed client traffic;
                                          --connections holds a mostly-idle
                                          fleet open during the run; --out runs
                                          the worker/connection-scaling sweep
                                          (TCP + Unix, ≥1k idle connections)
                                          and writes the machine-readable
                                          BENCH_serve.json perf baseline
  bench-query GRAPH INDEX [--quick] [--out FILE] [--pairs N]
        [--sources N] [--threads T] [--seed S] [--trace]
                                          pinned single-pair / single-source /
                                          top-k / batch workloads across all
                                          seven storage backends; writes the
                                          machine-readable BENCH_query.json
                                          perf baseline (default --out);
                                          --trace appends the per-stage
                                          kernel-time breakdown table
  transform GRAPH PASS --out FILE [--k K] largest-wcc | transpose | k-core | peel-dangling
  ppr GRAPH SOURCE [--alpha A] [--top K]  personalized PageRank ranking
  audit GRAPH INDEX [--pairs N] [--mc M] [--exact]
                                          empirically verify the eps guarantee

Graph files may be SNAP-style text edge lists or the binary format
written by generate (detected by magic bytes).";

/// Load a graph from either the binary format or a text edge list.
pub fn load_graph(path: &str) -> Result<DiGraph, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(b"SLNGGRF1") {
        binfmt::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        edgelist::parse(bytes.as_slice(), edgelist::ParseOptions::default())
            .map_err(|e| format!("{path}: {e}"))
    }
}

fn save_graph(g: &DiGraph, path: &str, text: bool) -> Result<(), String> {
    if text {
        edgelist::save_path(g, path).map_err(|e| format!("{path}: {e}"))
    } else {
        binfmt::save_path(g, path).map_err(|e| format!("{path}: {e}"))
    }
}

fn parse_tuple<const N: usize>(raw: &str, flag: &str) -> Result<[f64; N], String> {
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() != N {
        return Err(format!("--{flag} expects {N} comma-separated values"));
    }
    let mut out = [0.0; N];
    for (dst, part) in out.iter_mut().zip(parts) {
        *dst = part
            .trim()
            .parse()
            .map_err(|_| format!("--{flag}: cannot parse {part:?}"))?;
    }
    Ok(out)
}

/// `sling datasets`
pub fn cmd_datasets(_args: &Args) -> Result<String, String> {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:<12} {:>9} {:>11} {:<9} tier",
        "name", "stands for", "paper n", "paper m", "type"
    )
    .unwrap();
    for d in datasets::suite() {
        writeln!(
            out,
            "{:<16} {:<12} {:>9} {:>11} {:<9} {:?}",
            d.name,
            d.paper_name,
            d.paper_n,
            d.paper_m,
            if d.directed { "directed" } else { "undirected" },
            d.tier,
        )
        .unwrap();
    }
    Ok(out)
}

/// `sling generate`
pub fn cmd_generate(args: &Args) -> Result<String, String> {
    let out_path: String = args.flag_required("out")?;
    let seed: u64 = args.flag_parse("seed", 1u64)?;
    let text = args.switch("text");
    let g = if let Some(name) = args.flag("dataset") {
        datasets::by_name(name)
            .ok_or_else(|| format!("unknown dataset {name:?}; run `sling datasets`"))?
            .build()
    } else if let Some(raw) = args.flag("ba") {
        let [n, k] = parse_tuple::<2>(raw, "ba")?;
        generators::barabasi_albert(n as usize, k as usize, seed).map_err(|e| e.to_string())?
    } else if let Some(raw) = args.flag("er") {
        let [n, m] = parse_tuple::<2>(raw, "er")?;
        generators::erdos_renyi_directed(n as usize, m as usize, seed).map_err(|e| e.to_string())?
    } else if let Some(raw) = args.flag("ws") {
        let [n, k, beta] = parse_tuple::<3>(raw, "ws")?;
        generators::watts_strogatz(n as usize, k as usize, beta, seed).map_err(|e| e.to_string())?
    } else if let Some(raw) = args.flag("grid") {
        let [r, c] = parse_tuple::<2>(raw, "grid")?;
        generators::grid_graph(r as usize, c as usize)
    } else {
        return Err("generate needs --dataset, --ba, --er, --ws, or --grid".to_string());
    };
    save_graph(&g, &out_path, text)?;
    Ok(format!(
        "wrote {} (n = {}, m = {})",
        out_path,
        g.num_nodes(),
        g.num_edges()
    ))
}

/// `sling stats`
pub fn cmd_stats(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "graph")?;
    let g = load_graph(path)?;
    let stats = GraphStats::compute(&g);
    let (wcc_labels, wcc_count) = components::weakly_connected_components(&g);
    let largest = components::largest_component_size(&wcc_labels, wcc_count);
    let (_, scc_count) = components::strongly_connected_components(&g);
    let mut out = String::new();
    writeln!(out, "{stats}").unwrap();
    writeln!(
        out,
        "wcc={wcc_count} (largest {largest}) scc={scc_count} diameter>={}",
        double_sweep_diameter(&g, NodeId(0)),
    )
    .unwrap();
    if args.switch("degrees") {
        for kind in [DegreeKind::In, DegreeKind::Out] {
            let d = DegreeDistribution::compute(&g, kind);
            writeln!(
                out,
                "{:?}-degree: mean={:.2} median={} p90={} p99={} max={} gini={:.3}",
                kind,
                d.mean(),
                d.median(),
                d.quantile(0.9),
                d.quantile(0.99),
                d.max(),
                d.gini(),
            )
            .unwrap();
        }
    }
    Ok(out)
}

/// `sling build`
pub fn cmd_build(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let out_path: String = args.flag_required("out")?;
    let c: f64 = args.flag_parse("c", 0.6)?;
    let eps: f64 = args.flag_parse("eps", 0.025)?;
    let seed: u64 = args.flag_parse("seed", 1u64)?;
    let threads: usize = args.flag_parse("threads", 1usize)?;
    let g = load_graph(graph_path)?;
    let config = SlingConfig::from_epsilon(c, eps)
        .with_seed(seed)
        .with_threads(threads);
    let start = std::time::Instant::now();
    let index = SlingIndex::build(&g, &config).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let bytes = index.to_bytes();
    std::fs::write(&out_path, &bytes).map_err(|e| format!("{out_path}: {e}"))?;
    Ok(format!(
        "built index: n = {}, {} bytes on disk, {:.2?} build time (eps = {eps}, c = {c})",
        index.num_nodes(),
        bytes.len(),
        elapsed,
    ))
}

fn load_index(graph: &DiGraph, path: &str) -> Result<SlingIndex, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    SlingIndex::from_bytes(graph, &bytes).map_err(|e| e.to_string())
}

/// Storage backend selected by `--index-backend`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum IndexBackend {
    Mem,
    Mmap,
    MmapCompressed,
    Disk,
}

fn parse_backend(args: &Args) -> Result<IndexBackend, String> {
    match args.flag("index-backend").unwrap_or("mem") {
        "mem" => Ok(IndexBackend::Mem),
        "mmap" => Ok(IndexBackend::Mmap),
        "mmap-compressed" => Ok(IndexBackend::MmapCompressed),
        "disk" => Ok(IndexBackend::Disk),
        other => Err(format!(
            "unknown --index-backend {other:?} (mem|mmap|mmap-compressed|disk)"
        )),
    }
}

/// Run `f` against a query engine over the selected backend. The three
/// backends serve the same persisted index and return identical scores;
/// only the residency profile differs (full decode vs page cache vs
/// buffer pool).
fn with_backend<R>(
    backend: IndexBackend,
    graph: &DiGraph,
    index_path: &str,
    buffer_entries: usize,
    f: impl Fn(&QueryEngine<'_, &dyn HpStore>) -> Result<R, String>,
) -> Result<R, String> {
    match backend {
        IndexBackend::Mem => {
            let index = load_index(graph, index_path)?;
            f(&index.query_engine().erase())
        }
        IndexBackend::Mmap => {
            let engine = QueryEngine::open_mmap(graph, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            f(&engine.erase())
        }
        IndexBackend::MmapCompressed => {
            let engine = QueryEngine::open_mmap_compressed(graph, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            f(&engine.erase())
        }
        IndexBackend::Disk => {
            let store =
                DiskHpStore::open(graph, index_path).map_err(|e| format!("{index_path}: {e}"))?;
            let buffered = BufferedDiskStore::new(&store, buffer_entries);
            f(&buffered.query_engine().erase())
        }
    }
}

fn parse_node(raw: &str, n: usize) -> Result<NodeId, String> {
    let id: u32 = raw.parse().map_err(|_| format!("bad node id {raw:?}"))?;
    if (id as usize) < n {
        Ok(NodeId(id))
    } else {
        Err(format!("node {id} out of range (n = {n})"))
    }
}

/// `sling query`
pub fn cmd_query(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let mode = args.positional(2, "pair|source")?;
    let backend = parse_backend(args)?;
    let buffer_entries: usize = args.flag_parse("buffer-entries", 1usize << 20)?;
    let g = load_graph(graph_path)?;
    match mode {
        "pair" => {
            let u = parse_node(args.positional(3, "u")?, g.num_nodes())?;
            let v = parse_node(args.positional(4, "v")?, g.num_nodes())?;
            with_backend(backend, &g, index_path, buffer_entries, |engine| {
                let start = std::time::Instant::now();
                let s = engine.single_pair(&g, u, v).map_err(|e| e.to_string())?;
                Ok(format!(
                    "s({}, {}) = {s:.6}   [{:.1?}, {backend:?} backend]",
                    u.0,
                    v.0,
                    start.elapsed()
                ))
            })
        }
        "source" => {
            let u = parse_node(args.positional(3, "u")?, g.num_nodes())?;
            let k: usize = args.flag_parse("top", 10usize)?;
            with_backend(backend, &g, index_path, buffer_entries, |engine| {
                let start = std::time::Instant::now();
                let top = engine.top_k(&g, u, k).map_err(|e| e.to_string())?;
                let elapsed = start.elapsed();
                let mut out = String::new();
                writeln!(
                    out,
                    "top {} similar to node {}   [{:.1?}, {backend:?} backend]",
                    k, u.0, elapsed
                )
                .unwrap();
                for (v, s) in top {
                    writeln!(out, "  {:>8}  {s:.6}", v.0).unwrap();
                }
                Ok(out)
            })
        }
        other => Err(format!("unknown query mode {other:?} (pair|source)")),
    }
}

/// `sling join`
pub fn cmd_join(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let tau: f64 = args.flag_required("tau")?;
    let limit: usize = args.flag_parse("limit", 50usize)?;
    let backend = parse_backend(args)?;
    let buffer_entries: usize = args.flag_parse("buffer-entries", 1usize << 20)?;
    let g = load_graph(graph_path)?;
    with_backend(backend, &g, index_path, buffer_entries, |engine| {
        let pairs = engine
            .threshold_join(&g, tau, sling_core::join::JoinStrategy::InvertedLists)
            .map_err(|e| e.to_string())?;
        let mut out = String::new();
        writeln!(out, "{} pairs with s >= {tau}", pairs.len()).unwrap();
        for p in pairs.iter().take(limit) {
            writeln!(out, "  ({:>6}, {:>6})  {:.6}", p.u.0, p.v.0, p.score).unwrap();
        }
        if pairs.len() > limit {
            writeln!(out, "  ... {} more (raise --limit)", pairs.len() - limit).unwrap();
        }
        Ok(out)
    })
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Deterministic random node pair (excluding self-pairs when n > 1).
fn random_pair(state: &mut u64, n: u32) -> (u32, u32) {
    let u = (xorshift(state) % n as u64) as u32;
    let v = (xorshift(state) % n as u64) as u32;
    if u == v && n > 1 {
        (u, (v + 1) % n)
    } else {
        (u, v)
    }
}

fn format_cache_stats(stats: sling_core::CacheStats) -> String {
    format!(
        "cache: {} hits, {} misses, {} evictions, hit rate {:.2}%",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate() * 100.0
    )
}

fn format_server_report(prefix: &str, report: &ServerReport) -> String {
    let mut out = format!(
        "{prefix}: served {} queries (per-worker: {})",
        report.total_served(),
        report
            .served_per_worker
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    let gen = &report.generation;
    let _ = write!(
        out,
        "\nindex generation: {} (epoch {}, {} swaps{}{})",
        gen.generation,
        gen.epoch,
        gen.swaps,
        if gen.reload_failures > 0 {
            format!(", {} failed reloads", gen.reload_failures)
        } else {
            String::new()
        },
        if gen.last_swap_unix_ms > 0 {
            format!(", last swap at unix_ms {}", gen.last_swap_unix_ms)
        } else {
            String::new()
        },
    );
    if report.latency.count > 0 {
        let _ = write!(
            out,
            "\nserver latency ({} samples): p50={:.1}us p99={:.1}us p999={:.1}us",
            report.latency.count,
            report.latency.p50_us,
            report.latency.p99_us,
            report.latency.p999_us,
        );
    }
    if !report.evloop_wakeups_per_worker.is_empty() {
        let join = |counters: &[u64]| {
            counters
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = write!(
            out,
            "\nevent loops: wakeups per worker: {}; turns per worker: {}{}{}",
            join(&report.evloop_wakeups_per_worker),
            join(&report.evloop_turns_per_worker),
            if report.open_connections > 0 {
                format!("; {} connections still open", report.open_connections)
            } else {
                String::new()
            },
            if report.rejected_connections > 0 {
                format!(
                    "; {} connections rejected (busy)",
                    report.rejected_connections
                )
            } else {
                String::new()
            },
        );
    }
    if let Some(stats) = report.cache {
        let _ = write!(out, "\n{}", format_cache_stats(stats));
    }
    out
}

/// `sling batch` — bulk single-pair scoring through the owned
/// [`SharedEngine`] API, memoized in a [`ShardedResultCache`] unless
/// `--cache 0`.
pub fn cmd_batch(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let backend = parse_backend(args)?;
    let threads: usize = args.flag_parse("threads", 4usize)?;
    let cache_cap: usize = args.flag_parse("cache", 1usize << 16)?;
    let seed: u64 = args.flag_parse("seed", 1u64)?;
    let g = load_graph(graph_path)?;
    let n = g.num_nodes() as u32;
    if n == 0 {
        return Err("cannot batch-query an empty graph".to_string());
    }
    let pairs: Vec<(NodeId, NodeId)> = if let Some(file) = args.flag("pairs") {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (u, v) = (it.next(), it.next());
            let (Some(u), Some(v)) = (u, v) else {
                return Err(format!("{file}:{}: expected `u v`", lineno + 1));
            };
            out.push((parse_node(u, g.num_nodes())?, parse_node(v, g.num_nodes())?));
        }
        out
    } else {
        let count: usize = args.flag_parse("random", 0usize)?;
        if count == 0 {
            return Err("batch needs --random N or --pairs FILE".to_string());
        }
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                let (u, v) = random_pair(&mut state, n);
                (NodeId(u), NodeId(v))
            })
            .collect()
    };
    match backend {
        IndexBackend::Mem => {
            let index = load_index(&g, index_path)?;
            run_batch(index.into_shared_engine(), &g, &pairs, threads, cache_cap)
        }
        IndexBackend::Mmap => {
            let engine = SharedEngine::open_mmap(&g, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            run_batch(engine, &g, &pairs, threads, cache_cap)
        }
        IndexBackend::MmapCompressed => {
            let engine = SharedEngine::open_mmap_compressed(&g, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            run_batch(engine, &g, &pairs, threads, cache_cap)
        }
        IndexBackend::Disk => {
            let store =
                DiskHpStore::open(&g, index_path).map_err(|e| format!("{index_path}: {e}"))?;
            run_batch(store.into_shared_engine(), &g, &pairs, threads, cache_cap)
        }
    }
}

fn run_batch<S: HpStore + Sync>(
    engine: SharedEngine<S>,
    g: &DiGraph,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
    cache_cap: usize,
) -> Result<String, String> {
    // Canonicalize up front so the cached and cacheless paths compute
    // the same (min, max) orientation — SimRank is symmetric, but float
    // merge order is not, and answers must not depend on --cache.
    let pairs: Vec<(NodeId, NodeId)> = pairs
        .iter()
        .map(|&(u, v)| if u.0 <= v.0 { (u, v) } else { (v, u) })
        .collect();
    let pairs = &pairs[..];
    let start = std::time::Instant::now();
    let (scores, cache_line) = if cache_cap > 0 {
        let cache = ShardedResultCache::with_capacity(cache_cap);
        let scores = engine
            .batch_single_pair_cached(g, pairs, threads, &cache)
            .map_err(|e| e.to_string())?;
        (scores, format_cache_stats(cache.stats()))
    } else {
        let scores = engine
            .batch_single_pair(g, pairs, threads)
            .map_err(|e| e.to_string())?;
        (scores, "cache: off".to_string())
    };
    let elapsed = start.elapsed();
    let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
    Ok(format!(
        "scored {} pairs in {:.2?} on {} threads ({:.0} pairs/s), mean score {:.6}\n{}",
        scores.len(),
        elapsed,
        threads,
        scores.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        mean,
        cache_line,
    ))
}

fn bind_listener(args: &Args, default_addr: &str) -> Result<Listener, String> {
    if let Some(path) = args.flag("unix") {
        Listener::bind_unix(path).map_err(|e| format!("{path}: {e}"))
    } else {
        let addr = args.flag("listen").unwrap_or(default_addr);
        Listener::bind_tcp(addr).map_err(|e| format!("{addr}: {e}"))
    }
}

fn server_config(args: &Args) -> Result<ServerConfig, String> {
    let watch_default = if args.switch("watch") { 1000 } else { 0 };
    Ok(ServerConfig {
        workers: args.flag_parse("workers", 0usize)?,
        cache_capacity: args.flag_parse("cache", 1usize << 18)?,
        cache_shards: args.flag_parse("shards", 0usize)?,
        watch_interval_ms: args.flag_parse("watch-ms", watch_default)?,
        max_connections: args.flag_parse("max-connections", 0usize)?,
        slow_query_us: args.flag_parse("slow-query-us", 10_000u64)?,
        deadline_us: args.flag_parse("deadline-us", 0u64)?,
        shed_queue_depth: args.flag_parse("shed-queue-depth", 0usize)?,
        shed_pending_bytes: args.flag_parse("shed-pending-bytes", 0usize)?,
        rollback_error_threshold: args.flag_parse("rollback-errors", 8u64)?,
        record_path: args.flag("record").map(std::path::PathBuf::from),
        record_sample: args.flag_parse("record-sample", 1u64)?,
        cache_admission: parse_admission(args)?,
    })
}

/// Parse `--cache-admission {lru,tinylfu}` (default `lru`).
fn parse_admission(args: &Args) -> Result<Admission, String> {
    match args.flag("cache-admission") {
        None => Ok(Admission::Lru),
        Some(tok) => Admission::parse(tok)
            .ok_or_else(|| format!("unknown cache admission policy {tok:?} (lru|tinylfu)")),
    }
}

/// Install the deterministic fault schedule from `--faults SPEC` (or,
/// absent the flag, the `SLING_FAULTS` environment variable). Serving
/// commands call this before binding so injected faults cover the whole
/// lifetime of the process.
fn install_faults(args: &Args) -> Result<(), String> {
    match args.flag("faults") {
        Some(spec) => sling_core::faults::install_from_spec(spec)
            .map_err(|e| format!("--faults {spec:?}: {e}")),
        None => sling_core::faults::install_from_env()
            .map(|_| ())
            .map_err(|e| format!("SLING_FAULTS: {e}")),
    }
}

/// Parsed `--metrics-snapshot` options: dump the registry's JSON
/// snapshot to this path every interval.
#[derive(Clone)]
struct SnapshotOpts {
    path: std::path::PathBuf,
    interval: Duration,
}

fn snapshot_opts(args: &Args) -> Result<Option<SnapshotOpts>, String> {
    let Some(path) = args.flag("metrics-snapshot") else {
        return Ok(None);
    };
    Ok(Some(SnapshotOpts {
        path: std::path::PathBuf::from(path),
        interval: Duration::from_millis(args.flag_parse("metrics-snapshot-ms", 1000u64)?.max(10)),
    }))
}

/// Detached exporter thread behind `serve --metrics-snapshot`: renders
/// the registry as JSON every interval and atomically replaces the
/// target file (tmp + rename), so scrapers and post-mortem tooling never
/// read a torn snapshot. The first write happens immediately; the
/// thread dies with the process.
fn spawn_metrics_snapshot(registry: Arc<MetricsRegistry>, opts: SnapshotOpts) {
    let _ = std::thread::Builder::new()
        .name("metrics-snapshot".into())
        .spawn(move || loop {
            let tmp = opts.path.with_extension("tmp");
            if std::fs::write(&tmp, registry.render_json()).is_ok() {
                let _ = std::fs::rename(&tmp, &opts.path);
            }
            std::thread::sleep(opts.interval);
        });
}

/// `sling serve` — the long-lived concurrent query server: one shared
/// engine, thread-per-core workers, sharded result cache. Blocks until a
/// client sends `SHUTDOWN`.
///
/// Two engine sources: `serve GRAPH INDEX` pins one index file for the
/// server's lifetime, while `serve --index-root DIR [GRAPH]` serves the
/// promoted generation of a [`GenerationStore`] and hot-swaps whenever a
/// new generation is promoted (on `RELOAD`, or automatically with
/// `--watch` / `--watch-ms`). The optional `GRAPH` positional is the
/// fallback for generations without a co-located graph snapshot.
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    install_faults(args)?;
    let backend = parse_backend(args)?;
    let config = server_config(args)?;
    let snapshot = snapshot_opts(args)?;
    let listener = bind_listener(args, "127.0.0.1:7462")?;
    if let Some(root) = args.flag("index-root") {
        // With --index-root the only positional is the optional fallback
        // graph; a leftover INDEX argument means the operator bolted
        // --index-root onto a pinned `serve GRAPH INDEX` invocation and
        // would otherwise have it silently dropped.
        if args.positional(1, "index").is_ok() {
            return Err(
                "--index-root serves the store's promoted generation; drop the INDEX \
                 positional (only an optional fallback GRAPH is accepted)"
                    .to_string(),
            );
        }
        let store = GenerationStore::open(root).map_err(|e| format!("{root}: {e}"))?;
        let fallback = match args.positional(0, "graph") {
            Ok(path) => Some(Arc::new(load_graph(path)?)),
            Err(_) => None,
        };
        return match backend {
            IndexBackend::Mem => serve_root(
                store,
                fallback,
                |g, p| SlingIndex::load(g, p).map(SlingIndex::into_shared_engine),
                listener,
                config,
                snapshot,
            ),
            IndexBackend::Mmap => serve_root(
                store,
                fallback,
                |g, p| SharedEngine::open_mmap(g, p),
                listener,
                config,
                snapshot,
            ),
            IndexBackend::MmapCompressed => serve_root(
                store,
                fallback,
                |g, p| SharedEngine::open_mmap_compressed(g, p),
                listener,
                config,
                snapshot,
            ),
            IndexBackend::Disk => serve_root(
                store,
                fallback,
                |g, p| DiskHpStore::open(g, p).map(DiskHpStore::into_shared_engine),
                listener,
                config,
                snapshot,
            ),
        };
    }
    // Pinned single-index serving: there is nothing to watch, so a
    // watch flag here means the operator expected hot reload and must
    // hear that it will not happen.
    if args.switch("watch") || args.flag("watch-ms").is_some() {
        return Err(
            "--watch/--watch-ms only apply with --index-root DIR (a pinned GRAPH INDEX \
             server has no generation store to watch)"
                .to_string(),
        );
    }
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let g = load_graph(graph_path)?;
    match backend {
        IndexBackend::Mem => {
            let index = load_index(&g, index_path)?;
            serve_and_join(index.into_shared_engine(), g, listener, config, snapshot)
        }
        IndexBackend::Mmap => {
            let engine = SharedEngine::open_mmap(&g, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            serve_and_join(engine, g, listener, config, snapshot)
        }
        IndexBackend::MmapCompressed => {
            let engine = SharedEngine::open_mmap_compressed(&g, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            serve_and_join(engine, g, listener, config, snapshot)
        }
        IndexBackend::Disk => {
            let store =
                DiskHpStore::open(&g, index_path).map_err(|e| format!("{index_path}: {e}"))?;
            serve_and_join(store.into_shared_engine(), g, listener, config, snapshot)
        }
    }
}

/// Serve the promoted generation of a store, hot-swapping on promotion.
fn serve_root<S, F>(
    store: GenerationStore,
    fallback_graph: Option<Arc<DiGraph>>,
    open: F,
    listener: Listener,
    config: ServerConfig,
    snapshot: Option<SnapshotOpts>,
) -> Result<String, String>
where
    S: HpStore + Send + Sync + 'static,
    F: Fn(&DiGraph, &Path) -> Result<SharedEngine<S>, SlingError> + Send + Sync + 'static,
{
    let root = store.root().display().to_string();
    let reloadable = ReloadableEngine::watching_store(store, fallback_graph, open)
        .map_err(|e| format!("{root}: {e}"))?;
    let info = reloadable.info();
    let watch_interval_ms = config.watch_interval_ms;
    let handle = serve_reloadable(Arc::new(reloadable), listener, config)
        .map_err(|e| format!("failed to start server: {e}"))?;
    if let Some(opts) = snapshot {
        spawn_metrics_snapshot(handle.metrics_registry(), opts);
    }
    let watch = if watch_interval_ms > 0 {
        format!(", watching CURRENT every {watch_interval_ms} ms")
    } else {
        ", hot reload on RELOAD".to_string()
    };
    match handle.local_addr() {
        Some(addr) => println!(
            "sling-server listening on {addr}, serving {} from {root}{watch} \
             (send SHUTDOWN to stop)",
            info.generation
        ),
        None => println!(
            "sling-server listening on unix socket, serving {} from {root}{watch} \
             (send SHUTDOWN to stop)",
            info.generation
        ),
    }
    let report = handle.join();
    Ok(format_server_report("server shut down", &report))
}

fn serve_and_join<S: HpStore + Send + Sync + 'static>(
    engine: SharedEngine<S>,
    graph: DiGraph,
    listener: Listener,
    config: ServerConfig,
    snapshot: Option<SnapshotOpts>,
) -> Result<String, String> {
    let handle = serve(Arc::new(engine), Arc::new(graph), listener, config)
        .map_err(|e| format!("failed to start server: {e}"))?;
    if let Some(opts) = snapshot {
        spawn_metrics_snapshot(handle.metrics_registry(), opts);
    }
    match handle.local_addr() {
        Some(addr) => println!("sling-server listening on {addr} (send SHUTDOWN to stop)"),
        None => println!("sling-server listening on unix socket (send SHUTDOWN to stop)"),
    }
    let report = handle.join();
    Ok(format_server_report("server shut down", &report))
}

fn connect_client(args: &Args) -> Result<Client, String> {
    if let Some(path) = args.flag("unix") {
        Client::connect_unix(path).map_err(|e| format!("{path}: {e}"))
    } else if let Some(addr) = args.flag("connect") {
        Client::connect_tcp(addr).map_err(|e| format!("{addr}: {e}"))
    } else {
        Err("client needs --connect HOST:PORT or --unix PATH".to_string())
    }
}

/// `sling client` — one-shot protocol client for a running server.
pub fn cmd_client(args: &Args) -> Result<String, String> {
    let mode = args.positional(0, "mode")?;
    let mut client = connect_client(args)?;
    let err = |e: std::io::Error| e.to_string();
    match mode {
        "pair" => {
            let u: u32 = args
                .positional(1, "u")?
                .parse()
                .map_err(|_| "bad node id".to_string())?;
            let v: u32 = args
                .positional(2, "v")?
                .parse()
                .map_err(|_| "bad node id".to_string())?;
            let s = client.pair(u, v).map_err(err)?;
            Ok(format!("s({u}, {v}) = {s:.6}"))
        }
        "source" => {
            let u: u32 = args
                .positional(1, "u")?
                .parse()
                .map_err(|_| "bad node id".to_string())?;
            let scores = client.single_source(u).map_err(err)?;
            let mut ranked: Vec<(usize, f64)> = scores
                .iter()
                .copied()
                .enumerate()
                .filter(|&(v, s)| v != u as usize && s > 0.0)
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            ranked.truncate(10);
            let mut out = format!(
                "{} scores from node {u}; top {}:\n",
                scores.len(),
                ranked.len()
            );
            for (v, s) in ranked {
                writeln!(out, "  {v:>8}  {s:.6}").unwrap();
            }
            Ok(out)
        }
        "topk" => {
            let u: u32 = args
                .positional(1, "u")?
                .parse()
                .map_err(|_| "bad node id".to_string())?;
            let k: usize = args
                .positional(2, "k")?
                .parse()
                .map_err(|_| "bad k".to_string())?;
            let top = client.top_k(u, k).map_err(err)?;
            let mut out = format!("top {} similar to node {u} (served)\n", top.len());
            for (v, s) in top {
                writeln!(out, "  {v:>8}  {s:.6}").unwrap();
            }
            Ok(out)
        }
        "stats" => client.stats_line().map_err(err),
        "metrics" => client.metrics().map_err(err),
        "slowlog" => {
            let log = client.slow_queries().map_err(err)?;
            Ok(if log.is_empty() {
                "(no slow queries recorded)".to_string()
            } else {
                log
            })
        }
        "reload" => {
            let force = args.switch("force");
            let (generation, swapped) = client.reload_with(force).map_err(err)?;
            Ok(if swapped {
                format!("swapped to {generation}")
            } else if force {
                format!("already serving {generation}")
            } else {
                format!(
                    "already serving {generation} \
                     (no newer promotion, or the newer one is quarantined; see --force)"
                )
            })
        }
        "ping" => {
            client.ping().map_err(err)?;
            Ok("pong".to_string())
        }
        "shutdown" => {
            client.shutdown().map_err(err)?;
            Ok("server shutting down".to_string())
        }
        other => Err(format!(
            "unknown client mode {other:?} \
             (pair|source|topk|stats|metrics|slowlog|reload|ping|shutdown)"
        )),
    }
}

/// `sling metrics` — scrape a running server's full Prometheus text
/// exposition (the `METRICS` verb); `--slow` prints the slow-query ring
/// instead, one structured record per line, oldest first.
pub fn cmd_metrics(args: &Args) -> Result<String, String> {
    let mut client = connect_client(args)?;
    if args.switch("slow") {
        let log = client.slow_queries().map_err(|e| e.to_string())?;
        Ok(if log.is_empty() {
            "(no slow queries recorded)".to_string()
        } else {
            log
        })
    } else {
        client.metrics().map_err(|e| e.to_string())
    }
}

/// `sling record` — capture a traffic trace from a running server into a
/// `SLNGTRACE v1` file.
///
/// Polls the server's `TRACE` verb with a running cursor, so capture is
/// pull-based: the server's ring buffer never blocks the event loop, and
/// a slow recorder client loses old records (counted below) instead of
/// slowing queries down. The file is written to `OUT.tmp` and renamed
/// into place at the end, so a crashed capture never leaves a
/// half-written file under the final name. The server must be running
/// with `serve --record FILE` (the ring exists only then); this command
/// is a second, independent consumer of the same ring.
///
/// Accounting in the final report:
/// * `captured` — records written to OUT;
/// * `server dropped` — records the server itself lost to ring
///   contention or sampling (its cumulative counter);
/// * `overwritten` — records that aged out of the ring between our
///   polls (visible as sequence gaps).
pub fn cmd_record(args: &Args) -> Result<String, String> {
    let out_path: String = args.flag_required("out")?;
    let duration_ms: u64 = args.flag_parse("duration-ms", 2000u64)?;
    let poll_ms: u64 = args.flag_parse("poll-ms", 50u64)?;
    let max_records: u64 = args.flag_parse("max-records", 0u64)?; // 0 = unlimited
    let mut client = connect_client(args)?;
    let err = |e: std::io::Error| e.to_string();

    let tmp = format!("{out_path}.tmp");
    let deadline = std::time::Instant::now() + Duration::from_millis(duration_ms);
    let mut writer: Option<TraceWriter<std::io::BufWriter<std::fs::File>>> = None;
    let mut cursor = 0u64;
    let mut captured = 0u64;
    let mut overwritten = 0u64;
    let mut server_dropped;
    let mut started = false;
    loop {
        let seg = client.trace_from(cursor, 4096).map_err(err)?;
        server_dropped = seg.dropped;
        if writer.is_none() {
            let file = std::fs::File::create(&tmp).map_err(|e| format!("{tmp}: {e}"))?;
            let w = TraceWriter::new(std::io::BufWriter::new(file), seg.base_us)
                .map_err(|e| format!("{tmp}: {e}"))?;
            writer = Some(w);
        }
        let w = writer.as_mut().expect("writer was just created");
        if let Some(&(first_seq, _)) = seg.records.first() {
            // A gap between where we left off and the oldest record the
            // ring still holds means records aged out between polls. The
            // very first poll starts wherever the ring starts, by design.
            if started {
                overwritten += first_seq.saturating_sub(cursor);
            }
            started = true;
        }
        let full_batch = seg.records.len() >= 4096;
        for (_, rec) in &seg.records {
            w.write(rec).map_err(|e| format!("{tmp}: {e}"))?;
        }
        captured += seg.records.len() as u64;
        cursor = cursor.max(seg.next_seq);
        if max_records > 0 && captured >= max_records {
            break;
        }
        let now = std::time::Instant::now();
        if now >= deadline {
            break;
        }
        if !full_batch {
            // Ring drained: wait for fresh traffic, but never past the
            // deadline.
            let remaining = deadline - now;
            std::thread::sleep(remaining.min(Duration::from_millis(poll_ms.max(1))));
        }
    }
    let w = writer.expect("first poll always creates the writer");
    let records = w.records_written();
    let bytes = w.bytes_written();
    let inner = w.into_inner().map_err(|e| format!("{tmp}: {e}"))?;
    inner
        .get_ref()
        .sync_data()
        .map_err(|e| format!("{tmp}: {e}"))?;
    drop(inner);
    std::fs::rename(&tmp, &out_path).map_err(|e| format!("{tmp} -> {out_path}: {e}"))?;
    Ok(format!(
        "captured {records} records ({bytes} bytes) to {out_path}\n\
         server dropped {server_dropped} (sampling/contention), \
         {overwritten} overwritten between polls"
    ))
}

/// `sling traffic-report` — the SkyServer-style characterization of a
/// captured (or synthesized) trace file: verb mix, key-popularity skew,
/// burstiness, and hit-rate-vs-cache-size curves under both admission
/// policies. Uses the tolerant reader, so a torn tail from an in-flight
/// recorder degrades to fewer records (reported), never to an error.
pub fn cmd_traffic_report(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "trace")?;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let (trace, dropped) = read_trace_tolerant(std::io::BufReader::new(file));
    let Some(trace) = trace else {
        return Err(format!("{path}: not a readable SLNGTRACE v1 file"));
    };
    let mut out = format!("traffic report for {path}\n\n");
    out.push_str(&characterize(&trace).to_string());
    if dropped > 0 {
        let _ = write!(
            out,
            "\nnote: {dropped} damaged or torn line(s) dropped by the tolerant reader"
        );
    }
    Ok(out)
}

/// Counters from one [`replay_records`] pass over a trace.
#[derive(Clone, Copy, Debug, Default)]
struct ReplayRun {
    replayed: u64,
    skipped: u64,
    pair: u64,
    source: u64,
    topk: u64,
    spot_checks: u64,
    hits: u64,
    misses: u64,
    rejects: u64,
    elapsed_s: f64,
}

impl ReplayRun {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Drive every record of a trace through the local engine, optionally
/// through a result cache, at `speed`× recorded pacing (0 = as fast as
/// possible). Every `spot_every`-th pair answer is recomputed uncached
/// and must be bit-identical — the replay-correctness check.
fn replay_records<S: HpStore + Sync>(
    engine: &SharedEngine<S>,
    g: &DiGraph,
    records: &[TraceRecord],
    cache: Option<&ShardedResultCache>,
    speed: f64,
    spot_every: u64,
) -> Result<ReplayRun, String> {
    let n = g.num_nodes() as u32;
    let mut run = ReplayRun::default();
    let mut ws = QueryWorkspace::new();
    let mut ss = sling_core::single_source::SingleSourceWorkspace::new();
    let mut scores: Vec<f64> = Vec::new();
    let t0 = records.first().map(|r| r.t_us).unwrap_or(0);
    let start = std::time::Instant::now();
    for rec in records {
        if speed > 0.0 {
            let offset = Duration::from_micros((rec.t_us.saturating_sub(t0) as f64 / speed) as u64);
            let now = start.elapsed();
            if offset > now {
                std::thread::sleep(offset - now);
            }
        }
        match (rec.verb, rec.key) {
            (TraceVerb::Pair | TraceVerb::Batch, TraceKey::Pair(u, v)) => {
                if u >= n || v >= n {
                    run.skipped += 1;
                    continue;
                }
                // Canonicalize exactly as the server does, so cached and
                // uncached answers share one merge orientation.
                let (a, b) = (NodeId(u.min(v)), NodeId(u.max(v)));
                let got = match cache {
                    Some(c) => engine
                        .single_pair_cached_tagged(g, &mut ws, c, a, b, 0)
                        .map_err(|e| e.to_string())?,
                    None => engine
                        .single_pair_with(g, &mut ws, a, b)
                        .map_err(|e| e.to_string())?,
                };
                run.pair += 1;
                if spot_every > 0 && run.pair % spot_every == 0 {
                    let want = engine
                        .single_pair_with(g, &mut ws, a, b)
                        .map_err(|e| e.to_string())?;
                    if got.to_bits() != want.to_bits() {
                        return Err(format!(
                            "replay spot-check failed: s({}, {}) = {got} via cache \
                             but {want} uncached (not bit-identical)",
                            a.0, b.0
                        ));
                    }
                    run.spot_checks += 1;
                }
            }
            (TraceVerb::Source, TraceKey::Node(u)) => {
                if u >= n {
                    run.skipped += 1;
                    continue;
                }
                engine
                    .single_source_with(g, &mut ss, NodeId(u), &mut scores)
                    .map_err(|e| e.to_string())?;
                run.source += 1;
            }
            (TraceVerb::TopK, TraceKey::NodeK(u, k)) => {
                if u >= n {
                    run.skipped += 1;
                    continue;
                }
                engine
                    .top_k_with(g, &mut ss, &mut scores, NodeId(u), k.max(1) as usize)
                    .map_err(|e| e.to_string())?;
                run.topk += 1;
            }
            // A verb/key mismatch can only come from a hand-edited
            // trace; replay it as a no-op rather than failing the run.
            _ => {
                run.skipped += 1;
                continue;
            }
        }
        run.replayed += 1;
    }
    run.elapsed_s = start.elapsed().as_secs_f64();
    if let Some(c) = cache {
        let s = c.stats();
        run.hits = s.hits;
        run.misses = s.misses;
        run.rejects = c.admission_rejects();
    }
    Ok(run)
}

fn synth_trace(kind: &str, opts: SynthOpts) -> Result<Trace, String> {
    match kind {
        "zipf" | "zipf_sweep" => Ok(zipf_sweep(opts)),
        "diurnal" | "diurnal_burst" => Ok(diurnal_burst(opts)),
        "scan" | "adversarial_cold_scan" => Ok(adversarial_cold_scan(opts)),
        other => Err(format!(
            "unknown --synth scenario {other:?} (zipf|diurnal|scan)"
        )),
    }
}

/// `sling replay` — drive a captured or synthesized trace through the
/// local engine at recorded (or scaled) pacing.
///
/// `replay GRAPH INDEX TRACE` replays a `SLNGTRACE v1` file (strict
/// reader — replay wants exactness); `replay GRAPH INDEX --synth
/// zipf|diurnal|scan` synthesizes one of the three scenario families
/// instead. `--cache CAP` routes pair queries through a result cache
/// under `--cache-admission lru|tinylfu`; `--spot-check N` recomputes
/// every Nth pair uncached and fails unless answers are bit-identical.
/// `--speed X` paces records at X× recorded speed (0, the default,
/// replays as fast as possible).
///
/// `--suite [--out FILE]` ignores TRACE/--synth and runs the pinned
/// admission-policy comparison (the three synthetic scenarios, with the
/// adversarial cold scan replayed under both LRU and TinyLFU at the same
/// capacity), writing the machine-readable `BENCH_replay.json`:
///
/// ```json
/// {
///   "bench": "replay",
///   "schema_version": 1,
///   "fixture": {"graph_nodes": .., "graph_edges": .., "trace_nodes": ..,
///               "records_per_trace": .., "seed": .., "cache_capacity": ..},
///   "results": [
///     {"scenario": "adversarial_cold_scan", "policy": "tinylfu", "replayed": ..,
///      "skipped": .., "hits": .., "misses": .., "admission_rejects": ..,
///      "hit_rate": .., "spot_checks": .., "elapsed_s": .., "qps": ..}
///   ],
///   "scan_admission": {"capacity": .., "hit_rate_lru": ..,
///                      "hit_rate_tinylfu": .., "advantage": ..}
/// }
/// ```
///
/// Each result is one line with a fixed key order so CI can extract
/// fields with `sed` (see `ci/bench_replay_floor.json` for the gated
/// floors). `advantage` is `hit_rate_tinylfu - hit_rate_lru` on the
/// adversarial scan — the number the frequency-aware admission policy
/// exists to keep positive.
pub fn cmd_replay(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let g = load_graph(graph_path)?;
    let n = g.num_nodes() as u32;
    if n < 2 {
        return Err("replay needs a graph with at least 2 nodes".to_string());
    }
    let index = load_index(&g, index_path)?;
    let engine = index.into_shared_engine();

    if args.switch("suite") {
        return replay_suite(args, &engine, &g);
    }

    let trace: Trace = if let Some(kind) = args.flag("synth") {
        let opts = SynthOpts {
            nodes: args.flag_parse("nodes", n)?.min(n),
            records: args.flag_parse("records", 10_000usize)?,
            seed: args.flag_parse("seed", 41u64)?,
        };
        synth_trace(kind, opts)?
    } else {
        let path = args.positional(2, "trace (or pass --synth zipf|diurnal|scan)")?;
        read_trace_file(path).map_err(|e| format!("{path}: {e}"))?
    };

    let speed: f64 = args.flag_parse("speed", 0.0f64)?;
    let spot: u64 = args.flag_parse("spot-check", 0u64)?;
    let cache_cap: usize = args.flag_parse("cache", 0usize)?;
    let cache = if cache_cap > 0 {
        // One shard keeps admission decisions deterministic, so two
        // replays of one trace agree exactly.
        Some(ShardedResultCache::with_admission(
            cache_cap,
            1,
            parse_admission(args)?,
        ))
    } else {
        None
    };
    let run = replay_records(&engine, &g, &trace.records, cache.as_ref(), speed, spot)?;
    let mut out = format!(
        "replayed {} records in {:.2}s ({:.0} rec/s): {} pair, {} source, {} topk, {} skipped\n",
        run.replayed,
        run.elapsed_s,
        run.replayed as f64 / run.elapsed_s.max(1e-9),
        run.pair,
        run.source,
        run.topk,
        run.skipped,
    );
    match &cache {
        Some(c) => {
            let _ = writeln!(
                out,
                "cache: capacity {} policy {} — {} hits, {} misses, hit rate {:.2}%, \
                 {} admission rejects",
                cache_cap,
                c.admission().as_str(),
                run.hits,
                run.misses,
                run.hit_rate() * 100.0,
                run.rejects,
            );
        }
        None => out.push_str("cache: off\n"),
    }
    if spot > 0 {
        let _ = writeln!(out, "spot-checks: {} bit-identical", run.spot_checks);
    }
    Ok(out)
}

/// The pinned `--suite` runs for [`cmd_replay`]: (scenario, policy).
const REPLAY_SUITE: &[(&str, Admission)] = &[
    ("zipf_sweep", Admission::Lru),
    ("diurnal_burst", Admission::Lru),
    ("adversarial_cold_scan", Admission::Lru),
    ("adversarial_cold_scan", Admission::TinyLfu),
];

fn replay_suite<S: HpStore + Sync>(
    args: &Args,
    engine: &SharedEngine<S>,
    g: &DiGraph,
) -> Result<String, String> {
    let n = g.num_nodes() as u32;
    // Pinned fixture: small enough to run in CI, skewed enough that the
    // admission comparison is meaningful. Matches the sim-layer tests.
    let opts = SynthOpts {
        nodes: args.flag_parse("nodes", n.min(400))?.min(n),
        records: args.flag_parse("records", 12_000usize)?,
        seed: args.flag_parse("seed", 41u64)?,
    };
    let capacity: usize = args.flag_parse("cache", 192usize)?;
    let spot: u64 = args.flag_parse("spot-check", 997u64)?;

    let mut lines = Vec::new();
    let mut human = String::from("replay suite (pinned admission comparison)\n");
    let mut scan_rates: Vec<(Admission, f64)> = Vec::new();
    for &(scenario, policy) in REPLAY_SUITE {
        let trace = synth_trace(scenario, opts)?;
        let cache = ShardedResultCache::with_admission(capacity, 1, policy);
        let run = replay_records(engine, g, &trace.records, Some(&cache), 0.0, spot)?;
        if scenario == "adversarial_cold_scan" {
            scan_rates.push((policy, run.hit_rate()));
        }
        let _ = writeln!(
            human,
            "  {scenario:<22} {:<8} hit rate {:>6.2}%  ({} hits, {} misses, {} rejects, \
             {} spot-checks ok)",
            policy.as_str(),
            run.hit_rate() * 100.0,
            run.hits,
            run.misses,
            run.rejects,
            run.spot_checks,
        );
        lines.push(format!(
            "{{\"scenario\": \"{scenario}\", \"policy\": \"{}\", \"replayed\": {}, \
             \"skipped\": {}, \"hits\": {}, \"misses\": {}, \"admission_rejects\": {}, \
             \"hit_rate\": {:.4}, \"spot_checks\": {}, \"elapsed_s\": {:.3}, \"qps\": {:.1}}}",
            policy.as_str(),
            run.replayed,
            run.skipped,
            run.hits,
            run.misses,
            run.rejects,
            run.hit_rate(),
            run.spot_checks,
            run.elapsed_s,
            run.replayed as f64 / run.elapsed_s.max(1e-9),
        ));
    }
    let rate_of = |policy: Admission| {
        scan_rates
            .iter()
            .find(|(p, _)| *p == policy)
            .map(|&(_, r)| r)
            .unwrap_or(0.0)
    };
    let (lru, tiny) = (rate_of(Admission::Lru), rate_of(Admission::TinyLfu));
    let _ = writeln!(
        human,
        "adversarial scan: tinylfu {:.2}% vs lru {:.2}% (advantage {:+.2} points)",
        tiny * 100.0,
        lru * 100.0,
        (tiny - lru) * 100.0,
    );

    let mut json = String::from("{\n  \"bench\": \"replay\",\n  \"schema_version\": 1,\n");
    let _ = writeln!(
        json,
        "  \"fixture\": {{\"graph_nodes\": {}, \"graph_edges\": {}, \"trace_nodes\": {}, \
         \"records_per_trace\": {}, \"seed\": {}, \"cache_capacity\": {capacity}}},",
        g.num_nodes(),
        g.num_edges(),
        opts.nodes,
        opts.records,
        opts.seed,
    );
    json.push_str("  \"results\": [\n");
    for (i, line) in lines.iter().enumerate() {
        json.push_str("    ");
        json.push_str(line);
        if i + 1 < lines.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"scan_admission\": {{\"capacity\": {capacity}, \"hit_rate_lru\": {lru:.4}, \
         \"hit_rate_tinylfu\": {tiny:.4}, \"advantage\": {:.4}}}",
        tiny - lru,
    );
    json.push_str("}\n");
    if let Some(out_path) = args.flag("out") {
        std::fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
        let _ = write!(human, "wrote {out_path}");
    } else {
        human.push_str(&json);
    }
    Ok(human)
}

/// `sling bench-serve` — start an in-process server and drive it with
/// concurrent, hot-key-skewed client traffic; reports throughput and the
/// cache hit rate, after spot-checking served scores against the local
/// engine bit-for-bit. `--connections N` additionally holds a
/// mostly-idle fleet of `N - threads - 1` silent sockets open across
/// the timed window, so the measurement includes the event-loop cost of
/// parked connections.
///
/// With `--out FILE` it instead runs the fixed connection-scaling sweep
/// (TCP workers=1, TCP workers=4, TCP workers=4 + 1000 idle
/// connections, Unix workers=4 + 1000 idle connections) and writes the
/// machine-readable `BENCH_serve.json`:
///
/// ```json
/// {
///   "bench": "serve",
///   "schema_version": 1,
///   "fixture": {"nodes": .., "edges": .., "threads": .., "requests_per_run": .., "hot": .., "hot_keys": .., "quick": ..},
///   "results": [
///     {"transport": "tcp", "workers": 4, "connections": 1000, "requests": ..,
///      "elapsed_s": .., "qps": .., "p50_us": .., "p99_us": .., "p999_us": ..,
///      "open_connections": .., "idle_connections": ..,
///      "evloop_wakeups": .., "evloop_turns": ..}
///   ],
///   "idle_scaling": {"qps_tcp_w1": .., "qps_tcp_w4_idle": .., "ratio": ..}
/// }
/// ```
///
/// Each result is one line with a fixed key order so CI can extract
/// fields with `sed` (see `ci/bench_serve_floor.json` for the gated
/// floors); latencies are client-side microseconds, and the connection
/// gauges are sampled from `STATS` while the idle fleet is still open.
pub fn cmd_bench_serve(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let backend = parse_backend(args)?;
    let quick = args.switch("quick");
    let opts = ServeBenchOpts {
        threads: args.flag_parse("threads", 8usize)?,
        requests: args.flag_parse("requests", if quick { 1500usize } else { 4000usize })?,
        hot: args.flag_parse("hot", 0.9f64)?,
        hot_keys: args.flag_parse("hot-keys", 64usize)?,
        connections: args.flag_parse("connections", 0usize)?,
        out: args.flag("out").map(str::to_string),
        seed: args.flag_parse("seed", 0x5DEECE66Du64)?,
        quick,
        trace: args.switch("trace"),
        config: server_config(args)?,
    };
    if !(0.0..=1.0).contains(&opts.hot) {
        return Err(format!("--hot must lie in [0,1], got {}", opts.hot));
    }
    let g = load_graph(graph_path)?;
    match backend {
        IndexBackend::Mem => {
            let index = load_index(&g, index_path)?;
            bench_serve_entry(Arc::new(index.into_shared_engine()), Arc::new(g), &opts)
        }
        IndexBackend::Mmap => {
            let engine = SharedEngine::open_mmap(&g, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            bench_serve_entry(Arc::new(engine), Arc::new(g), &opts)
        }
        IndexBackend::MmapCompressed => {
            let engine = SharedEngine::open_mmap_compressed(&g, index_path)
                .map_err(|e| format!("{index_path}: {e}"))?;
            bench_serve_entry(Arc::new(engine), Arc::new(g), &opts)
        }
        IndexBackend::Disk => {
            let store =
                DiskHpStore::open(&g, index_path).map_err(|e| format!("{index_path}: {e}"))?;
            bench_serve_entry(Arc::new(store.into_shared_engine()), Arc::new(g), &opts)
        }
    }
}

/// Parsed `bench-serve` options shared by the single-run and sweep paths.
struct ServeBenchOpts {
    threads: usize,
    requests: usize,
    hot: f64,
    hot_keys: usize,
    /// Total connections to hold open during the run (driver clients plus
    /// a mostly-idle fleet); `0` means just the driver clients.
    connections: usize,
    /// When set, run the fixed transport/worker/connection sweep and
    /// write the machine-readable `BENCH_serve.json` to this path.
    out: Option<String>,
    /// Seed of the hot-key set and per-thread request streams, so two
    /// runs (or two policies) replay the same workload.
    seed: u64,
    quick: bool,
    /// Append the server-side kernel-stage latency breakdown (read from
    /// the metrics registry's `sling_query_stage_*_ns` histograms).
    trace: bool,
    config: ServerConfig,
}

/// Where `bench-serve` binds its in-process server.
enum ServeTransport {
    Tcp,
    Unix(std::path::PathBuf),
}

/// An open-but-silent client socket, held for the duration of a run to
/// measure the cost of mostly-idle connections on the event loops.
#[allow(dead_code)] // sockets are held only for their Drop side effect
enum IdleSock {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

/// One bench-serve measurement. Serialized as a single fixed-key-order
/// JSON line in `BENCH_serve.json` so CI can extract fields with `sed`.
struct ServeBenchRecord {
    transport: &'static str,
    workers: usize,
    /// Requested total connection count for the run (`0` = drivers only).
    connections: usize,
    /// Requests actually issued (threads x per-thread share).
    requests: usize,
    elapsed_s: f64,
    latency: sling_bench::LatencySummary,
    /// `open_connections` gauge sampled from `STATS` at the end of the
    /// timed window, while the idle fleet is still connected.
    open_connections: u64,
    idle_connections: u64,
    /// Event-loop wakeups / readiness turns summed across workers.
    evloop_wakeups: u64,
    evloop_turns: u64,
}

impl ServeBenchRecord {
    fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed_s.max(1e-9)
    }

    fn to_json_line(&self) -> String {
        format!(
            "{{\"transport\": \"{}\", \"workers\": {}, \"connections\": {}, \
             \"requests\": {}, \"elapsed_s\": {:.3}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \
             \"open_connections\": {}, \"idle_connections\": {}, \
             \"evloop_wakeups\": {}, \"evloop_turns\": {}}}",
            self.transport,
            self.workers,
            self.connections,
            self.requests,
            self.elapsed_s,
            self.qps(),
            self.latency.p50_us,
            self.latency.p99_us,
            self.latency.p999_us,
            self.open_connections,
            self.idle_connections,
            self.evloop_wakeups,
            self.evloop_turns,
        )
    }
}

/// Pull a `key=value` integer out of a `STATS` response line.
fn stats_value(stats: &str, key: &str) -> u64 {
    stats
        .split_ascii_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn bench_serve_entry<S: HpStore + Send + Sync + 'static>(
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    opts: &ServeBenchOpts,
) -> Result<String, String> {
    match &opts.out {
        None => bench_serve_run(
            engine,
            graph,
            ServeTransport::Tcp,
            opts.connections,
            opts.threads,
            opts.requests,
            opts.hot,
            opts.hot_keys,
            opts.seed,
            opts.trace,
            opts.config.clone(),
        )
        .map(|(human, _)| human),
        Some(path) => bench_serve_sweep(engine, graph, opts, path),
    }
}

/// The committed-baseline sweep behind `bench-serve --out`: worker
/// scaling over TCP, then the ≥1k mostly-idle-connection runs the epoll
/// rewrite exists for, on both transports.
fn bench_serve_sweep<S: HpStore + Send + Sync + 'static>(
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    opts: &ServeBenchOpts,
    out_path: &str,
) -> Result<String, String> {
    let fleet = if opts.connections > 0 {
        opts.connections
    } else {
        1000
    };
    let sock = std::env::temp_dir().join(format!("sling-bench-serve-{}.sock", std::process::id()));
    let plan: [(&str, usize, usize); 4] = [
        ("tcp", 1, 0),
        ("tcp", 4, 0),
        ("tcp", 4, fleet),
        ("unix", 4, fleet),
    ];
    let mut records: Vec<ServeBenchRecord> = Vec::with_capacity(plan.len());
    let mut human = String::from("bench-serve sweep:\n");
    for &(transport, workers, conns) in &plan {
        let mut config = opts.config.clone();
        config.workers = workers;
        let target = if transport == "tcp" {
            ServeTransport::Tcp
        } else {
            let _ = std::fs::remove_file(&sock);
            ServeTransport::Unix(sock.clone())
        };
        let (_, rec) = bench_serve_run(
            Arc::clone(&engine),
            Arc::clone(&graph),
            target,
            conns,
            opts.threads,
            opts.requests,
            opts.hot,
            opts.hot_keys,
            opts.seed,
            opts.trace,
            config,
        )?;
        let _ = writeln!(
            human,
            "  {} workers={} connections={} -> {:.0} qps, p50={:.1}us p99={:.1}us p999={:.1}us \
             (open={} idle={}, evloop wakeups={} turns={})",
            rec.transport,
            rec.workers,
            rec.connections,
            rec.qps(),
            rec.latency.p50_us,
            rec.latency.p99_us,
            rec.latency.p999_us,
            rec.open_connections,
            rec.idle_connections,
            rec.evloop_wakeups,
            rec.evloop_turns,
        );
        records.push(rec);
    }
    let _ = std::fs::remove_file(&sock);

    let qps_of = |t: &str, w: usize, c: usize| {
        records
            .iter()
            .find(|r| r.transport == t && r.workers == w && r.connections == c)
            .map(|r| r.qps())
            .unwrap_or(0.0)
    };
    let base_w1 = qps_of("tcp", 1, 0);
    let idle_w4 = qps_of("tcp", 4, fleet);
    let ratio = idle_w4 / base_w1.max(1e-9);

    let mut json = String::from("{\n  \"bench\": \"serve\",\n  \"schema_version\": 1,\n");
    let _ = writeln!(
        json,
        "  \"fixture\": {{\"nodes\": {}, \"edges\": {}, \"threads\": {}, \
         \"requests_per_run\": {}, \"hot\": {}, \"hot_keys\": {}, \"quick\": {}}},",
        graph.num_nodes(),
        graph.num_edges(),
        opts.threads,
        opts.requests,
        opts.hot,
        opts.hot_keys,
        opts.quick,
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&r.to_json_line());
        if i + 1 < records.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"idle_scaling\": {{\"qps_tcp_w1\": {base_w1:.1}, \
         \"qps_tcp_w4_idle\": {idle_w4:.1}, \"ratio\": {ratio:.3}}}"
    );
    json.push_str("}\n");
    std::fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;

    let _ = writeln!(
        human,
        "idle scaling: tcp workers=4 with {fleet} mostly-idle connections runs at \
         {ratio:.2}x the workers=1 no-fleet baseline"
    );
    let _ = write!(human, "wrote {out_path}");
    Ok(human)
}

/// Open one silent client socket, retrying briefly: with a ≥1k fleet the
/// listener backlog can fill faster than the acceptor drains it.
fn open_idle_sock(
    transport: &ServeTransport,
    addr: Option<std::net::SocketAddr>,
) -> Result<IdleSock, String> {
    let mut attempt = 0usize;
    loop {
        let result = match transport {
            ServeTransport::Tcp => {
                std::net::TcpStream::connect(addr.expect("tcp server has an address"))
                    .map(IdleSock::Tcp)
            }
            ServeTransport::Unix(path) => {
                std::os::unix::net::UnixStream::connect(path).map(IdleSock::Unix)
            }
        };
        match result {
            Ok(sock) => return Ok(sock),
            Err(e) if attempt < 500 => {
                attempt += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
                let _ = e;
            }
            Err(e) => return Err(format!("idle connection failed: {e}")),
        }
    }
}

fn bench_serve_run<S: HpStore + Send + Sync + 'static>(
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    transport: ServeTransport,
    connections: usize,
    threads: usize,
    requests: usize,
    hot: f64,
    hot_keys: usize,
    seed: u64,
    trace: bool,
    config: ServerConfig,
) -> Result<(String, ServeBenchRecord), String> {
    let n = graph.num_nodes() as u32;
    if n < 2 {
        return Err("bench-serve needs a graph with at least 2 nodes".to_string());
    }
    let threads = threads.max(1);
    let listener = match &transport {
        ServeTransport::Tcp => Listener::bind_tcp("127.0.0.1:0"),
        ServeTransport::Unix(path) => Listener::bind_unix(path),
    }
    .map_err(|e| e.to_string())?;
    let handle = serve(Arc::clone(&engine), Arc::clone(&graph), listener, config)
        .map_err(|e| format!("failed to start server: {e}"))?;
    // The registry Arc outlives `handle.join()`, so `--trace` can read
    // the stage histograms after the server has fully shut down.
    let registry = handle.metrics_registry();
    let addr = handle.local_addr();
    let connect = |transport: &ServeTransport| -> Result<Client, String> {
        match transport {
            ServeTransport::Tcp => Client::connect_tcp(addr.expect("tcp server has an address")),
            ServeTransport::Unix(path) => Client::connect_unix(path),
        }
        .map_err(|e| e.to_string())
    };

    // Skewed hot key set shared by every client thread.
    let hot_pairs: Vec<(u32, u32)> = {
        let mut state = seed;
        (0..hot_keys.max(1))
            .map(|_| random_pair(&mut state, n))
            .collect()
    };
    let per_thread = requests.div_ceil(threads);

    // Everything that can fail runs in this closure so every error path
    // still tears the in-process server down (threads, acceptor, port)
    // instead of leaking it into the host process.
    let bench = || -> Result<(std::time::Duration, Vec<f64>, String), String> {
        // Spot-check served scores against the local engine before timing.
        let mut control = connect(&transport)?;
        let mut ws = QueryWorkspace::new();
        for &(u, v) in hot_pairs.iter().take(5) {
            let got = control.pair(u, v).map_err(|e| e.to_string())?;
            let (a, b) = (u.min(v), u.max(v));
            let want = engine
                .single_pair_with(&graph, &mut ws, NodeId(a), NodeId(b))
                .map_err(|e| e.to_string())?;
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "served score for ({u},{v}) diverged from the local engine: {got} vs {want}"
                ));
            }
        }

        // Open the mostly-idle fleet before timing starts: these sockets
        // send nothing, but each occupies an epoll registration on a
        // worker for the whole measured window.
        let idle_goal = connections.saturating_sub(threads + 1);
        let mut idle_socks: Vec<IdleSock> = Vec::with_capacity(idle_goal);
        for _ in 0..idle_goal {
            idle_socks.push(open_idle_sock(&transport, addr)?);
        }

        let start = std::time::Instant::now();
        let results: Vec<Result<Vec<f64>, String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let hot_pairs = &hot_pairs;
                    let connect = &connect;
                    let transport = &transport;
                    s.spawn(move || -> Result<Vec<f64>, String> {
                        let mut client = connect(transport)?;
                        let mut state = seed
                            .wrapping_add(t as u64 + 1)
                            .wrapping_mul(0xA24B_AED4_963E_E407)
                            | 1;
                        let mut lat_us = Vec::with_capacity(per_thread);
                        for i in 0..per_thread {
                            let t0 = std::time::Instant::now();
                            if i % 10 == 9 {
                                let u = (xorshift(&mut state) % n as u64) as u32;
                                client.top_k(u, 10).map_err(|e| e.to_string())?;
                            } else {
                                let (u, v) =
                                    if (xorshift(&mut state) as f64 / u64::MAX as f64) < hot {
                                        hot_pairs[xorshift(&mut state) as usize % hot_pairs.len()]
                                    } else {
                                        random_pair(&mut state, n)
                                    };
                                client.pair(u, v).map_err(|e| e.to_string())?;
                            }
                            lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                        Ok(lat_us)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bench client panicked"))
                .collect()
        });
        let elapsed = start.elapsed();
        let mut lat_us = Vec::with_capacity(per_thread * threads);
        for r in results {
            lat_us.extend(r.map_err(|err| format!("bench client failed: {err}"))?);
        }
        let stats_line = control.stats_line().map_err(|e| e.to_string())?;
        control.shutdown().map_err(|e| e.to_string())?;
        Ok((elapsed, lat_us, stats_line))
    };
    let (elapsed, lat_us, stats_line) = match bench() {
        Ok(result) => result,
        Err(message) => {
            handle.shutdown();
            return Err(message);
        }
    };
    let report = handle.join();
    let total = per_thread * threads;
    let lat = sling_bench::LatencySummary::from_latencies_us(lat_us);
    let record = ServeBenchRecord {
        transport: match &transport {
            ServeTransport::Tcp => "tcp",
            ServeTransport::Unix(_) => "unix",
        },
        workers: report.served_per_worker.len(),
        connections,
        requests: total,
        elapsed_s: elapsed.as_secs_f64(),
        latency: lat,
        open_connections: stats_value(&stats_line, "open_connections"),
        idle_connections: stats_value(&stats_line, "idle_connections"),
        evloop_wakeups: report.evloop_wakeups_per_worker.iter().sum(),
        evloop_turns: report.evloop_turns_per_worker.iter().sum(),
    };
    let mut human = format!(
        "{} client threads x {} requests in {:.2?} -> {:.0} req/s \
         (hot fraction {:.2}, {} hot keys)\n\
         client latency ({} samples): p50={:.1}us p99={:.1}us p999={:.1}us\n",
        threads,
        per_thread,
        elapsed,
        record.qps(),
        hot,
        hot_pairs.len(),
        lat.count,
        lat.p50_us,
        lat.p99_us,
        lat.p999_us,
    );
    if connections > 0 {
        let _ = writeln!(
            human,
            "connection fleet: {} total requested, server saw open={} idle={} at stats time",
            connections, record.open_connections, record.idle_connections,
        );
    }
    let _ = write!(
        human,
        "{}\nserver stats: {}",
        format_server_report("final", &report),
        stats_line,
    );
    if trace {
        let _ = write!(human, "\n{}", format_stage_breakdown(&registry));
    }
    Ok((human, record))
}

/// Render the server-side kernel-stage breakdown behind `bench-serve
/// --trace`: per-stage query counts and percentiles from the registry's
/// `sling_query_stage_*_ns` histograms. A stage's count is the number of
/// queries that exercised it — cache hits record no stages, so the gap
/// between `requests` and these counts is the cache doing its job.
fn format_stage_breakdown(registry: &MetricsRegistry) -> String {
    let mut out = String::from("kernel stage breakdown (server-side, traced queries only):\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>10} {:>10} {:>10} {:>10}",
        "stage", "queries", "p50", "p99", "p999"
    );
    for stage in ["entry_fetch", "restore", "merge", "propagate"] {
        let Some(report) = registry.histogram_report(&format!("sling_query_stage_{stage}_ns"))
        else {
            continue;
        };
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>10} {:>10} {:>10}",
            stage,
            report.count,
            sling_bench::fmt_secs(report.p50_us / 1e6),
            sling_bench::fmt_secs(report.p99_us / 1e6),
            sling_bench::fmt_secs(report.p999_us / 1e6),
        );
    }
    out
}

/// Dispatch a full command line (without the binary name).
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(USAGE.to_string());
    };
    match cmd.as_str() {
        "datasets" => cmd_datasets(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[],
                switches: &[],
            },
        )?),
        "generate" => cmd_generate(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["dataset", "ba", "er", "ws", "grid", "seed", "out"],
                switches: &["text"],
            },
        )?),
        "stats" => cmd_stats(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[],
                switches: &["degrees"],
            },
        )?),
        "build" => cmd_build(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["out", "eps", "c", "seed", "threads"],
                switches: &[],
            },
        )?),
        "query" => cmd_query(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["top", "index-backend", "buffer-entries"],
                switches: &[],
            },
        )?),
        "join" => cmd_join(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["tau", "limit", "index-backend", "buffer-entries"],
                switches: &[],
            },
        )?),
        "batch" => cmd_batch(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[
                    "random",
                    "pairs",
                    "threads",
                    "cache",
                    "seed",
                    "index-backend",
                ],
                switches: &[],
            },
        )?),
        "serve" => cmd_serve(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[
                    "listen",
                    "unix",
                    "workers",
                    "cache",
                    "shards",
                    "max-connections",
                    "index-backend",
                    "index-root",
                    "watch-ms",
                    "slow-query-us",
                    "deadline-us",
                    "shed-queue-depth",
                    "shed-pending-bytes",
                    "rollback-errors",
                    "faults",
                    "metrics-snapshot",
                    "metrics-snapshot-ms",
                    "record",
                    "record-sample",
                    "cache-admission",
                ],
                switches: &["watch"],
            },
        )?),
        "generations" => cmd_generations(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["gc"],
                switches: &[],
            },
        )?),
        "promote" => cmd_promote(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["gen", "index", "graph"],
                switches: &[],
            },
        )?),
        "client" => cmd_client(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["connect", "unix"],
                switches: &["force"],
            },
        )?),
        "metrics" => cmd_metrics(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["connect", "unix"],
                switches: &["slow"],
            },
        )?),
        "bench-query" => cmd_bench_query(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["out", "pairs", "sources", "threads", "seed"],
                switches: &["quick", "trace"],
            },
        )?),
        "bench-serve" => cmd_bench_serve(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[
                    "threads",
                    "requests",
                    "hot",
                    "hot-keys",
                    "connections",
                    "out",
                    "workers",
                    "cache",
                    "shards",
                    "max-connections",
                    "index-backend",
                    "slow-query-us",
                    "seed",
                    "cache-admission",
                ],
                switches: &["quick", "trace"],
            },
        )?),
        "record" => cmd_record(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[
                    "connect",
                    "unix",
                    "out",
                    "duration-ms",
                    "poll-ms",
                    "max-records",
                ],
                switches: &[],
            },
        )?),
        "replay" => cmd_replay(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[
                    "synth",
                    "records",
                    "nodes",
                    "seed",
                    "speed",
                    "cache",
                    "cache-admission",
                    "spot-check",
                    "out",
                ],
                switches: &["suite"],
            },
        )?),
        "traffic-report" => cmd_traffic_report(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[],
                switches: &[],
            },
        )?),
        "transform" => cmd_transform(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["out", "k"],
                switches: &["text"],
            },
        )?),
        "ppr" => cmd_ppr(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["alpha", "top"],
                switches: &[],
            },
        )?),
        "audit" => cmd_audit(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["pairs", "mc", "seed"],
                switches: &["exact"],
            },
        )?),
        "compact" => cmd_compact(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &["out", "block-entries", "format"],
                switches: &["quantize"],
            },
        )?),
        "inspect" => cmd_inspect(&Args::parse(
            rest.iter().cloned(),
            Spec {
                value_flags: &[],
                switches: &[],
            },
        )?),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Convenience for tests: run a command given as whitespace-split string.
#[cfg(test)]
pub fn run_str(line: &str) -> Result<String, String> {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    run(&argv)
}

/// `sling transform`
pub fn cmd_transform(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "graph")?;
    let pass = args.positional(1, "pass")?;
    let out_path: String = args.flag_required("out")?;
    let g = load_graph(path)?;
    let (result, kept): (sling_graph::DiGraph, Option<usize>) = match pass {
        "largest-wcc" => {
            let r = sling_graph::transform::largest_wcc(&g);
            let kept = r.graph.num_nodes();
            (r.graph, Some(kept))
        }
        "transpose" => (sling_graph::transform::transpose(&g), None),
        "k-core" => {
            let k: usize = args.flag_required("k")?;
            let r = sling_graph::transform::k_core(&g, k);
            let kept = r.graph.num_nodes();
            (r.graph, Some(kept))
        }
        "peel-dangling" => {
            let r = sling_graph::transform::peel_dangling_in(&g);
            let kept = r.graph.num_nodes();
            (r.graph, Some(kept))
        }
        other => {
            return Err(format!(
                "unknown pass {other:?} (largest-wcc|transpose|k-core|peel-dangling)"
            ))
        }
    };
    save_graph(&result, &out_path, args.switch("text"))?;
    let note = kept
        .map(|k| format!(" ({k} of {} nodes kept)", g.num_nodes()))
        .unwrap_or_default();
    Ok(format!(
        "wrote {} (n = {}, m = {}){note}",
        out_path,
        result.num_nodes(),
        result.num_edges()
    ))
}

/// `sling ppr`
pub fn cmd_ppr(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "graph")?;
    let source = args.positional(1, "source")?;
    let alpha: f64 = args.flag_parse("alpha", 0.6f64.sqrt())?;
    let k: usize = args.flag_parse("top", 10usize)?;
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("--alpha must lie in (0,1), got {alpha}"));
    }
    let g = load_graph(path)?;
    let u = parse_node(source, g.num_nodes())?;
    let scores = sling_core::ppr::ppr_from_source(&g, alpha, u, 1e-12);
    let mut ranked: Vec<(usize, f64)> = scores
        .iter()
        .copied()
        .enumerate()
        .filter(|&(v, s)| v != u.index() && s > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    let mut out = String::new();
    writeln!(out, "top {k} PPR (alpha = {alpha:.3}) from node {}", u.0).unwrap();
    for (v, s) in ranked {
        writeln!(out, "  {v:>8}  {s:.6}").unwrap();
    }
    Ok(out)
}

/// Human + machine readable summary of one index file's geometry.
fn format_index_info(path: &str, info: &sling_core::IndexFileInfo) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{path}: {} index, n = {}, m = {}, {} entries",
        info.version, info.num_nodes, info.num_edges, info.entries
    )
    .unwrap();
    writeln!(
        out,
        "  total_bytes={} payload_bytes={} raw_payload_bytes={} meta_bytes={}",
        info.total_bytes,
        info.payload_bytes,
        info.raw_payload_bytes,
        info.total_bytes - info.payload_bytes,
    )
    .unwrap();
    if info.num_blocks > 0 {
        writeln!(
            out,
            "  blocks={} block_entries={} values_exact={} directory_bytes={} global_dict_bytes={}",
            info.num_blocks,
            info.block_entries,
            info.values_exact,
            info.directory_bytes,
            info.global_dict_bytes
        )
        .unwrap();
    }
    writeln!(
        out,
        "  payload_ratio={:.4} ({:.1}% of the raw layout)",
        info.compression_ratio(),
        info.compression_ratio() * 100.0
    )
    .unwrap();
    out
}

/// Human name of a value-section codec tag (see
/// `sling_core::codec::value`).
fn value_codec_name(tag: u8) -> &'static str {
    match tag {
        0 => "raw_f64",
        1 => "dict_f64",
        2 => "fixed_u32",
        3 => "global_dict",
        _ => "unknown",
    }
}

/// Per-section byte attribution lines appended by `sling inspect` — the
/// report that makes a compression win attributable to a column or
/// codec. The `payload_bytes=` line above stays sed-parseable.
fn format_breakdown(bd: &sling_core::PayloadBreakdown) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "  sections: steps_runs={} nodes={} values={} directory={} global_dict={}",
        bd.step_bytes, bd.node_bytes, bd.value_bytes, bd.directory_bytes, bd.global_dict_bytes
    )
    .unwrap();
    if !bd.value_codecs.is_empty() {
        let per_codec: Vec<String> = bd
            .value_codecs
            .iter()
            .map(|(tag, blocks, bytes)| format!("{}={bytes}B/{blocks}blk", value_codec_name(*tag)))
            .collect();
        writeln!(out, "  value_codecs: {}", per_codec.join(" ")).unwrap();
    }
    out
}

/// `sling inspect` — header version, per-section byte breakdown, and the
/// compression ratio of a persisted index (any format generation).
pub fn cmd_inspect(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "index")?;
    let info = sling_core::inspect_file(path).map_err(|e| format!("{path}: {e}"))?;
    let breakdown = sling_core::payload_breakdown_file(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = format_index_info(path, &info);
    out.push_str(&format_breakdown(&breakdown));
    Ok(out)
}

/// Parse a generation argument: `gen-0007`, `0007`, or `7`.
fn parse_gen(raw: &str) -> Result<GenId, String> {
    GenId::parse(raw)
        .or_else(|| raw.parse().ok().map(GenId))
        .ok_or_else(|| format!("cannot parse generation {raw:?} (expected gen-NNNN or NNNN)"))
}

/// `sling generations` — list and inspect the generations of an index
/// root, optionally garbage-collecting retired ones.
pub fn cmd_generations(args: &Args) -> Result<String, String> {
    let root = args.positional(0, "root")?;
    let store = GenerationStore::open(root).map_err(|e| format!("{root}: {e}"))?;
    let mut out = String::new();
    if let Some(keep) = args.flag("gc") {
        let keep: usize = keep
            .parse()
            .map_err(|_| format!("--gc: cannot parse {keep:?}"))?;
        let removed = store.gc(keep).map_err(|e| format!("{root}: {e}"))?;
        match removed.len() {
            0 => writeln!(
                out,
                "gc: nothing to retire (keeping {keep} rollback candidates)"
            )
            .unwrap(),
            n => writeln!(
                out,
                "gc: removed {n} retired generation(s): {}",
                removed
                    .iter()
                    .map(|g| g.dir_name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
            .unwrap(),
        }
    }
    let generations = store.list().map_err(|e| format!("{root}: {e}"))?;
    let current = store.current().map_err(|e| format!("{root}: {e}"))?;
    writeln!(
        out,
        "{root}: {} generation(s), current {}",
        generations.len(),
        current.map_or("none".to_string(), |g| g.dir_name())
    )
    .unwrap();
    for gen in generations {
        let marker = if Some(gen) == current { '*' } else { ' ' };
        let state = match current {
            Some(c) if gen == c => "current",
            Some(c) if gen < c => "retired",
            Some(_) => "pending",
            None => "pending",
        };
        match store.manifest(gen) {
            Ok(m) => {
                let graph = match &m.graph {
                    Some(g) => format!(", graph {} bytes", g.bytes),
                    None => String::new(),
                };
                writeln!(
                    out,
                    "{marker} {}  {}  n={} m={} eps={} c={} seed={}  index {} bytes{graph}  [{state}]",
                    gen.dir_name(),
                    m.format,
                    m.num_nodes,
                    m.num_edges,
                    m.epsilon,
                    m.c,
                    m.seed,
                    m.index.bytes,
                )
                .unwrap();
            }
            Err(e) => writeln!(out, "{marker} {}  INVALID: {e}", gen.dir_name()).unwrap(),
        }
    }
    Ok(out.trim_end().to_string())
}

/// `sling promote` — atomically promote a generation to `CURRENT`
/// (write-temp + fsync + rename; full payload verification first).
/// With `--index FILE` the file (and optionally `--graph FILE`) is first
/// *published* as a new generation, then promoted — the one-command path
/// from `sling build` output to a live server swap.
pub fn cmd_promote(args: &Args) -> Result<String, String> {
    let root = args.positional(0, "root")?;
    let store = GenerationStore::open(root).map_err(|e| format!("{root}: {e}"))?;
    if args.flag("gen").is_some() && args.flag("index").is_some() {
        return Err(
            "--gen and --index are mutually exclusive: --gen promotes an existing \
             generation, --index publishes a new one and promotes it"
                .to_string(),
        );
    }
    let (gen, published) = if let Some(index_path) = args.flag("index") {
        let index_bytes = std::fs::read(index_path).map_err(|e| format!("{index_path}: {e}"))?;
        let graph_bytes = match args.flag("graph") {
            Some(path) => Some(std::fs::read(path).map_err(|e| format!("{path}: {e}"))?),
            None => None,
        };
        let gen = store
            .publish_bytes(&index_bytes, graph_bytes.as_deref())
            .map_err(|e| format!("{index_path}: {e}"))?;
        (gen, true)
    } else if let Some(raw) = args.flag("gen") {
        (parse_gen(raw)?, false)
    } else {
        let latest = store
            .list()
            .map_err(|e| format!("{root}: {e}"))?
            .last()
            .copied()
            .ok_or_else(|| format!("{root}: no generations to promote (use --index FILE)"))?;
        (latest, false)
    };
    store
        .promote(gen)
        .map_err(|e| format!("{}: {e}", gen.dir_name()))?;
    Ok(format!(
        "{}{} is now CURRENT in {root} (verified, atomically promoted)",
        if published { "published " } else { "" },
        gen.dir_name()
    ))
}

/// `sling compact` — convert an index file to a block-compressed format
/// (`SLNGIDX3` by default, `--format v2` for the previous generation),
/// reporting before/after byte sizes. Lossless by default (bit-identical
/// answers from every backend); `--quantize` stores 4-byte fixed-point
/// values (≤ 2⁻³³ error, flagged in the header). No graph is needed: the
/// header fingerprint travels with the payload.
pub fn cmd_compact(args: &Args) -> Result<String, String> {
    let in_path = args.positional(0, "index")?;
    let out_path: String = args.flag_required("out")?;
    let block_entries: usize =
        args.flag_parse("block-entries", sling_core::codec::DEFAULT_BLOCK_ENTRIES)?;
    if block_entries == 0 {
        return Err("--block-entries must be at least 1".to_string());
    }
    let format = args.flag("format").unwrap_or("v3");
    if !matches!(format, "v2" | "v3") {
        return Err(format!("unknown --format {format:?} (v2|v3)"));
    }
    let opts = sling_core::CompressOptions {
        block_entries,
        quantize_values: args.switch("quantize"),
    };
    let bytes = std::fs::read(in_path).map_err(|e| format!("{in_path}: {e}"))?;
    let before = sling_core::inspect_bytes(&bytes).map_err(|e| format!("{in_path}: {e}"))?;
    let index = SlingIndex::decode(&bytes).map_err(|e| format!("{in_path}: {e}"))?;
    let out_bytes = match format {
        "v2" => index.to_bytes_v2(&opts),
        _ => index.to_bytes_v3(&opts),
    };
    std::fs::write(&out_path, &out_bytes).map_err(|e| format!("{out_path}: {e}"))?;
    let after = sling_core::inspect_bytes(&out_bytes).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format_index_info(in_path, &before));
    out.push_str(&format_index_info(&out_path, &after));
    writeln!(
        out,
        "compacted: payload {} -> {} bytes ({:.1}% of input), file {} -> {} bytes{}",
        before.payload_bytes,
        after.payload_bytes,
        100.0 * after.payload_bytes as f64 / before.payload_bytes.max(1) as f64,
        before.total_bytes,
        after.total_bytes,
        if opts.quantize_values {
            " [quantized values]"
        } else {
            " [lossless]"
        },
    )
    .unwrap();
    Ok(out)
}

/// One measured `(backend, workload)` cell of `sling bench-query`.
struct BenchRecord {
    backend: &'static str,
    workload: &'static str,
    queries: usize,
    elapsed_s: f64,
    latency: sling_bench::LatencySummary,
}

impl BenchRecord {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed_s.max(1e-12)
    }

    /// One JSON object on one line, keys in a fixed order so CI can
    /// extract fields with `sed`.
    fn to_json_line(&self) -> String {
        format!(
            "{{\"backend\": \"{}\", \"workload\": \"{}\", \"queries\": {}, \
             \"elapsed_s\": {:.6}, \"qps\": {:.1}, \"p50_us\": {:.2}, \
             \"p99_us\": {:.2}}}",
            self.backend,
            self.workload,
            self.queries,
            self.elapsed_s,
            self.qps(),
            self.latency.p50_us,
            self.latency.p99_us,
        )
    }
}

/// Workload inputs shared by every backend of one `bench-query` run.
struct BenchWorkloads {
    /// Uniform random pairs.
    mixed_pairs: Vec<(NodeId, NodeId)>,
    /// `(hub, random)` pairs — the skewed shape that triggers the
    /// galloping merge on power-law graphs.
    hub_pairs: Vec<(NodeId, NodeId)>,
    /// Single-source / top-k source nodes.
    sources: Vec<NodeId>,
    /// Repetitions of the whole-batch workload.
    batch_rounds: usize,
    threads: usize,
    /// Enable per-stage query tracing on the bench workspaces (the
    /// `--trace` flag). Off by default so the headline numbers measure
    /// the untraced kernel.
    trace: bool,
}

/// One `--trace` row: kernel-stage time accumulated across a whole
/// workload run on one backend.
struct TraceRow {
    backend: &'static str,
    workload: &'static str,
    stages: StageNanos,
}

/// Time `queries` invocations of `f`, returning the total plus
/// per-query latencies in µs.
fn time_each(queries: usize, mut f: impl FnMut(usize)) -> (f64, Vec<f64>) {
    let mut lat = Vec::with_capacity(queries);
    let start = std::time::Instant::now();
    for i in 0..queries {
        let q0 = std::time::Instant::now();
        f(i);
        lat.push(q0.elapsed().as_secs_f64() * 1e6);
    }
    (start.elapsed().as_secs_f64(), lat)
}

fn record(
    backend: &'static str,
    workload: &'static str,
    queries: usize,
    elapsed_s: f64,
    lat_us: Vec<f64>,
) -> BenchRecord {
    BenchRecord {
        backend,
        workload,
        queries,
        elapsed_s,
        latency: sling_bench::LatencySummary::from_latencies_us(lat_us),
    }
}

/// Run the pinned workloads against one backend and append the records.
/// `spot` holds the mem backend's answers for the first hub pairs; every
/// other backend must reproduce them bit-for-bit before being timed —
/// a perf number for a kernel that silently diverged is worse than no
/// number.
fn bench_one_backend<S: HpStore + Sync>(
    backend: &'static str,
    engine: &QueryEngine<'_, S>,
    g: &DiGraph,
    w: &BenchWorkloads,
    spot: &mut Vec<f64>,
    results: &mut Vec<BenchRecord>,
    traces: &mut Vec<TraceRow>,
) -> Result<(), String> {
    let err = |e: sling_core::SlingError| format!("{backend}: {e}");
    let mut ws = QueryWorkspace::new();
    ws.set_trace_enabled(w.trace);
    // Drain the workspace trace between workloads so each pushed row
    // covers exactly one timed loop (the spot-check above the first
    // loop, and the untraced materialized loop, are discarded).
    let trace_row = |traces: &mut Vec<TraceRow>, workload, stages: StageNanos| {
        if w.trace {
            traces.push(TraceRow {
                backend,
                workload,
                stages,
            });
        }
    };
    for (i, &(u, v)) in w.hub_pairs.iter().take(8).enumerate() {
        let s = engine.single_pair_with(g, &mut ws, u, v).map_err(err)?;
        if spot.len() <= i {
            spot.push(s);
        } else if s.to_bits() != spot[i].to_bits() {
            return Err(format!(
                "{backend}: hub pair ({},{}) diverged from mem: {s} vs {}",
                u.0, v.0, spot[i]
            ));
        }
    }

    let mut acc = 0.0f64;
    let _ = ws.take_trace();
    let (total, lat) = time_each(w.mixed_pairs.len(), |i| {
        let (u, v) = w.mixed_pairs[i];
        acc += engine
            .single_pair_with(g, &mut ws, u, v)
            .unwrap_or(f64::NAN);
    });
    trace_row(traces, "single_pair", ws.take_trace());
    results.push(record(
        backend,
        "single_pair",
        w.mixed_pairs.len(),
        total,
        lat,
    ));

    let (total, lat) = time_each(w.hub_pairs.len(), |i| {
        let (u, v) = w.hub_pairs[i];
        acc += engine
            .single_pair_with(g, &mut ws, u, v)
            .unwrap_or(f64::NAN);
    });
    trace_row(traces, "single_pair_hub", ws.take_trace());
    results.push(record(
        backend,
        "single_pair_hub",
        w.hub_pairs.len(),
        total,
        lat,
    ));

    // The pre-streaming reference kernel on the same hub workload: the
    // per-backend gap between this row and `single_pair_hub` is the
    // zero-copy + galloping win.
    let (total, lat) = time_each(w.hub_pairs.len(), |i| {
        let (u, v) = w.hub_pairs[i];
        acc += engine
            .single_pair_materialized_with(g, &mut ws, u, v)
            .unwrap_or(f64::NAN);
    });
    let _ = ws.take_trace();
    results.push(record(
        backend,
        "single_pair_materialized",
        w.hub_pairs.len(),
        total,
        lat,
    ));

    let mut ss = sling_core::single_source::SingleSourceWorkspace::new();
    ss.set_trace_enabled(w.trace);
    let mut out = Vec::new();
    let (total, lat) = time_each(w.sources.len(), |i| {
        engine
            .single_source_with(g, &mut ss, w.sources[i], &mut out)
            .unwrap_or_default();
        acc += out.first().copied().unwrap_or(0.0);
    });
    trace_row(traces, "single_source", ss.take_trace());
    results.push(record(
        backend,
        "single_source",
        w.sources.len(),
        total,
        lat,
    ));

    let mut scores = Vec::new();
    let (total, lat) = time_each(w.sources.len(), |i| {
        engine
            .single_source_with(g, &mut ss, w.sources[i], &mut scores)
            .unwrap_or_default();
        let top = sling_core::topk::select_top_k(&scores, Some(w.sources[i]), 10);
        acc += top.first().map(|&(_, s)| s).unwrap_or(0.0);
    });
    trace_row(traces, "top_k", ss.take_trace());
    results.push(record(backend, "top_k", w.sources.len(), total, lat));

    let (total, lat) = time_each(w.batch_rounds, |_| {
        let scores = engine
            .batch_single_pair(g, &w.mixed_pairs, w.threads)
            .unwrap_or_default();
        acc += scores.first().copied().unwrap_or(0.0);
    });
    // Amortize each whole-batch sample down to per-pair latency so the
    // p50/p99 columns mean the same thing in every row of the report
    // (queries already counts pairs, making qps per-pair too).
    let per_pair = w.mixed_pairs.len().max(1) as f64;
    let lat = lat.into_iter().map(|us| us / per_pair).collect();
    results.push(record(
        backend,
        "batch_single_pair",
        w.batch_rounds * w.mixed_pairs.len(),
        total,
        lat,
    ));
    std::hint::black_box(acc);
    Ok(())
}

/// `sling bench-query` — pinned single-pair / single-source / top-k /
/// batch workloads across all seven storage backends, emitting the
/// machine-readable `BENCH_query.json` perf baseline (throughput plus
/// p50/p99 latency per backend × workload) that CI and later perf PRs
/// are judged against. `--quick` shrinks the workloads for smoke runs.
pub fn cmd_bench_query(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let quick = args.switch("quick");
    let trace = args.switch("trace");
    let out_path: String = args.flag("out").unwrap_or("BENCH_query.json").to_string();
    let pairs_n: usize = args.flag_parse("pairs", if quick { 1000 } else { 4000 })?;
    let sources_n: usize = args.flag_parse("sources", if quick { 30 } else { 120 })?;
    let seed: u64 = args.flag_parse("seed", 1u64)?;
    let threads: usize = args.flag_parse(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let g = load_graph(graph_path)?;
    let n = g.num_nodes() as u32;
    if n < 2 {
        return Err("bench-query needs a graph with at least 2 nodes".to_string());
    }
    let index = load_index(&g, index_path)?;

    // Workloads, pinned by seed. The hub workload pairs the
    // highest-in-degree node (longest entry list) with uniform partners.
    let hub = g
        .nodes()
        .max_by_key(|&v| g.in_degree(v))
        .expect("non-empty graph");
    let mut state = seed | 1;
    let mixed_pairs: Vec<(NodeId, NodeId)> = (0..pairs_n)
        .map(|_| {
            let (u, v) = random_pair(&mut state, n);
            (NodeId(u), NodeId(v))
        })
        .collect();
    let hub_pairs: Vec<(NodeId, NodeId)> = (0..pairs_n)
        .map(|_| {
            let v = (xorshift(&mut state) % n as u64) as u32;
            (hub, NodeId(if v == hub.0 { (v + 1) % n } else { v }))
        })
        .collect();
    let sources: Vec<NodeId> = (0..sources_n)
        .map(|_| NodeId((xorshift(&mut state) % n as u64) as u32))
        .collect();
    let workloads = BenchWorkloads {
        mixed_pairs,
        hub_pairs,
        sources,
        batch_rounds: if quick { 2 } else { 4 },
        threads: threads.max(1),
        trace,
    };

    // Persist every format generation the seven backends serve, under a
    // temp dir that is removed on *every* exit path (a failing backend
    // must not leak index-sized files per invocation).
    let dir = std::env::temp_dir().join(format!("sling_bench_query_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let run_all = || -> Result<(Vec<BenchRecord>, Vec<TraceRow>), String> {
        let v1 = dir.join("bench.slng");
        let v2 = dir.join("bench.slng3");
        let v2q = dir.join("bench.q.slng3");
        index.save(&v1).map_err(|e| e.to_string())?;
        // Compressed backends serve the current best compressed format
        // (SLNGIDX3); v2 files go through the identical blocked readers.
        index
            .save_v3(&v2, &sling_core::CompressOptions::default())
            .map_err(|e| e.to_string())?;
        index
            .save_v3(
                &v2q,
                &sling_core::CompressOptions {
                    quantize_values: true,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
        let mut results: Vec<BenchRecord> = Vec::new();
        let mut traces: Vec<TraceRow> = Vec::new();
        let mut spot: Vec<f64> = Vec::new();
        {
            let engine = index.query_engine();
            bench_one_backend(
                "mem",
                &engine,
                &g,
                &workloads,
                &mut spot,
                &mut results,
                &mut traces,
            )?;
        }
        {
            let engine = QueryEngine::open_mmap(&g, &v1).map_err(|e| e.to_string())?;
            bench_one_backend(
                "mmap",
                &engine,
                &g,
                &workloads,
                &mut spot,
                &mut results,
                &mut traces,
            )?;
        }
        {
            let engine = QueryEngine::open_mmap_compressed(&g, &v2).map_err(|e| e.to_string())?;
            bench_one_backend(
                "mmap-compressed",
                &engine,
                &g,
                &workloads,
                &mut spot,
                &mut results,
                &mut traces,
            )?;
        }
        {
            // Quantized values differ from the lossless spot answers by
            // design; check internal consistency only.
            let engine = QueryEngine::open_mmap_compressed(&g, &v2q).map_err(|e| e.to_string())?;
            let mut q_spot = Vec::new();
            bench_one_backend(
                "mmap-compressed-quantized",
                &engine,
                &g,
                &workloads,
                &mut q_spot,
                &mut results,
                &mut traces,
            )?;
        }
        {
            let store = DiskHpStore::open(&g, &v1).map_err(|e| e.to_string())?;
            let engine = store.query_engine();
            bench_one_backend(
                "disk",
                &engine,
                &g,
                &workloads,
                &mut spot,
                &mut results,
                &mut traces,
            )?;
        }
        {
            let store = DiskHpStore::open(&g, &v2).map_err(|e| e.to_string())?;
            let engine = store.query_engine();
            bench_one_backend(
                "disk-compressed",
                &engine,
                &g,
                &workloads,
                &mut spot,
                &mut results,
                &mut traces,
            )?;
        }
        {
            let store = DiskHpStore::open(&g, &v1).map_err(|e| e.to_string())?;
            let buffered = BufferedDiskStore::new(&store, 1 << 20);
            let engine = buffered.query_engine();
            bench_one_backend(
                "disk-buffered",
                &engine,
                &g,
                &workloads,
                &mut spot,
                &mut results,
                &mut traces,
            )?;
        }
        Ok((results, traces))
    };
    let results = run_all();
    std::fs::remove_dir_all(&dir).ok();
    let (results, trace_rows) = results?;

    // Streaming-vs-materializing speedup per backend (hub workload).
    let qps_of = |backend: &str, workload: &str| {
        results
            .iter()
            .find(|r| r.backend == backend && r.workload == workload)
            .map(|r| r.qps())
            .unwrap_or(0.0)
    };
    let speedups: Vec<(&str, f64)> = [
        "mem",
        "mmap",
        "mmap-compressed",
        "mmap-compressed-quantized",
        "disk",
        "disk-compressed",
        "disk-buffered",
    ]
    .iter()
    .map(|&b| {
        let mat = qps_of(b, "single_pair_materialized");
        (b, qps_of(b, "single_pair_hub") / mat.max(1e-12))
    })
    .collect();

    // Machine-readable report: one result object per line.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"query\",");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(
        json,
        "  \"fixture\": {{\"nodes\": {}, \"edges\": {}, \"eps\": {}, \"c\": {}, \
         \"seed\": {seed}, \"quick\": {quick}, \"pairs\": {}, \"sources\": {}, \
         \"threads\": {}}},",
        g.num_nodes(),
        g.num_edges(),
        index.config().epsilon,
        index.config().c,
        workloads.mixed_pairs.len(),
        workloads.sources.len(),
        workloads.threads,
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            r.to_json_line(),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"streaming_speedup_hub\": {");
    for (i, (b, s)) in speedups.iter().enumerate() {
        let _ = write!(json, "{}\"{b}\": {s:.3}", if i > 0 { ", " } else { "" });
    }
    json.push_str("}\n}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;

    // Human summary.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-query: n = {}, m = {}, {} mixed + {} hub pairs, {} sources{}",
        g.num_nodes(),
        g.num_edges(),
        workloads.mixed_pairs.len(),
        workloads.hub_pairs.len(),
        workloads.sources.len(),
        if quick { " [quick]" } else { "" },
    );
    let _ = writeln!(
        out,
        "{:<26} {:<26} {:>12} {:>10} {:>10}",
        "backend", "workload", "qps", "p50", "p99"
    );
    for r in &results {
        let _ = writeln!(
            out,
            "{:<26} {:<26} {:>12.0} {:>10} {:>10}",
            r.backend,
            r.workload,
            r.qps(),
            sling_bench::fmt_secs(r.latency.p50_us / 1e6),
            sling_bench::fmt_secs(r.latency.p99_us / 1e6),
        );
    }
    for (b, s) in &speedups {
        let _ = writeln!(out, "streaming speedup ({b}, hub pairs): {s:.2}x");
    }
    if !trace_rows.is_empty() {
        let _ = writeln!(
            out,
            "kernel stage-time breakdown (--trace; total ms per workload):"
        );
        let _ = writeln!(
            out,
            "{:<26} {:<16} {:>11} {:>9} {:>9} {:>10}",
            "backend", "workload", "entry_fetch", "restore", "merge", "propagate"
        );
        let ms = |ns: u64| ns as f64 / 1e6;
        for row in &trace_rows {
            let _ = writeln!(
                out,
                "{:<26} {:<16} {:>11.2} {:>9.2} {:>9.2} {:>10.2}",
                row.backend,
                row.workload,
                ms(row.stages.entry_fetch),
                ms(row.stages.restore),
                ms(row.stages.merge),
                ms(row.stages.propagate),
            );
        }
    }
    let _ = writeln!(out, "wrote {out_path}");
    Ok(out)
}

/// `sling audit`
pub fn cmd_audit(args: &Args) -> Result<String, String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let g = load_graph(graph_path)?;
    let index = load_index(&g, index_path)?;
    let audit = if args.switch("exact") {
        if g.num_nodes() > 5000 {
            return Err(format!(
                "--exact builds an n x n ground truth; n = {} is too large (use sampled mode)",
                g.num_nodes()
            ));
        }
        sling_core::verify::audit_exact(&index, &g)
    } else {
        let pairs: usize = args.flag_parse("pairs", 200usize)?;
        let mc: u32 = args.flag_parse("mc", 50_000u32)?;
        let seed: u64 = args.flag_parse("seed", 1u64)?;
        sling_core::verify::audit_sampled(&index, &g, pairs, mc, seed)
    };
    Ok(format!(
        "{audit}\n{}",
        if audit.passed() { "PASS" } else { "FAIL" }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sling_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn datasets_lists_suite() {
        let out = run_str("datasets").unwrap();
        assert!(out.contains("grqc-sim"));
        assert!(out.contains("GrQc"));
    }

    #[test]
    fn generate_stats_roundtrip_binary_and_text() {
        let dir = tmpdir("gen");
        for (flag, file) in [("", "g.bin"), ("--text", "g.txt")] {
            let path = dir.join(file);
            let cmd = format!(
                "generate --ba 200,3 --seed 5 --out {} {flag}",
                path.display()
            );
            let out = run_str(cmd.trim()).unwrap();
            assert!(out.contains("n = 200"), "{out}");
            let stats = run_str(&format!("stats {} --degrees", path.display())).unwrap();
            assert!(stats.contains("n=200"), "{stats}");
            assert!(stats.contains("In-degree"), "{stats}");
        }
    }

    #[test]
    fn generate_requires_a_source() {
        let err = run_str("generate --out /tmp/x.bin").unwrap_err();
        assert!(err.contains("--dataset"));
    }

    #[test]
    fn full_pipeline_build_query_join() {
        let dir = tmpdir("pipeline");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!(
            "generate --ws 100,2,0.2 --seed 3 --out {}",
            g.display()
        ))
        .unwrap();
        let built = run_str(&format!(
            "build {} --out {} --eps 0.05 --seed 9",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(built.contains("built index"), "{built}");

        let pair = run_str(&format!("query {} {} pair 0 1", g.display(), idx.display())).unwrap();
        assert!(pair.starts_with("s(0, 1) ="), "{pair}");

        let source = run_str(&format!(
            "query {} {} source 0 --top 5",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(source.contains("top 5 similar to node 0"), "{source}");

        let join = run_str(&format!(
            "join {} {} --tau 0.05 --limit 3",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(join.contains("pairs with s >= 0.05"), "{join}");
    }

    #[test]
    fn query_backends_agree_and_report_themselves() {
        let dir = tmpdir("backends");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!(
            "generate --ba 150,3 --seed 8 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1 --seed 2",
            g.display(),
            idx.display()
        ))
        .unwrap();
        let score_of = |out: &str| out.split("   [").next().unwrap().to_string();
        let mem = run_str(&format!(
            "query {} {} pair 3 77",
            g.display(),
            idx.display()
        ))
        .unwrap();
        for backend in ["mmap", "disk"] {
            let got = run_str(&format!(
                "query {} {} pair 3 77 --index-backend {backend}",
                g.display(),
                idx.display()
            ))
            .unwrap();
            assert_eq!(score_of(&mem), score_of(&got), "{backend} diverged");
            assert!(got.contains("backend"), "{got}");
        }
        // Source mode and join run on every backend too.
        for backend in ["mem", "mmap", "disk"] {
            let src = run_str(&format!(
                "query {} {} source 0 --top 3 --index-backend {backend}",
                g.display(),
                idx.display()
            ))
            .unwrap();
            assert!(src.contains("top 3 similar to node 0"), "{src}");
            let join = run_str(&format!(
                "join {} {} --tau 0.2 --limit 2 --index-backend {backend}",
                g.display(),
                idx.display()
            ))
            .unwrap();
            assert!(join.contains("pairs with s >= 0.2"), "{join}");
        }
        // Unknown backend is rejected.
        assert!(run_str(&format!(
            "query {} {} pair 0 1 --index-backend floppy",
            g.display(),
            idx.display()
        ))
        .unwrap_err()
        .contains("index-backend"));
    }

    #[test]
    fn compact_inspect_and_compressed_backend_roundtrip() {
        let dir = tmpdir("compact");
        let g = dir.join("g.bin");
        let v1 = dir.join("idx.slng");
        let v2 = dir.join("idx.slng2");
        run_str(&format!(
            "generate --ba 300,3 --seed 11 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1 --seed 4",
            g.display(),
            v1.display()
        ))
        .unwrap();

        // Inspect the v1 file.
        let v1_info = run_str(&format!("inspect {}", v1.display())).unwrap();
        assert!(v1_info.contains("SLNGIDX1 index"), "{v1_info}");
        assert!(v1_info.contains("payload_ratio=1.0000"), "{v1_info}");

        // Lossless compact shrinks the payload; the default target is the
        // newest generation (SLNGIDX3, with the global value dictionary).
        let report = run_str(&format!("compact {} --out {}", v1.display(), v2.display())).unwrap();
        assert!(report.contains("[lossless]"), "{report}");
        assert!(report.contains("SLNGIDX3 index"), "{report}");
        let v2_info = run_str(&format!("inspect {}", v2.display())).unwrap();
        assert!(v2_info.contains("values_exact=true"), "{v2_info}");
        assert!(v2_info.contains("global_dict_bytes="), "{v2_info}");
        let ratio: f64 = v2_info
            .lines()
            .find_map(|l| l.trim().strip_prefix("payload_ratio="))
            .and_then(|l| l.split_whitespace().next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio < 0.8, "lossless compaction too weak: {ratio}");

        // Scores through the compressed backend match the mem backend
        // byte for byte in the formatted output.
        let score_of = |out: &str| out.split("   [").next().unwrap().to_string();
        let mem = run_str(&format!("query {} {} pair 3 77", g.display(), v1.display())).unwrap();
        let comp = run_str(&format!(
            "query {} {} pair 3 77 --index-backend mmap-compressed",
            g.display(),
            v2.display()
        ))
        .unwrap();
        assert_eq!(score_of(&mem), score_of(&comp));
        // The disk backend reads v2 blocks transparently; mem decodes v2.
        for backend in ["mem", "disk"] {
            let got = run_str(&format!(
                "query {} {} pair 3 77 --index-backend {backend}",
                g.display(),
                v2.display()
            ))
            .unwrap();
            assert_eq!(score_of(&mem), score_of(&got), "{backend} on v2 diverged");
        }
        // Batch over the compressed engine.
        let out = run_str(&format!(
            "batch {} {} --random 100 --threads 2 --index-backend mmap-compressed",
            g.display(),
            v2.display()
        ))
        .unwrap();
        assert!(out.contains("scored 100 pairs"), "{out}");

        // Wrong pairing of file and backend gives a pointed error.
        let err = run_str(&format!(
            "query {} {} pair 0 1 --index-backend mmap-compressed",
            g.display(),
            v1.display()
        ))
        .unwrap_err();
        assert!(err.contains("compact"), "{err}");
        let err = run_str(&format!(
            "query {} {} pair 0 1 --index-backend mmap",
            g.display(),
            v2.display()
        ))
        .unwrap_err();
        assert!(err.contains("mmap-compressed"), "{err}");

        // Quantized compact shrinks further and is flagged.
        let vq = dir.join("idx.q.slng2");
        let report = run_str(&format!(
            "compact {} --out {} --quantize",
            v1.display(),
            vq.display()
        ))
        .unwrap();
        assert!(report.contains("[quantized values]"), "{report}");
        let q_info = run_str(&format!("inspect {}", vq.display())).unwrap();
        assert!(q_info.contains("values_exact=false"), "{q_info}");
        let q_ratio: f64 = q_info
            .lines()
            .find_map(|l| l.trim().strip_prefix("payload_ratio="))
            .and_then(|l| l.split_whitespace().next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            q_ratio < ratio,
            "quantized {q_ratio} not below lossless {ratio}"
        );

        // The previous generation stays writable via --format v2 and
        // serves the same bits.
        let v2_old = dir.join("idx.v2.slng2");
        let report = run_str(&format!(
            "compact {} --out {} --format v2",
            v1.display(),
            v2_old.display()
        ))
        .unwrap();
        assert!(report.contains("SLNGIDX2 index"), "{report}");
        let got = run_str(&format!(
            "query {} {} pair 3 77 --index-backend mmap-compressed",
            g.display(),
            v2_old.display()
        ))
        .unwrap();
        assert_eq!(score_of(&mem), score_of(&got), "v2 backend diverged");

        // Bad invocations.
        assert!(run_str(&format!("compact {}", v1.display()))
            .unwrap_err()
            .contains("--out"));
        assert!(run_str("inspect /nonexistent.slng").is_err());
    }

    #[test]
    fn query_rejects_bad_nodes_and_modes() {
        let dir = tmpdir("badquery");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!("generate --er 20,60 --out {}", g.display())).unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(run_str(&format!(
            "query {} {} pair 0 99",
            g.display(),
            idx.display()
        ))
        .unwrap_err()
        .contains("out of range"));
        assert!(
            run_str(&format!("query {} {} walk 0", g.display(), idx.display()))
                .unwrap_err()
                .contains("unknown query mode")
        );
    }

    #[test]
    fn transform_pipeline() {
        let dir = tmpdir("transform");
        let g = dir.join("g.bin");
        run_str(&format!("generate --ba 100,2 --out {}", g.display())).unwrap();
        let wcc = dir.join("wcc.bin");
        let out = run_str(&format!(
            "transform {} largest-wcc --out {}",
            g.display(),
            wcc.display()
        ))
        .unwrap();
        assert!(out.contains("nodes kept"), "{out}");
        let t = dir.join("t.bin");
        run_str(&format!(
            "transform {} transpose --out {}",
            g.display(),
            t.display()
        ))
        .unwrap();
        let core = dir.join("core.bin");
        let out = run_str(&format!(
            "transform {} k-core --k 3 --out {}",
            g.display(),
            core.display()
        ))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(run_str(&format!(
            "transform {} bogus --out {}",
            g.display(),
            t.display()
        ))
        .unwrap_err()
        .contains("unknown pass"));
        assert!(run_str(&format!(
            "transform {} k-core --out {}",
            g.display(),
            t.display()
        ))
        .unwrap_err()
        .contains("--k"));
    }

    #[test]
    fn ppr_command_ranks() {
        let dir = tmpdir("ppr");
        let g = dir.join("g.bin");
        run_str(&format!(
            "generate --er 50,200 --seed 2 --out {}",
            g.display()
        ))
        .unwrap();
        let out = run_str(&format!("ppr {} 0 --top 3", g.display())).unwrap();
        assert!(out.contains("top 3 PPR"), "{out}");
        assert!(run_str(&format!("ppr {} 0 --alpha 1.5", g.display()))
            .unwrap_err()
            .contains("alpha"));
        assert!(run_str(&format!("ppr {} 999", g.display()))
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn audit_command_passes_on_fresh_index() {
        let dir = tmpdir("audit");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!(
            "generate --er 40,160 --seed 4 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1",
            g.display(),
            idx.display()
        ))
        .unwrap();
        let out = run_str(&format!(
            "audit {} {} --pairs 20 --mc 20000",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        let exact = run_str(&format!("audit {} {} --exact", g.display(), idx.display())).unwrap();
        assert!(exact.contains("PASS"), "{exact}");
    }

    #[test]
    fn batch_command_scores_pairs_on_every_backend() {
        let dir = tmpdir("batch");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!(
            "generate --ba 120,3 --seed 6 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1 --seed 3",
            g.display(),
            idx.display()
        ))
        .unwrap();
        for backend in ["mem", "mmap", "disk"] {
            let out = run_str(&format!(
                "batch {} {} --random 200 --threads 4 --index-backend {backend}",
                g.display(),
                idx.display()
            ))
            .unwrap();
            assert!(out.contains("scored 200 pairs"), "{backend}: {out}");
            assert!(out.contains("hit rate"), "{backend}: {out}");
        }
        // Cacheless path and a pairs file.
        let pairs_file = dir.join("pairs.txt");
        std::fs::write(&pairs_file, "# comment\n0 1\n5 80\n80 5\n").unwrap();
        let out = run_str(&format!(
            "batch {} {} --pairs {} --cache 0",
            g.display(),
            idx.display(),
            pairs_file.display()
        ))
        .unwrap();
        assert!(out.contains("scored 3 pairs"), "{out}");
        assert!(out.contains("cache: off"), "{out}");
        assert!(run_str(&format!("batch {} {}", g.display(), idx.display()))
            .unwrap_err()
            .contains("--random"));
    }

    #[test]
    fn serve_client_roundtrip_over_unix_socket() {
        let dir = tmpdir("serve");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!(
            "generate --ba 100,3 --seed 4 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1 --seed 2",
            g.display(),
            idx.display()
        ))
        .unwrap();
        let sock = dir.join("sling.sock");
        let snapshot = dir.join("metrics.json");
        let serve_cmd = format!(
            "serve {} {} --unix {} --workers 2 --cache 256 --index-backend mmap \
             --slow-query-us 1 --metrics-snapshot {} --metrics-snapshot-ms 20",
            g.display(),
            idx.display(),
            sock.display(),
            snapshot.display()
        );
        let server = std::thread::spawn(move || run_str(&serve_cmd));
        // Wait for the socket to come up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !sock.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let client = |mode: &str| run_str(&format!("client {mode} --unix {}", sock.display()));
        assert_eq!(client("ping").unwrap(), "pong");
        let pair = client("pair 0 1").unwrap();
        assert!(pair.starts_with("s(0, 1) ="), "{pair}");
        // Same canonical pair from the other order: identical output.
        assert_eq!(
            client("pair 1 0").unwrap().split('=').nth(1),
            pair.split('=').nth(1)
        );
        let topk = client("topk 0 3").unwrap();
        assert!(topk.contains("top 3 similar to node 0"), "{topk}");
        let stats = client("stats").unwrap();
        assert!(stats.contains("cache_hit_rate="), "{stats}");
        // Observability surface: the Prometheus exposition through both
        // the client mode and the dedicated `metrics` command, the
        // slow-query ring (threshold 1 µs admits everything), and the
        // periodic JSON snapshot file.
        let prom = client("metrics").unwrap();
        assert!(
            prom.contains("# TYPE sling_server_requests_total counter"),
            "{prom}"
        );
        assert!(prom.contains("sling_query_stage_merge_ns_count"), "{prom}");
        // A second scrape through the dedicated command (counters move
        // between scrapes, so compare families, not bytes).
        let prom2 = run_str(&format!("metrics --unix {}", sock.display())).unwrap();
        assert!(prom2.contains("sling_cache_hits_total"), "{prom2}");
        assert!(prom2.contains("sling_index_epoch"), "{prom2}");
        let slow = run_str(&format!("metrics --slow --unix {}", sock.display())).unwrap();
        assert!(slow.lines().all(|l| l.starts_with("slow verb=")), "{slow}");
        assert!(slow.contains("total_us="), "{slow}");
        assert_eq!(client("slowlog").unwrap(), slow);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !snapshot.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let snap = std::fs::read_to_string(&snapshot).unwrap();
        assert!(snap.contains("\"sling_server_requests_total\""), "{snap}");
        assert_eq!(client("shutdown").unwrap(), "server shutting down");
        let report = server.join().unwrap().unwrap();
        assert!(report.contains("server shut down"), "{report}");
        assert!(report.contains("hit rate"), "{report}");
        assert!(client("ping").is_err(), "socket should be gone");
    }

    #[test]
    fn bench_serve_reports_throughput_and_hit_rate() {
        let dir = tmpdir("benchserve");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!(
            "generate --ba 100,3 --seed 5 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1 --seed 9",
            g.display(),
            idx.display()
        ))
        .unwrap();
        let out = run_str(&format!(
            "bench-serve {} {} --threads 8 --requests 160 --workers 2 \
             --hot 0.9 --hot-keys 8 --index-backend mmap --trace",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(out.contains("req/s"), "{out}");
        // --trace appends the server-side stage breakdown read back from
        // the metrics registry after shutdown.
        assert!(out.contains("kernel stage breakdown"), "{out}");
        assert!(out.contains("propagate"), "{out}");
        assert!(out.contains("cache_hit_rate="), "{out}");
        assert!(out.contains("per-worker"), "{out}");
        // Client-side exact percentiles and the server's histogram-based
        // ones both surface.
        assert!(out.contains("client latency"), "{out}");
        assert!(out.contains("p999="), "{out}");
        assert!(out.contains("latency_p99_us="), "{out}");
        assert!(run_str(&format!(
            "bench-serve {} {} --hot 1.5",
            g.display(),
            idx.display()
        ))
        .unwrap_err()
        .contains("--hot"),);
    }

    #[test]
    fn bench_query_emits_the_json_baseline() {
        let dir = tmpdir("benchquery");
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        let json_path = dir.join("BENCH_query.json");
        run_str(&format!(
            "generate --ba 150,3 --seed 5 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1 --seed 9",
            g.display(),
            idx.display()
        ))
        .unwrap();
        let out = run_str(&format!(
            "bench-query {} {} --quick --pairs 60 --sources 4 --trace --out {}",
            g.display(),
            idx.display(),
            json_path.display()
        ))
        .unwrap();
        // --trace appends the per-workload stage-time table (4 traced
        // workloads x 7 backends).
        assert!(out.contains("kernel stage-time breakdown"), "{out}");
        assert_eq!(out.matches("single_source").count(), 7 + 7, "{out}");
        // All seven backends report, and the streaming-vs-materializing
        // comparison is part of the summary.
        for backend in [
            "mem",
            "mmap",
            "mmap-compressed",
            "mmap-compressed-quantized",
            "disk",
            "disk-compressed",
            "disk-buffered",
        ] {
            assert!(out.contains(backend), "{backend} missing: {out}");
        }
        assert!(out.contains("streaming speedup"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"bench\": \"query\""), "{json}");
        assert!(
            json.contains("\"backend\": \"mem\", \"workload\": \"single_pair\","),
            "{json}"
        );
        assert!(json.contains("\"streaming_speedup_hub\""), "{json}");
        assert!(json.contains("\"p99_us\""), "{json}");
        // Every backend × workload cell is present: 7 backends × 6
        // workloads.
        assert_eq!(json.matches("\"qps\":").count(), 42, "{json}");
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run_str("frobnicate").unwrap_err();
        assert!(err.contains("USAGE"));
        assert!(run_str("help").unwrap().contains("USAGE"));
    }

    /// One graph + index fixture shared by the workload tests below.
    fn workload_fixture(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
        let dir = tmpdir(tag);
        let g = dir.join("g.bin");
        let idx = dir.join("idx.slng");
        run_str(&format!(
            "generate --ba 120,3 --seed 6 --out {}",
            g.display()
        ))
        .unwrap();
        run_str(&format!(
            "build {} --out {} --eps 0.1 --seed 7",
            g.display(),
            idx.display()
        ))
        .unwrap();
        (dir, g, idx)
    }

    #[test]
    fn replay_synthesized_trace_with_spot_checks() {
        let (_dir, g, idx) = workload_fixture("replaysynth");
        let out = run_str(&format!(
            "replay {} {} --synth zipf --records 2000 --nodes 80 --seed 11 \
             --cache 64 --cache-admission tinylfu --spot-check 25",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(out.contains("replayed 2000 records"), "{out}");
        assert!(out.contains("policy tinylfu"), "{out}");
        assert!(out.contains("bit-identical"), "{out}");
        assert!(!out.contains("spot-checks: 0 bit-identical"), "{out}");
        // Cacheless replay of the same trace still works (and says so).
        let plain = run_str(&format!(
            "replay {} {} --synth zipf --records 500 --nodes 80 --seed 11",
            g.display(),
            idx.display()
        ))
        .unwrap();
        assert!(plain.contains("cache: off"), "{plain}");
        // Unknown scenario and missing trace are real errors.
        assert!(run_str(&format!(
            "replay {} {} --synth nope",
            g.display(),
            idx.display()
        ))
        .unwrap_err()
        .contains("unknown --synth"));
        assert!(
            run_str(&format!("replay {} {}", g.display(), idx.display()))
                .unwrap_err()
                .contains("--synth")
        );
    }

    #[test]
    fn replay_suite_writes_the_json_baseline() {
        let (dir, g, idx) = workload_fixture("replaysuite");
        let json_path = dir.join("BENCH_replay.json");
        let out = run_str(&format!(
            "replay {} {} --suite --records 4000 --out {}",
            g.display(),
            idx.display(),
            json_path.display()
        ))
        .unwrap();
        assert!(out.contains("adversarial scan"), "{out}");
        assert!(out.contains("advantage"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"bench\": \"replay\""), "{json}");
        assert!(json.contains("\"scenario\": \"zipf_sweep\""), "{json}");
        assert!(json.contains("\"scenario\": \"diurnal_burst\""), "{json}");
        // The adversarial scan appears under both policies.
        assert_eq!(
            json.matches("\"scenario\": \"adversarial_cold_scan\"")
                .count(),
            2,
            "{json}"
        );
        assert!(json.contains("\"hit_rate_tinylfu\""), "{json}");
        assert!(json.contains("\"advantage\""), "{json}");
        // Spot-checks ran in every suite row.
        assert!(!json.contains("\"spot_checks\": 0"), "{json}");
    }

    #[test]
    fn traffic_report_reads_a_written_trace() {
        let dir = tmpdir("report");
        let path = dir.join("t.slng");
        let trace = zipf_sweep(SynthOpts {
            nodes: 60,
            records: 3000,
            seed: 5,
        });
        let file = std::fs::File::create(&path).unwrap();
        let mut w = TraceWriter::new(std::io::BufWriter::new(file), trace.base_us).unwrap();
        for rec in &trace.records {
            w.write(rec).unwrap();
        }
        w.into_inner().unwrap();
        let out = run_str(&format!("traffic-report {}", path.display())).unwrap();
        assert!(out.contains("traffic report"), "{out}");
        assert!(out.contains("verb mix"), "{out}");
        assert!(out.contains("zipf exponent"), "{out}");
        assert!(out.contains("hit rate vs cache size"), "{out}");
        // A torn tail degrades to fewer records plus a note, not an error.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        let torn = dir.join("torn.slng");
        std::fs::write(&torn, &bytes).unwrap();
        let out = run_str(&format!("traffic-report {}", torn.display())).unwrap();
        assert!(out.contains("dropped by the tolerant reader"), "{out}");
        // A non-trace file is an error.
        assert!(run_str(&format!("traffic-report {}", dir.join("g.bin").display())).is_err());
    }

    #[test]
    fn record_capture_report_replay_roundtrip_over_live_server() {
        let (dir, g, idx) = workload_fixture("recordloop");
        let sock = dir.join("rec.sock");
        let server_trace = dir.join("server_side.slng");
        let serve_cmd = format!(
            "serve {} {} --unix {} --workers 2 --cache 64 --cache-admission tinylfu \
             --record {}",
            g.display(),
            idx.display(),
            sock.display(),
            server_trace.display()
        );
        let server = std::thread::spawn(move || run_str(&serve_cmd));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !sock.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let client = |mode: &str| run_str(&format!("client {mode} --unix {}", sock.display()));
        // Mixed traffic for the recorder to see.
        for i in 0..30u32 {
            client(&format!("pair {} {}", i % 7, (i + 1) % 13)).unwrap();
        }
        client("source 1").unwrap();
        client("topk 0 3").unwrap();
        // The STATS surface knows recording is on and which admission
        // policy the cache runs.
        let stats = client("stats").unwrap();
        assert!(stats.contains("trace=on"), "{stats}");
        assert!(stats.contains("cache_admission=tinylfu"), "{stats}");
        assert!(stats.contains("trace_records="), "{stats}");
        // Pull the same ring over the wire into a client-side capture.
        let cap = dir.join("capture.slng");
        let rec_out = run_str(&format!(
            "record --unix {} --out {} --duration-ms 600 --poll-ms 20",
            sock.display(),
            cap.display()
        ))
        .unwrap();
        assert!(rec_out.contains("captured"), "{rec_out}");
        assert!(!rec_out.contains("captured 0 records"), "{rec_out}");
        client("shutdown").unwrap();
        server.join().unwrap().unwrap();
        // The captured trace characterizes (32 pair-keyed lines dominate).
        let report = run_str(&format!("traffic-report {}", cap.display())).unwrap();
        assert!(report.contains("PAIR"), "{report}");
        // And replays against the local engine with every pair answer
        // spot-checked bit-identical through the cache — the record →
        // replay correctness loop.
        let replay = run_str(&format!(
            "replay {} {} {} --cache 32 --cache-admission tinylfu --spot-check 1",
            g.display(),
            idx.display(),
            cap.display()
        ))
        .unwrap();
        assert!(replay.contains("bit-identical"), "{replay}");
        assert!(!replay.contains("spot-checks: 0"), "{replay}");
        // The server-side recorder published its own complete file too
        // (tmp+rename: the final name is always a whole, parseable trace).
        let server_report = run_str(&format!("traffic-report {}", server_trace.display())).unwrap();
        assert!(server_report.contains("traffic report"), "{server_report}");
        assert!(!dir.join("server_side.slng.tmp").exists());
    }

    #[test]
    fn record_requires_a_recording_server() {
        let (dir, g, idx) = workload_fixture("recordoff");
        let sock = dir.join("plain.sock");
        let serve_cmd = format!(
            "serve {} {} --unix {} --workers 1",
            g.display(),
            idx.display(),
            sock.display()
        );
        let server = std::thread::spawn(move || run_str(&serve_cmd));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !sock.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let err = run_str(&format!(
            "record --unix {} --out {} --duration-ms 200",
            sock.display(),
            dir.join("nope.slng").display()
        ))
        .unwrap_err();
        assert!(err.contains("not enabled"), "{err}");
        run_str(&format!("client shutdown --unix {}", sock.display())).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn dataset_generation_by_name() {
        let dir = tmpdir("byname");
        let path = dir.join("as.bin");
        let out = run_str(&format!(
            "generate --dataset as-sim --out {}",
            path.display()
        ));
        // Name must exist in the suite; if suite names change this test
        // flags the CLI docs going stale.
        assert!(out.is_ok(), "{out:?}");
        assert!(
            run_str(&format!("generate --dataset nope --out {}", path.display()))
                .unwrap_err()
                .contains("unknown dataset")
        );
    }
}
