//! # sling-server
//!
//! A long-lived, concurrent query server over a shared SLING engine —
//! the serving layer the SkyServer-style production traces motivate:
//! heavily skewed, hot-key-dominated query streams answered by warm
//! workers sharing one immutable index and one global result cache.
//!
//! ## Architecture
//!
//! * **One engine, many workers.** The server holds an
//!   `Arc<SharedEngine<S>>` — typically over
//!   [`sling_core::MmapHpArena`], so the entry payload lives in the page
//!   cache — and spawns a *thread-per-core* worker pool. Each worker owns
//!   its [`sling_core::QueryWorkspace`] /
//!   [`sling_core::single_source::SingleSourceWorkspace`], so the hot
//!   path shares only immutable state plus the sharded cache.
//! * **Sharded result cache.** Single-pair answers are memoized in a
//!   [`sling_core::ShardedResultCache`] shared by all workers; pairs are
//!   canonicalized before computing, so responses are bit-identical
//!   regardless of argument order, cache state, or which worker computed
//!   the entry first.
//! * **Prefetch.** Before running a query, workers call
//!   [`sling_core::HpStore::prefetch`] for its endpoints — on the mmap
//!   backend that issues `madvise(WILLNEED)` for the entry byte ranges,
//!   so cold out-of-core queries fault their pages in one batch.
//! * **Hot generation reload.** The engine lives in an epoch-tagged
//!   [`ReloadableEngine`] slot wired (optionally) to a
//!   [`sling_core::lifecycle::GenerationStore`]: promoting a new index
//!   generation (`sling promote`) and issuing `RELOAD` — or running the
//!   server with a watch interval — hot-swaps engines under live
//!   traffic. In-flight requests finish on the generation they started
//!   on, the next request per worker picks up the new one (one atomic
//!   compare on the hot path), and the result cache's epoch advances
//!   with the swap so a hit computed against a retired index is never
//!   served. Freshly opened generations are warmed from the store's
//!   hot-key log before taking traffic.
//! * **Sessions, not requests, are scheduled.** The acceptor thread
//!   queues each incoming connection; a worker serves that connection's
//!   requests until it closes or goes quiet while others wait, in which
//!   case the session is parked back on the queue (partial read state
//!   intact) — idle clients cannot pin workers. Graceful shutdown:
//!   `SHUTDOWN` stops the acceptor, lets workers drain queued and
//!   in-flight sessions (idle readers wake on a poll-interval timeout),
//!   and [`ServerHandle::join`] returns a [`ServerReport`] with
//!   per-worker and cache statistics.
//!
//! ## Wire protocol
//!
//! Newline-delimited UTF-8 text over TCP or a Unix-domain socket; one
//! request line yields exactly one response line. Node ids are decimal
//! `u32`. Scores are printed with Rust's shortest round-trip `f64`
//! formatting, so parsing a score back yields the **bit-identical**
//! float the server computed.
//!
//! | request | response |
//! |---|---|
//! | `PAIR <u> <v>` | `OK <score>` — single-pair SimRank (Algorithm 3); symmetric, canonicalized to `(min, max)` |
//! | `SOURCE <u>` | `OK <n> <s0> .. <s_{n-1}>` — full single-source vector (Algorithm 6) |
//! | `TOPK <u> <k>` | `OK <m> <node>:<score> ..` — top-k most similar to `u`, excluding `u` |
//! | `BATCH <u1>,<v1> <u2>,<v2> ..` | `OK <m> <s1> .. <sm>` — positionally aligned single-pair scores |
//! | `STATS` | `OK key=value ..` — workers, per-worker served counts, the serving index generation (`index_generation`, `index_epoch`, `swaps`, `last_swap_unix_ms`), cache hits/misses/evictions/hit-rate, and query-latency percentiles (`latency_count`, `latency_p50_us`, `latency_p99_us`, `latency_p999_us`, from per-worker log-bucketed histograms: ~12% resolution, lock-free on the hot path) |
//! | `RELOAD` | `OK generation=<name> epoch=<e> swapped=<bool>` — check the generation store's `CURRENT` pointer and hot-swap to a newer promoted generation (`swapped=false` on pinned servers or when already current) |
//! | `PING` | `OK pong` |
//! | `QUIT` | `OK bye`, then the server closes this connection |
//! | `SHUTDOWN` | `OK shutting-down`, then the whole server drains and exits |
//!
//! Malformed requests and failed queries (node out of range, corrupt
//! index read) answer `ERR <message>` on the same connection — one bad
//! request never tears down the session, and IO errors only drop the
//! offending connection, never the server.
//!
//! ```text
//! > PAIR 3 77
//! OK 0.08421108008291852
//! > TOPK 3 2
//! OK 2 41:0.22182040766777856 17:0.1821445210624356
//! > STATS
//! OK workers=8 served=1042 per_worker=130,131,... cache=on cache_hits=512 ...
//! ```

pub mod client;
pub mod latency;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use latency::LatencyReport;
pub use protocol::Request;
pub use server::{
    serve, serve_reloadable, EngineGeneration, GenerationInfo, Listener, ReloadableEngine,
    ServerConfig, ServerHandle, ServerReport,
};

/// Type-erased bidirectional connection (TCP or Unix stream), shared by
/// the server's session queue and the client. Carries the read-timeout
/// setter so workers can shorten the poll when probing a possibly-idle
/// session while other connections wait.
pub(crate) trait Conn: std::io::Read + std::io::Write + Send {
    fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()>;
}

impl Conn for std::net::TcpStream {
    fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        std::net::TcpStream::set_read_timeout(self, timeout)
    }
}

impl Conn for std::os::unix::net::UnixStream {
    fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        std::os::unix::net::UnixStream::set_read_timeout(self, timeout)
    }
}

pub(crate) type BoxConn = Box<dyn Conn>;
