//! # sling-server
//!
//! A long-lived, concurrent query server over a shared SLING engine —
//! the serving layer the SkyServer-style production traces motivate:
//! heavily skewed, hot-key-dominated query streams answered by warm
//! workers sharing one immutable index and one global result cache.
//!
//! ## Architecture
//!
//! * **One engine, many event loops.** The server holds an
//!   `Arc<SharedEngine<S>>` — typically over
//!   [`sling_core::MmapHpArena`], so the entry payload lives in the page
//!   cache — and spawns a *thread-per-core* worker pool. Each worker owns
//!   one epoll instance (via the vendored `polling` stub: oneshot
//!   `epoll_ctl` interest plus a level-triggered eventfd waker) and its
//!   [`sling_core::QueryWorkspace`] /
//!   [`sling_core::single_source::SingleSourceWorkspace`], so the hot
//!   path shares only immutable state plus the sharded cache.
//! * **Sharded result cache.** Single-pair answers are memoized in a
//!   [`sling_core::ShardedResultCache`] shared by all workers; pairs are
//!   canonicalized before computing, so responses are bit-identical
//!   regardless of argument order, cache state, or which worker computed
//!   the entry first.
//! * **Prefetch.** Before running a query, workers call
//!   [`sling_core::HpStore::prefetch`] for its endpoints — on the mmap
//!   backend that issues `madvise(WILLNEED)` for the entry byte ranges,
//!   so cold out-of-core queries fault their pages in one batch.
//! * **Hot generation reload.** The engine lives in an epoch-tagged
//!   [`ReloadableEngine`] slot wired (optionally) to a
//!   [`sling_core::lifecycle::GenerationStore`]: promoting a new index
//!   generation (`sling promote`) and issuing `RELOAD` — or running the
//!   server with a watch interval — hot-swaps engines under live
//!   traffic. In-flight requests finish on the generation they started
//!   on, the next request per worker picks up the new one (one atomic
//!   compare on the hot path), and the result cache's epoch advances
//!   with the swap so a hit computed against a retired index is never
//!   served. Freshly opened generations are warmed from the store's
//!   hot-key log before taking traffic.
//! * **Nonblocking readiness loops, not blocking sessions.** The
//!   acceptor distributes incoming connections round-robin across the
//!   worker event loops (past [`ServerConfig::max_connections`] it
//!   answers `ERR busy` and closes instead). Each connection is a small
//!   state machine: requests are framed incrementally from whatever
//!   fragments arrive, all responses of one readiness turn are
//!   coalesced into a single `write`, and partial writes re-arm the
//!   connection for write readiness (with a pending-byte high-water
//!   mark for backpressure). Idle connections cost one epoll
//!   registration — no thread — so tens of thousands of mostly-idle
//!   clients are fine; busy pipeliners yield to the ready queue every
//!   64 requests, so they cannot starve others. Graceful shutdown:
//!   `SHUTDOWN` stores a flag and wakes every worker through its
//!   eventfd (lost-wakeup-safe), connections still owing work are
//!   drained for a grace period, idle ones are dropped, and
//!   [`ServerHandle::join`] returns a [`ServerReport`] with per-worker,
//!   connection, event-loop, and cache statistics.
//!
//! ## Wire protocol
//!
//! Newline-delimited UTF-8 text over TCP or a Unix-domain socket; one
//! request line yields exactly one response line. Node ids are decimal
//! `u32`. Scores are printed with Rust's shortest round-trip `f64`
//! formatting, so parsing a score back yields the **bit-identical**
//! float the server computed.
//!
//! | request | response |
//! |---|---|
//! | `PAIR <u> <v>` | `OK <score>` — single-pair SimRank (Algorithm 3); symmetric, canonicalized to `(min, max)` |
//! | `SOURCE <u>` | `OK <n> <s0> .. <s_{n-1}>` — full single-source vector (Algorithm 6) |
//! | `TOPK <u> <k>` | `OK <m> <node>:<score> ..` — top-k most similar to `u`, excluding `u` |
//! | `BATCH <u1>,<v1> <u2>,<v2> ..` | `OK <m> <s1> .. <sm>` — positionally aligned single-pair scores |
//! | `STATS` | `OK key=value ..` — workers, per-worker served counts, the serving index generation (`index_generation`, `index_epoch`, `swaps`, `last_swap_unix_ms`), connection gauges (`open_connections`, `idle_connections`, `rejected_connections`), per-worker event-loop counters (`evloop_wakeups`, `evloop_turns`, comma-separated like `per_worker`), cache hits/misses/evictions/hit-rate, and query-latency percentiles (`latency_count`, `latency_p50_us`, `latency_p99_us`, `latency_p999_us`, from per-worker log-bucketed histograms: ~12% resolution, lock-free on the hot path) |
//! | `METRICS` | `OK <bytes>` then exactly `<bytes>` payload bytes — the full Prometheus text exposition (see *Observability* below) |
//! | `SLOWLOG` | `OK <bytes>` then exactly `<bytes>` payload bytes — recent slow-query records, one per line, oldest first |
//! | `RELOAD` | `OK generation=<name> epoch=<e> swapped=<bool>` — check the generation store's `CURRENT` pointer and hot-swap to a newer promoted generation (`swapped=false` on pinned servers or when already current) |
//! | `PING` | `OK pong` |
//! | `QUIT` | `OK bye`, then the server closes this connection |
//! | `SHUTDOWN` | `OK shutting-down`, then the whole server drains and exits |
//!
//! Malformed requests and failed queries (node out of range, corrupt
//! index read) answer `ERR <message>` on the same connection — one bad
//! request never tears down the session, and IO errors only drop the
//! offending connection, never the server. An over-long request line
//! (> 1 MiB) answers `ERR request line too long` and is discarded up to
//! its terminating newline, so framing resyncs on the next request
//! instead of desyncing the stream.
//!
//! ```text
//! > PAIR 3 77
//! OK 0.08421108008291852
//! > TOPK 3 2
//! OK 2 41:0.22182040766777856 17:0.1821445210624356
//! > STATS
//! OK workers=8 served=1042 per_worker=130,131,... cache=on cache_hits=512 ...
//! ```
//!
//! ## Observability
//!
//! Every server owns a [`sling_core::obs::MetricsRegistry`] holding the
//! counters, gauges, and log-bucketed latency histograms of all layers:
//!
//! * **Server** — `sling_server_requests_total` (per-worker sharded),
//!   `sling_server_request_ns` (histogram), connection gauges
//!   (`sling_server_open_connections`, `sling_server_active_connections`,
//!   `sling_server_rejected_connections_total`), event-loop counters
//!   (`sling_evloop_wakeups_total`, `sling_evloop_turns_total`), and
//!   `sling_slow_queries_total`.
//! * **Cache** — `sling_cache_{hits,misses,evictions}_total` plus the
//!   `sling_cache_entries` / `sling_cache_capacity` gauges.
//! * **Kernel stages** — per-query breakdowns recorded by the traced
//!   worker workspaces into `sling_query_stage_{entry_fetch,restore,
//!   merge,propagate}_ns` histograms, alongside the process-wide kernel
//!   counters (`sling_kernel_*_total`, `sling_buffered_disk_*_total`)
//!   from [`sling_core::obs::KERNEL`].
//! * **Lifecycle** — `sling_lifecycle_*_total` (publish / promote / GC /
//!   warm-up) and the swap-slot family (`sling_index_epoch`,
//!   `sling_index_swaps_total`, `sling_index_reload_failures_total`), so
//!   a hot reload is visible in the same scrape as the latency shift it
//!   caused.
//!
//! Names follow `sling_<subsystem>_<what>[_total|_ns]`: `_total` marks
//! monotone counters, `_ns` marks nanosecond histograms rendered on an
//! exact power-of-two `le` ladder (1 µs … ~17 s). The `METRICS` and
//! `SLOWLOG` responses are **length-framed** because their payloads are
//! multi-line: the response is `OK <bytes>\n` followed by exactly
//! `<bytes>` payload bytes (always newline-terminated); everything else
//! on the connection stays newline-delimited. Queries at or above
//! [`ServerConfig::slow_query_us`] are admitted to a fixed-capacity ring
//! ([`sling_core::obs::SlowQueryLog`]) as structured one-line records:
//! `slow verb=.. key=.. generation=.. epoch=.. total_us=..
//! entry_fetch_us=.. restore_us=.. merge_us=.. propagate_us=..`.
//!
//! ## Error taxonomy and the client retry contract
//!
//! Every failure a client can observe falls into exactly one of two
//! classes, and the `ERR` message's **first token** is the contract:
//!
//! * **Retryable** — the request was refused *before* any query work
//!   ran, so retrying cannot double-apply anything and the answer,
//!   once admitted, is bit-identical to an unrefused run:
//!   * `ERR overloaded` — admission control shed the request because
//!     the worker's ready queue crossed
//!     [`ServerConfig::shed_queue_depth`] or the connection's pending
//!     bytes crossed [`ServerConfig::shed_pending_bytes`]. The
//!     connection stays open; back off and retry on it.
//!   * `ERR deadline` — the request sat in server buffers longer than
//!     [`ServerConfig::deadline_us`] before dispatch; the server
//!     answers instead of burning index time on a reply the caller has
//!     likely abandoned. Connection stays open.
//!   * `ERR busy` — the acceptor is at
//!     [`ServerConfig::max_connections`]; the server closes this
//!     connection, so reconnect before retrying.
//!   * Connection-level IO errors (reset / refused / aborted / broken
//!     pipe / unexpected EOF / timeout) — the request outcome is
//!     unknown, but every query verb is a pure read, so reconnect and
//!     retry is always safe.
//! * **Permanent** — any other `ERR <message>` (unknown verb, parse
//!   failure, node out of range, over-long line, corrupt index read).
//!   Retrying the same request yields the same refusal; surface it.
//!
//! [`client::RetryingClient`] implements the client half of this
//! contract: **idempotent query verbs only** (`PAIR`, `SOURCE`,
//! `TOPK`, `BATCH`, `PING`) are retried, up to
//! [`client::ClientConfig::max_retries`] times with exponential
//! backoff and deterministic jitter, reconnecting when the taxonomy
//! calls for it. Mutating admin verbs (`RELOAD`, `SHUTDOWN`) are never
//! auto-retried — use [`client::RetryingClient::raw`] and decide at
//! the call site. Shed and deadline refusals are counted in
//! `sling_requests_shed_total` / `sling_requests_deadline_total`;
//! client-side retries, reconnects, and give-ups land in
//! `sling_retries_total`, `sling_client_reconnects_total`, and
//! `sling_client_giveups_total`.
//!
//! ## Fault injection
//!
//! The server's IO edges (`server.accept`, `server.read`,
//! `server.write`) are instrumented with
//! [`sling_core::faults`] checkpoints, alongside the storage-layer
//! points (`disk.read`, `mmap.validate`, `lifecycle.publish`,
//! `lifecycle.promote`). A deterministic fault schedule (`SLING_FAULTS`
//! or `sling serve --faults`) drives the chaos suite in
//! `tests/chaos.rs`; with no schedule installed every checkpoint is a
//! single relaxed atomic load. Runtime `CorruptIndex` / IO errors
//! observed while serving count against the live generation; at
//! [`ServerConfig::rollback_error_threshold`] the generation is
//! quarantined and the server rolls back to the newest verified prior
//! generation (`sling_rollbacks_total`), refusing to re-promote the
//! quarantined one until `RELOAD FORCE`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod latency;
pub mod protocol;
mod recorder;
pub mod server;

pub use client::{Client, ClientConfig, RetryingClient, TraceSegment};
pub use latency::LatencyReport;
pub use protocol::Request;
pub use server::{
    serve, serve_reloadable, EngineGeneration, GenerationInfo, Listener, ReloadableEngine,
    ServerConfig, ServerHandle, ServerReport,
};

/// Type-erased bidirectional connection (TCP or Unix stream) used by
/// the blocking [`Client`]. (The server side no longer boxes
/// connections: its readiness loop owns nonblocking sockets directly.)
pub(crate) trait Conn: std::io::Read + std::io::Write + Send {}

impl Conn for std::net::TcpStream {}

impl Conn for std::os::unix::net::UnixStream {}

pub(crate) type BoxConn = Box<dyn Conn>;
