//! Workload capture: the in-server traffic-trace recorder.
//!
//! The recorder sits between the worker event loops and the
//! `SLNGTRACE` file format (see `sling_core::workload::trace`). Its
//! contract is **never block a worker**: a request outcome is pushed
//! into a fixed ring under a `try_lock` — if the lock is contended the
//! record is *dropped and counted*, not waited for. Everything slow
//! (encoding, file IO, fsync) happens on a dedicated writer thread that
//! drains the ring by sequence number; a drain that falls behind the
//! ring's retention loses the overwritten records, and the gap is
//! counted as drops too. The counters never lie: `records + dropped`
//! equals the number of outcomes offered to the recorder (after
//! sampling).
//!
//! The capture file is published atomically: the writer creates
//! `FILE.tmp`, writes the header, fsyncs, and renames it to `FILE`
//! once — the fd follows the inode, so the writer keeps appending to
//! the published path and a reader never observes a file without a
//! valid header.
//!
//! The same ring also feeds the `TRACE <from> <max>` wire verb
//! ([`TraceRecorder::read_from`]), so `sling record` can tail a live
//! server over the protocol without touching its capture file.

use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sling_core::obs::WORKLOAD;
use sling_core::workload::trace::{TraceKey, TraceOutcome, TraceRecord, TraceVerb, TraceWriter};

/// Ring retention (records). Power of two so the seq→slot map is a
/// mask. At ~60 bytes a record this bounds recorder memory to a few MB
/// while giving the writer thread (and `TRACE` pollers) tens of
/// milliseconds of slack at even extreme query rates.
pub(crate) const RING_CAPACITY: usize = 1 << 16;

/// Upper bound on records served by one `TRACE` verb response.
pub(crate) const MAX_TRACE_BATCH: usize = 4096;

/// Writer-thread drain cadence.
const WRITER_POLL: Duration = Duration::from_millis(20);

/// Records drained per lock acquisition, so a full-ring catch-up does
/// not hold the lock (and starve `push`) for the whole sweep.
const WRITER_CHUNK: usize = 1024;

/// One chunk of the ring, as served to the `TRACE` verb and the writer
/// thread: the capture origin, the next sequence number the recorder
/// will assign (so a poller knows where to resume), the cumulative drop
/// count, and `(seq, record)` pairs in sequence order.
pub(crate) struct TraceChunk {
    pub base_us: u64,
    pub next_seq: u64,
    pub dropped: u64,
    pub records: Vec<(u64, TraceRecord)>,
}

struct Ring {
    slots: Box<[Option<(u64, TraceRecord)>]>,
    next_seq: u64,
}

/// The recorder: sampling gate, drop counters, and the retention ring.
pub(crate) struct TraceRecorder {
    /// Wall-clock capture origin (unix microseconds), written into the
    /// trace header and the `TRACE` verb's response.
    base_us: u64,
    /// Monotonic origin; record timestamps are measured against it.
    start: Instant,
    /// Keep every Nth outcome (1 = keep all).
    sample: u64,
    sample_counter: AtomicU64,
    records: AtomicU64,
    dropped: AtomicU64,
    /// Bytes written to the capture file (maintained by the writer
    /// thread; stays 0 for ring-only recorders).
    bytes: AtomicU64,
    ring: Mutex<Ring>,
}

impl TraceRecorder {
    pub(crate) fn new(base_us: u64, sample: u64) -> TraceRecorder {
        TraceRecorder {
            base_us,
            start: Instant::now(),
            sample: sample.max(1),
            sample_counter: AtomicU64::new(0),
            records: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                slots: vec![None; RING_CAPACITY].into_boxed_slice(),
                next_seq: 0,
            }),
        }
    }

    /// Offer one request outcome. Sampled out → free. Ring contended →
    /// dropped and counted. Never blocks.
    pub(crate) fn push(
        &self,
        verb: TraceVerb,
        key: TraceKey,
        outcome: TraceOutcome,
        latency: Duration,
        epoch: u64,
    ) {
        if self.sample > 1
            && !self
                .sample_counter
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample)
        {
            return;
        }
        let rec = TraceRecord {
            t_us: self.start.elapsed().as_micros() as u64,
            verb,
            key,
            outcome,
            latency_us: latency.as_micros().min(u32::MAX as u128) as u32,
            epoch,
        };
        match self.ring.try_lock() {
            Ok(mut ring) => {
                let seq = ring.next_seq;
                ring.next_seq += 1;
                let idx = seq as usize & (RING_CAPACITY - 1);
                ring.slots[idx] = Some((seq, rec));
                self.records.fetch_add(1, Ordering::Relaxed);
                WORKLOAD.trace_records.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => self.note_dropped(1),
        }
    }

    fn note_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
        WORKLOAD.trace_dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Records currently retained with `seq >= from`, up to `max`, in
    /// sequence order. Entries older than the ring's retention are
    /// simply absent — the caller detects the loss from the sequence
    /// gap (the writer thread charges it to `dropped`; `sling record`
    /// reports it).
    pub(crate) fn read_from(&self, from: u64, max: usize) -> TraceChunk {
        let ring = match self.ring.lock() {
            Ok(guard) => guard,
            // A panic while holding the ring lock cannot corrupt the
            // slot array (each slot write is all-or-nothing), so a
            // poisoned ring keeps serving.
            Err(poisoned) => poisoned.into_inner(),
        };
        let next = ring.next_seq;
        let lo = from.max(next.saturating_sub(RING_CAPACITY as u64));
        let mut records = Vec::new();
        let mut seq = lo;
        while seq < next && records.len() < max {
            if let Some((s, rec)) = ring.slots[seq as usize & (RING_CAPACITY - 1)] {
                if s == seq {
                    records.push((seq, rec));
                }
            }
            seq += 1;
        }
        TraceChunk {
            base_us: self.base_us,
            next_seq: next,
            dropped: self.dropped.load(Ordering::Relaxed),
            records,
        }
    }

    /// Capture origin (unix microseconds).
    pub(crate) fn base_us(&self) -> u64 {
        self.base_us
    }

    /// `STATS` counters: records captured, dropped, file bytes written.
    pub(crate) fn counters(&self) -> (u64, u64, u64) {
        (
            self.records.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }
}

/// The writer thread: drain the ring to `path` until `is_shutdown`
/// reports true *and* the ring is empty, then flush, fsync, and exit.
///
/// IO errors are terminal for the file (one stderr line; the ring and
/// the `TRACE` verb keep working) — a capture must never take down the
/// server that is being observed.
pub(crate) fn writer_loop(recorder: &TraceRecorder, path: &Path, is_shutdown: impl Fn() -> bool) {
    match write_capture(recorder, path, is_shutdown) {
        Ok(()) => {}
        Err(e) => eprintln!(
            "sling-server: trace capture to {} failed: {e}",
            path.display()
        ),
    }
}

fn write_capture(
    recorder: &TraceRecorder,
    path: &Path,
    is_shutdown: impl Fn() -> bool,
) -> std::io::Result<()> {
    // Header to FILE.tmp, fsync, publish by rename. The fd follows the
    // inode: appends after the rename land in the published file.
    let tmp = tmp_path(path);
    let file = std::fs::File::create(&tmp)?;
    let mut writer = TraceWriter::new(BufWriter::new(file), recorder.base_us())?;
    writer.flush()?;
    writer.get_ref().get_ref().sync_data()?;
    std::fs::rename(&tmp, path)?;
    let mut cursor = 0u64;
    let mut published = writer.bytes_written();
    recorder.bytes.store(published, Ordering::Relaxed);
    WORKLOAD.trace_bytes.fetch_add(published, Ordering::Relaxed);
    loop {
        let stopping = is_shutdown();
        let mut wrote = false;
        loop {
            let chunk = recorder.read_from(cursor, WRITER_CHUNK);
            if chunk.records.is_empty() {
                // Everything still retained is on disk; anything the
                // ring already overwrote is unrecoverable — charge it.
                if chunk.next_seq > cursor {
                    recorder.note_dropped(chunk.next_seq - cursor);
                    cursor = chunk.next_seq;
                }
                break;
            }
            for &(seq, ref rec) in &chunk.records {
                if seq > cursor {
                    recorder.note_dropped(seq - cursor);
                }
                writer.write(rec)?;
                cursor = seq + 1;
            }
            wrote = true;
        }
        if wrote {
            writer.flush()?;
            writer.get_ref().get_ref().sync_data()?;
            let total = writer.bytes_written();
            recorder.bytes.store(total, Ordering::Relaxed);
            WORKLOAD
                .trace_bytes
                .fetch_add(total - published, Ordering::Relaxed);
            published = total;
        }
        if stopping {
            return Ok(());
        }
        std::thread::sleep(WRITER_POLL);
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_core::workload::trace::read_trace_file;
    use std::sync::atomic::AtomicBool;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sling_recorder_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn push_n(rec: &TraceRecorder, n: usize) {
        for i in 0..n {
            rec.push(
                TraceVerb::Pair,
                TraceKey::Pair(i as u32, i as u32 + 1),
                TraceOutcome::Ok,
                Duration::from_micros(7),
                3,
            );
        }
    }

    #[test]
    fn ring_serves_reads_by_sequence() {
        let rec = TraceRecorder::new(1_000_000, 1);
        push_n(&rec, 10);
        let chunk = rec.read_from(0, 100);
        assert_eq!(chunk.next_seq, 10);
        assert_eq!(chunk.records.len(), 10);
        assert_eq!(chunk.records[0].0, 0);
        assert_eq!(
            chunk.records[4].1.key,
            TraceKey::Pair(4, 5),
            "slots map back to their sequence"
        );
        // Resume from the middle.
        let tail = rec.read_from(7, 100);
        assert_eq!(tail.records.len(), 3);
        assert_eq!(tail.records[0].0, 7);
        // max is honoured.
        assert_eq!(rec.read_from(0, 3).records.len(), 3);
    }

    #[test]
    fn ring_overwrite_drops_oldest_not_newest() {
        let rec = TraceRecorder::new(0, 1);
        push_n(&rec, RING_CAPACITY + 50);
        let chunk = rec.read_from(0, RING_CAPACITY + 100);
        assert_eq!(chunk.next_seq, (RING_CAPACITY + 50) as u64);
        assert_eq!(chunk.records.len(), RING_CAPACITY);
        assert_eq!(chunk.records[0].0, 50, "oldest 50 were overwritten");
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let rec = TraceRecorder::new(0, 4);
        push_n(&rec, 40);
        let chunk = rec.read_from(0, 100);
        assert_eq!(chunk.records.len(), 10);
        let (records, dropped, _) = rec.counters();
        assert_eq!(records, 10);
        assert_eq!(dropped, 0, "sampled-out records are not drops");
    }

    #[test]
    fn writer_publishes_by_rename_and_drains_on_shutdown() {
        let dir = tmp_root("publish");
        let path = dir.join("capture.trace");
        let rec = TraceRecorder::new(42_000_000, 1);
        push_n(&rec, 257);
        let stop = AtomicBool::new(true); // one pass: drain + exit
        writer_loop(&rec, &path, || stop.load(Ordering::Relaxed));
        assert!(!tmp_path(&path).exists(), "tmp file was renamed away");
        let trace = read_trace_file(&path).unwrap();
        assert_eq!(trace.base_us, 42_000_000);
        assert_eq!(trace.records.len(), 257);
        assert_eq!(trace.records[0].key, TraceKey::Pair(0, 1));
        let (records, dropped, bytes) = rec.counters();
        assert_eq!(records, 257);
        assert_eq!(dropped, 0);
        assert!(bytes > 0);
        // Timestamps decoded monotone.
        for pair in trace.records.windows(2) {
            assert!(pair[0].t_us <= pair[1].t_us);
        }
    }

    #[test]
    fn writer_charges_overwritten_records_as_drops() {
        let dir = tmp_root("lossy");
        let path = dir.join("lossy.trace");
        let rec = TraceRecorder::new(0, 1);
        push_n(&rec, RING_CAPACITY + 10);
        let stop = AtomicBool::new(true);
        writer_loop(&rec, &path, || stop.load(Ordering::Relaxed));
        let trace = read_trace_file(&path).unwrap();
        assert_eq!(trace.records.len(), RING_CAPACITY);
        let (_, dropped, _) = rec.counters();
        assert_eq!(dropped, 10, "the 10 overwritten records are counted");
    }
}
