//! Re-export of the shared histogram from `sling-core::obs` — the one
//! log-bucketed histogram implementation in the tree (it started life
//! here; the `obs` subsystem generalized it, and its tests moved with
//! it). Workers record query latency into per-worker shards with one
//! relaxed `fetch_add`; `STATS` and `METRICS` merge the shards on
//! demand.

pub use sling_core::obs::histogram::{merge_report, Histogram, LatencyReport};

/// Historical name of [`Histogram`] in this crate.
pub type LatencyHistogram = Histogram;
