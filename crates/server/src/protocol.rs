//! Request parsing and response formatting for the wire protocol
//! (see the crate docs for the full grammar).
//!
//! Scores travel as text produced by Rust's `{}` formatting of `f64` —
//! the shortest decimal that round-trips — so `parse::<f64>()` on the
//! client recovers the bit-identical value the server computed. That is
//! what lets the equivalence tests compare served scores against the
//! serial in-memory path with `==` rather than a tolerance.

use std::fmt::Write as _;

/// Upper bound on one request line; longer lines are rejected before
/// parsing so a misbehaving client cannot balloon server memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `PAIR <u> <v>` — single-pair SimRank score.
    Pair { u: u32, v: u32 },
    /// `SOURCE <u>` — full single-source score vector.
    Source { u: u32 },
    /// `TOPK <u> <k>` — the `k` most similar nodes to `u`.
    TopK { u: u32, k: usize },
    /// `BATCH <u1>,<v1> ..` — positionally aligned single-pair scores.
    Batch { pairs: Vec<(u32, u32)> },
    /// `STATS` — server and cache counters.
    Stats,
    /// `METRICS` — full Prometheus text exposition, length-framed as
    /// `OK <bytes>` followed by exactly that many payload bytes.
    Metrics,
    /// `SLOWLOG` — recent slow-query records, length-framed like
    /// `METRICS` (one record per line, oldest first).
    Slowlog,
    /// `TRACE <from> <max>` — up to `max` retained traffic-trace
    /// records with sequence number `>= from`, length-framed like
    /// `METRICS`. The payload's first line is
    /// `base_us=<u64> next_seq=<u64> dropped=<u64>`; each further line
    /// is `<seq> <record>` where `<record>` is a `SLNGTRACE` record
    /// line with its timestamp encoded absolute (delta from 0). Only
    /// answered by servers started with recording enabled.
    Trace {
        /// First sequence number wanted (poll cursor; start at 0).
        from: u64,
        /// Maximum records in the response (server clamps further).
        max: usize,
    },
    /// `RELOAD` — check the generation store's `CURRENT` pointer and
    /// hot-swap to a newer promoted generation if one exists. `RELOAD
    /// FORCE` additionally lifts a quarantine (see the crate docs on
    /// corrupt-generation rollback) before swapping.
    Reload {
        /// Lift the target generation's quarantine before swapping.
        force: bool,
    },
    /// `PING` — liveness probe.
    Ping,
    /// `QUIT` — close this connection.
    Quit,
    /// `SHUTDOWN` — drain and stop the whole server.
    Shutdown,
}

impl Request {
    /// Parse one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or("empty request")?;
        let req = match verb {
            "PAIR" => Request::Pair {
                u: parse_node(tokens.next(), "u")?,
                v: parse_node(tokens.next(), "v")?,
            },
            "SOURCE" => Request::Source {
                u: parse_node(tokens.next(), "u")?,
            },
            "TOPK" => Request::TopK {
                u: parse_node(tokens.next(), "u")?,
                k: tokens
                    .next()
                    .ok_or("TOPK expects <u> <k>")?
                    .parse()
                    .map_err(|_| "TOPK: cannot parse <k>".to_string())?,
            },
            "BATCH" => {
                let mut pairs = Vec::new();
                for tok in tokens.by_ref() {
                    let (u, v) = tok
                        .split_once(',')
                        .ok_or_else(|| format!("BATCH: expected <u>,<v>, got {tok:?}"))?;
                    pairs.push((parse_node(Some(u), "u")?, parse_node(Some(v), "v")?));
                }
                if pairs.is_empty() {
                    return Err("BATCH expects at least one <u>,<v> pair".to_string());
                }
                Request::Batch { pairs }
            }
            "STATS" => Request::Stats,
            "METRICS" => Request::Metrics,
            "SLOWLOG" => Request::Slowlog,
            "TRACE" => Request::Trace {
                from: tokens
                    .next()
                    .ok_or("TRACE expects <from> <max>")?
                    .parse()
                    .map_err(|_| "TRACE: cannot parse <from>".to_string())?,
                max: tokens
                    .next()
                    .ok_or("TRACE expects <from> <max>")?
                    .parse()
                    .map_err(|_| "TRACE: cannot parse <max>".to_string())?,
            },
            "RELOAD" => match tokens.next() {
                None => Request::Reload { force: false },
                Some("FORCE") => Request::Reload { force: true },
                Some(other) => {
                    return Err(format!("RELOAD takes no argument or FORCE, got {other:?}"))
                }
            },
            "PING" => Request::Ping,
            "QUIT" => Request::Quit,
            "SHUTDOWN" => Request::Shutdown,
            other => return Err(format!("unknown request {other:?}")),
        };
        if tokens.next().is_some() {
            return Err(format!("trailing arguments after {verb}"));
        }
        Ok(req)
    }

    /// Encode this request as one protocol line (without the newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Pair { u, v } => format!("PAIR {u} {v}"),
            Request::Source { u } => format!("SOURCE {u}"),
            Request::TopK { u, k } => format!("TOPK {u} {k}"),
            Request::Batch { pairs } => {
                let mut out = String::from("BATCH");
                for (u, v) in pairs {
                    let _ = write!(out, " {u},{v}");
                }
                out
            }
            Request::Stats => "STATS".to_string(),
            Request::Metrics => "METRICS".to_string(),
            Request::Slowlog => "SLOWLOG".to_string(),
            Request::Trace { from, max } => format!("TRACE {from} {max}"),
            Request::Reload { force: false } => "RELOAD".to_string(),
            Request::Reload { force: true } => "RELOAD FORCE".to_string(),
            Request::Ping => "PING".to_string(),
            Request::Quit => "QUIT".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

fn parse_node(tok: Option<&str>, name: &str) -> Result<u32, String> {
    let raw = tok.ok_or_else(|| format!("missing <{name}>"))?;
    raw.parse()
        .map_err(|_| format!("cannot parse node id {raw:?}"))
}

/// Append a score list to a response line: `<count> <s0> <s1> ..`.
pub(crate) fn write_scores(out: &mut String, scores: &[f64]) {
    let _ = write!(out, "{}", scores.len());
    for s in scores {
        let _ = write!(out, " {s}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            Request::parse("PAIR 3 77").unwrap(),
            Request::Pair { u: 3, v: 77 }
        );
        assert_eq!(
            Request::parse("SOURCE 9").unwrap(),
            Request::Source { u: 9 }
        );
        assert_eq!(
            Request::parse("TOPK 5 10").unwrap(),
            Request::TopK { u: 5, k: 10 }
        );
        assert_eq!(
            Request::parse("BATCH 1,2 3,4").unwrap(),
            Request::Batch {
                pairs: vec![(1, 2), (3, 4)]
            }
        );
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        assert_eq!(Request::parse("METRICS").unwrap(), Request::Metrics);
        assert_eq!(Request::parse("SLOWLOG").unwrap(), Request::Slowlog);
        assert_eq!(
            Request::parse("TRACE 17 4096").unwrap(),
            Request::Trace {
                from: 17,
                max: 4096
            }
        );
        assert_eq!(
            Request::parse("RELOAD").unwrap(),
            Request::Reload { force: false }
        );
        assert_eq!(
            Request::parse("RELOAD FORCE").unwrap(),
            Request::Reload { force: true }
        );
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(Request::parse("QUIT").unwrap(), Request::Quit);
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn encode_parse_roundtrip() {
        for req in [
            Request::Pair {
                u: 0,
                v: 4_000_000_000,
            },
            Request::Source { u: 17 },
            Request::TopK { u: 2, k: 50 },
            Request::Batch {
                pairs: vec![(9, 8), (7, 6), (5, 5)],
            },
            Request::Stats,
            Request::Metrics,
            Request::Slowlog,
            Request::Trace { from: 0, max: 256 },
            Request::Reload { force: false },
            Request::Reload { force: true },
            Request::Ping,
            Request::Quit,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "PAIR",
            "PAIR 1",
            "PAIR 1 2 3",
            "PAIR x y",
            "SOURCE",
            "TOPK 1",
            "TOPK 1 x",
            "BATCH",
            "BATCH 1 2",
            "BATCH 1,",
            "FROBNICATE 1",
            "STATS now",
            "METRICS json",
            "SLOWLOG 5",
            "TRACE",
            "TRACE 1",
            "TRACE x 5",
            "TRACE 1 y",
            "TRACE 1 2 3",
            "RELOAD now",
            "RELOAD FORCE now",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn score_text_roundtrips_bit_identically() {
        let mut line = String::new();
        let scores = [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 0.0, 1.0];
        write_scores(&mut line, &scores);
        let mut toks = line.split_ascii_whitespace();
        assert_eq!(toks.next().unwrap(), "5");
        for want in scores {
            let got: f64 = toks.next().unwrap().parse().unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
