//! Blocking protocol client, used by the CLI `client` / `bench-serve`
//! subcommands and the loopback tests.
//!
//! One request, one response line (see the crate docs for the grammar).
//! `ERR <message>` responses surface as [`std::io::ErrorKind::InvalidData`]
//! errors carrying the server's message; the connection stays usable.
//!
//! [`RetryingClient`] wraps [`Client`] with the fault-tolerant policy
//! the crate docs' *error taxonomy* section defines: socket timeouts,
//! automatic reconnect, and bounded exponential backoff with jitter,
//! retrying **idempotent query verbs only** and only on retryable
//! errors (`ERR overloaded` / `ERR deadline` / `ERR busy` and
//! connection-level IO failures). Permanent errors — any other `ERR`,
//! malformed responses — surface immediately.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::Duration;

use sling_core::obs::CLIENT;
use sling_core::workload::trace::{parse_record, TraceRecord};

use crate::protocol::Request;
use crate::BoxConn;

/// One response to the `TRACE` wire verb (see [`Client::trace_from`]):
/// a window of the server's traffic-trace ring.
#[derive(Clone, Debug, Default)]
pub struct TraceSegment {
    /// Wall-clock capture origin (unix microseconds); record
    /// timestamps are relative to it.
    pub base_us: u64,
    /// The sequence number the server will assign next — resume
    /// polling here.
    pub next_seq: u64,
    /// Cumulative records the server has dropped (ring contention and
    /// overwrites).
    pub dropped: u64,
    /// `(sequence, record)` pairs in sequence order; record timestamps
    /// are absolute microseconds since `base_us`.
    pub records: Vec<(u64, TraceRecord)>,
}

/// Timeouts and retry policy for [`RetryingClient`] (and the `*_with`
/// constructors on [`Client`]).
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout (`None` = OS default). Unix-domain connects
    /// are local and complete immediately; the field is ignored there.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Retries *after* the first attempt (0 = fail on first error).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on one backoff delay (before jitter halves it at most).
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_retries: 4,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            jitter_seed: 0x5157_F00D,
        }
    }
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<BoxConn>,
    line: String,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self::from_conn(Box::new(stream)))
    }

    /// Connect over TCP with the config's connect/read/write timeouts.
    pub fn connect_tcp_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        Self::connect_addrs(&addrs, config)
    }

    fn connect_addrs(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<Client> {
        let mut last = None;
        for addr in addrs {
            let attempt = match config.connect_timeout {
                Some(limit) => TcpStream::connect_timeout(addr, limit),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_write_timeout(config.write_timeout)?;
                    return Ok(Self::from_conn(Box::new(stream)));
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")
        }))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Self::from_conn(Box::new(UnixStream::connect(path)?)))
    }

    /// Connect over a Unix-domain socket with the config's read/write
    /// timeouts.
    pub fn connect_unix_with(path: impl AsRef<Path>, config: &ClientConfig) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(Self::from_conn(Box::new(stream)))
    }

    fn from_conn(conn: BoxConn) -> Client {
        Client {
            reader: BufReader::new(conn),
            line: String::new(),
        }
    }

    /// Send one request line, return the `OK` payload (without the `OK`
    /// prefix).
    fn roundtrip(&mut self, request: &str) -> io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let response = self.line.trim_end_matches(['\n', '\r']);
        if let Some(payload) = response.strip_prefix("OK") {
            Ok(payload.trim_start().to_string())
        } else if let Some(message) = response.strip_prefix("ERR") {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server error: {}", message.trim_start()),
            ))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response {response:?}"),
            ))
        }
    }

    /// Single-pair SimRank score (bit-identical to the server's f64).
    pub fn pair(&mut self, u: u32, v: u32) -> io::Result<f64> {
        let payload = self.roundtrip(&Request::Pair { u, v }.encode())?;
        parse_f64(&payload)
    }

    /// Full single-source score vector from `u`.
    pub fn single_source(&mut self, u: u32) -> io::Result<Vec<f64>> {
        let payload = self.roundtrip(&Request::Source { u }.encode())?;
        parse_counted_scores(&payload)
    }

    /// Top-k most similar nodes to `u`.
    pub fn top_k(&mut self, u: u32, k: usize) -> io::Result<Vec<(u32, f64)>> {
        let payload = self.roundtrip(&Request::TopK { u, k }.encode())?;
        let mut tokens = payload.split_ascii_whitespace();
        let count: usize = parse_tok(tokens.next(), "top-k count")?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let tok = tokens
                .next()
                .ok_or_else(|| invalid("truncated top-k response"))?;
            let (node, score) = tok
                .split_once(':')
                .ok_or_else(|| invalid("malformed top-k item"))?;
            out.push((parse_tok(Some(node), "node id")?, parse_f64(score)?));
        }
        Ok(out)
    }

    /// Positionally aligned scores for a batch of pairs.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> io::Result<Vec<f64>> {
        let request = Request::Batch {
            pairs: pairs.to_vec(),
        }
        .encode();
        let payload = self.roundtrip(&request)?;
        let scores = parse_counted_scores(&payload)?;
        if scores.len() != pairs.len() {
            return Err(invalid("batch response length mismatch"));
        }
        Ok(scores)
    }

    /// Raw `key=value ..` statistics payload.
    pub fn stats_line(&mut self) -> io::Result<String> {
        self.roundtrip(&Request::Stats.encode())
    }

    /// Full Prometheus text exposition (the `METRICS` verb).
    pub fn metrics(&mut self) -> io::Result<String> {
        self.framed(&Request::Metrics.encode())
    }

    /// Recent slow-query records, one line each, oldest first (the
    /// `SLOWLOG` verb). An empty string means no queries crossed the
    /// threshold (or the log is disabled).
    pub fn slow_queries(&mut self) -> io::Result<String> {
        let payload = self.framed(&Request::Slowlog.encode())?;
        Ok(payload.trim_end_matches('\n').to_string())
    }

    /// Poll the server's traffic-trace ring (the `TRACE` verb): up to
    /// `max` retained records with sequence number `>= from`, in
    /// sequence order. Resume the next poll at
    /// [`TraceSegment::next_seq`] of the previous one; gaps in the
    /// returned sequence numbers are records the ring already
    /// overwrote. Errors with `server error: trace recording is not
    /// enabled ..` unless the server was started with recording on.
    pub fn trace_from(&mut self, from: u64, max: usize) -> io::Result<TraceSegment> {
        let payload = self.framed(&Request::Trace { from, max }.encode())?;
        let mut lines = payload.lines();
        let header = lines.next().ok_or_else(|| invalid("empty TRACE payload"))?;
        let mut seg = TraceSegment {
            base_us: 0,
            next_seq: 0,
            dropped: 0,
            records: Vec::new(),
        };
        for kv in header.split_ascii_whitespace() {
            if let Some(v) = kv.strip_prefix("base_us=") {
                seg.base_us = v.parse().map_err(|_| invalid("malformed base_us"))?;
            } else if let Some(v) = kv.strip_prefix("next_seq=") {
                seg.next_seq = v.parse().map_err(|_| invalid("malformed next_seq"))?;
            } else if let Some(v) = kv.strip_prefix("dropped=") {
                seg.dropped = v.parse().map_err(|_| invalid("malformed dropped"))?;
            }
        }
        for line in lines {
            let (seq, rest) = line
                .split_once(' ')
                .ok_or_else(|| invalid("malformed TRACE line"))?;
            let seq: u64 = seq.parse().map_err(|_| invalid("malformed TRACE seq"))?;
            // Wire lines carry absolute timestamps (delta from 0).
            let rec = parse_record(rest, 0)
                .map_err(|e| invalid(&format!("corrupt TRACE record: {e}")))?;
            seg.records.push((seq, rec));
        }
        Ok(seg)
    }

    /// Send one request whose response is length-framed: an `OK <bytes>`
    /// header line, then exactly that many payload bytes. This is how
    /// multi-line payloads travel over the one-line protocol.
    fn framed(&mut self, request: &str) -> io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let header = self.line.trim_end_matches(['\n', '\r']);
        let len: usize = if let Some(rest) = header.strip_prefix("OK") {
            rest.trim()
                .parse()
                .map_err(|_| invalid(&format!("malformed length header {header:?}")))?
        } else if let Some(message) = header.strip_prefix("ERR") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server error: {}", message.trim_start()),
            ));
        } else {
            return Err(invalid(&format!("malformed response {header:?}")));
        };
        let mut payload = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match self.reader.read(&mut payload[filled..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "framed payload truncated: header promised {len} bytes, \
                             connection closed after {filled}"
                        ),
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        String::from_utf8(payload).map_err(|_| invalid("payload is not valid UTF-8"))
    }

    /// Ask the server to check for (and hot-swap to) a newer promoted
    /// index generation. Returns the generation now being served and
    /// whether this call swapped it in.
    pub fn reload(&mut self) -> io::Result<(String, bool)> {
        self.reload_with(false)
    }

    /// [`Client::reload`] with an optional `FORCE`: lifting a corrupt
    /// generation's quarantine before swapping (see the crate docs on
    /// rollback).
    pub fn reload_with(&mut self, force: bool) -> io::Result<(String, bool)> {
        let payload = self.roundtrip(&Request::Reload { force }.encode())?;
        let mut generation = None;
        let mut swapped = None;
        for kv in payload.split_ascii_whitespace() {
            if let Some(v) = kv.strip_prefix("generation=") {
                generation = Some(v.to_string());
            } else if let Some(v) = kv.strip_prefix("swapped=") {
                swapped = v.parse().ok();
            }
        }
        match (generation, swapped) {
            (Some(g), Some(s)) => Ok((g, s)),
            _ => Err(invalid("malformed reload response")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let payload = self.roundtrip(&Request::Ping.encode())?;
        if payload == "pong" {
            Ok(())
        } else {
            Err(invalid("unexpected ping response"))
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.roundtrip(&Request::Shutdown.encode()).map(|_| ())
    }

    /// Close this session server-side.
    pub fn quit(&mut self) -> io::Result<()> {
        self.roundtrip(&Request::Quit.encode()).map(|_| ())
    }
}

/// Where a [`RetryingClient`] reconnects to.
enum Target {
    Tcp(Vec<SocketAddr>),
    Unix(PathBuf),
}

/// Classification of a failed request: does the error taxonomy (crate
/// docs) permit retrying it, and must the connection be rebuilt first?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Disposition {
    /// Soft server rejection (`ERR overloaded` / `ERR deadline`): the
    /// connection is still healthy, retry on it after backing off.
    RetrySameConn,
    /// Connection-level failure (reset, timeout, EOF, `ERR busy`):
    /// drop the socket, reconnect, then retry.
    RetryReconnect,
    /// Permanent: surface to the caller immediately.
    Permanent,
}

/// Apply the crate-level error taxonomy to one failed request.
fn classify(err: &io::Error) -> Disposition {
    match err.kind() {
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionRefused
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::NotConnected
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::UnexpectedEof
        | io::ErrorKind::TimedOut
        | io::ErrorKind::WouldBlock
        | io::ErrorKind::Interrupted => return Disposition::RetryReconnect,
        io::ErrorKind::InvalidData => {}
        _ => return Disposition::Permanent,
    }
    // `Client` surfaces `ERR <msg>` as InvalidData "server error: <msg>".
    let Some(message) = err
        .to_string()
        .strip_prefix("server error: ")
        .map(str::to_string)
    else {
        return Disposition::Permanent;
    };
    let first = message.split_ascii_whitespace().next().unwrap_or("");
    match first {
        // Soft rejections: the server kept the connection open.
        "overloaded" | "deadline" => Disposition::RetrySameConn,
        // The acceptor answers `ERR busy` and closes; reconnect.
        "busy" => Disposition::RetryReconnect,
        _ => Disposition::Permanent,
    }
}

/// A [`Client`] wrapper implementing the retry contract from the crate
/// docs: idempotent query verbs (`PAIR`, `SOURCE`, `TOPK`, `BATCH`,
/// `PING`) are retried on retryable errors with bounded exponential
/// backoff plus deterministic jitter, reconnecting as needed. Retries
/// and reconnects are counted into [`sling_core::obs::CLIENT`], so an
/// in-process client shows up in the same `METRICS` exposition as the
/// server it talks to.
pub struct RetryingClient {
    target: Target,
    config: ClientConfig,
    client: Option<Client>,
    rng: u64,
}

impl RetryingClient {
    /// Connect over TCP (resolving `addr` once, up front).
    pub fn connect_tcp(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let mut this = Self::new(Target::Tcp(addrs), config);
        this.ensure_connected()?;
        Ok(this)
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>, config: ClientConfig) -> io::Result<Self> {
        let mut this = Self::new(Target::Unix(path.as_ref().to_path_buf()), config);
        this.ensure_connected()?;
        Ok(this)
    }

    fn new(target: Target, config: ClientConfig) -> Self {
        let rng = config.jitter_seed | 1;
        RetryingClient {
            target,
            config,
            client: None,
            rng,
        }
    }

    fn ensure_connected(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            let fresh = match &self.target {
                Target::Tcp(addrs) => Client::connect_addrs(addrs, &self.config)?,
                Target::Unix(path) => Client::connect_unix_with(path, &self.config)?,
            };
            self.client = Some(fresh);
        }
        match self.client.as_mut() {
            Some(client) => Ok(client),
            // Unreachable: the slot was filled just above.
            None => Err(io::Error::other("connection slot empty")),
        }
    }

    /// Next backoff delay: exponential in the retry ordinal, capped at
    /// `backoff_max`, uniformly jittered into `[delay/2, delay]`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.config.backoff_max).as_micros() as u64;
        // xorshift64 step for the jitter draw.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let jittered = capped / 2 + x % (capped / 2).max(1);
        Duration::from_micros(jittered)
    }

    /// Run one idempotent request under the retry policy.
    fn with_retry<T>(&mut self, mut op: impl FnMut(&mut Client) -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            let result = match self.ensure_connected() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let disposition = classify(&err);
            if disposition == Disposition::Permanent || attempt >= self.config.max_retries {
                if disposition != Disposition::Permanent {
                    CLIENT.giveups.fetch_add(1, Ordering::Relaxed);
                }
                return Err(err);
            }
            if disposition == Disposition::RetryReconnect {
                self.client = None;
                CLIENT.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            CLIENT.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.backoff(attempt));
            attempt += 1;
        }
    }

    /// [`Client::pair`], retried per the policy.
    pub fn pair(&mut self, u: u32, v: u32) -> io::Result<f64> {
        self.with_retry(|c| c.pair(u, v))
    }

    /// [`Client::single_source`], retried per the policy.
    pub fn single_source(&mut self, u: u32) -> io::Result<Vec<f64>> {
        self.with_retry(|c| c.single_source(u))
    }

    /// [`Client::top_k`], retried per the policy.
    pub fn top_k(&mut self, u: u32, k: usize) -> io::Result<Vec<(u32, f64)>> {
        self.with_retry(|c| c.top_k(u, k))
    }

    /// [`Client::batch`], retried per the policy.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> io::Result<Vec<f64>> {
        self.with_retry(|c| c.batch(pairs))
    }

    /// [`Client::ping`], retried per the policy.
    pub fn ping(&mut self) -> io::Result<()> {
        self.with_retry(|c| c.ping())
    }

    /// The underlying connection, for non-idempotent verbs (`RELOAD`,
    /// `SHUTDOWN`, ..) that must **not** be retried blindly. Reconnects
    /// first if the previous request tore the connection down.
    pub fn raw(&mut self) -> io::Result<&mut Client> {
        self.ensure_connected()
    }
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

fn parse_f64(raw: &str) -> io::Result<f64> {
    raw.trim()
        .parse()
        .map_err(|_| invalid(&format!("cannot parse score {raw:?}")))
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> io::Result<T> {
    tok.ok_or_else(|| invalid(&format!("missing {what}")))?
        .parse()
        .map_err(|_| invalid(&format!("cannot parse {what}")))
}

/// Parse `<count> <s0> <s1> ..` into a score vector.
fn parse_counted_scores(payload: &str) -> io::Result<Vec<f64>> {
    let mut tokens = payload.split_ascii_whitespace();
    let count: usize = parse_tok(tokens.next(), "score count")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(parse_f64(
            tokens.next().ok_or_else(|| invalid("truncated scores"))?,
        )?);
    }
    if tokens.next().is_some() {
        return Err(invalid("trailing tokens after scores"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_err(msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("server error: {msg}"))
    }

    #[test]
    fn taxonomy_classifies_soft_rejections_as_retryable() {
        assert_eq!(
            classify(&server_err("overloaded")),
            Disposition::RetrySameConn
        );
        assert_eq!(
            classify(&server_err("deadline budget exhausted")),
            Disposition::RetrySameConn
        );
        assert_eq!(classify(&server_err("busy")), Disposition::RetryReconnect);
    }

    #[test]
    fn taxonomy_classifies_other_server_errors_as_permanent() {
        assert_eq!(
            classify(&server_err("node 99 out of range")),
            Disposition::Permanent
        );
        assert_eq!(
            classify(&server_err("unknown request")),
            Disposition::Permanent
        );
        // Malformed responses are InvalidData without the prefix.
        assert_eq!(
            classify(&invalid("malformed response \"?\"")),
            Disposition::Permanent
        );
    }

    #[test]
    fn taxonomy_classifies_connection_failures_as_reconnect() {
        for kind in [
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert_eq!(
                classify(&io::Error::new(kind, "boom")),
                Disposition::RetryReconnect,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn backoff_is_bounded_and_grows() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            jitter_seed: 7,
            ..ClientConfig::default()
        };
        let mut client = RetryingClient::new(Target::Unix(PathBuf::from("/nonexistent")), config);
        let early = client.backoff(0);
        assert!(early >= Duration::from_millis(5) && early <= Duration::from_millis(10));
        for attempt in 0..40 {
            let d = client.backoff(attempt);
            assert!(d >= Duration::from_millis(5), "attempt {attempt}: {d:?}");
            assert!(d <= Duration::from_millis(100), "attempt {attempt}: {d:?}");
        }
    }
}
