//! Blocking protocol client, used by the CLI `client` / `bench-serve`
//! subcommands and the loopback tests.
//!
//! One request, one response line (see the crate docs for the grammar).
//! `ERR <message>` responses surface as [`std::io::ErrorKind::InvalidData`]
//! errors carrying the server's message; the connection stays usable.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::Request;
use crate::BoxConn;

/// A connected protocol client.
pub struct Client {
    reader: BufReader<BoxConn>,
    line: String,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self::from_conn(Box::new(stream)))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Self::from_conn(Box::new(UnixStream::connect(path)?)))
    }

    fn from_conn(conn: BoxConn) -> Client {
        Client {
            reader: BufReader::new(conn),
            line: String::new(),
        }
    }

    /// Send one request line, return the `OK` payload (without the `OK`
    /// prefix).
    fn roundtrip(&mut self, request: &str) -> io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let response = self.line.trim_end_matches(['\n', '\r']);
        if let Some(payload) = response.strip_prefix("OK") {
            Ok(payload.trim_start().to_string())
        } else if let Some(message) = response.strip_prefix("ERR") {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server error: {}", message.trim_start()),
            ))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response {response:?}"),
            ))
        }
    }

    /// Single-pair SimRank score (bit-identical to the server's f64).
    pub fn pair(&mut self, u: u32, v: u32) -> io::Result<f64> {
        let payload = self.roundtrip(&Request::Pair { u, v }.encode())?;
        parse_f64(&payload)
    }

    /// Full single-source score vector from `u`.
    pub fn single_source(&mut self, u: u32) -> io::Result<Vec<f64>> {
        let payload = self.roundtrip(&Request::Source { u }.encode())?;
        parse_counted_scores(&payload)
    }

    /// Top-k most similar nodes to `u`.
    pub fn top_k(&mut self, u: u32, k: usize) -> io::Result<Vec<(u32, f64)>> {
        let payload = self.roundtrip(&Request::TopK { u, k }.encode())?;
        let mut tokens = payload.split_ascii_whitespace();
        let count: usize = parse_tok(tokens.next(), "top-k count")?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let tok = tokens
                .next()
                .ok_or_else(|| invalid("truncated top-k response"))?;
            let (node, score) = tok
                .split_once(':')
                .ok_or_else(|| invalid("malformed top-k item"))?;
            out.push((parse_tok(Some(node), "node id")?, parse_f64(score)?));
        }
        Ok(out)
    }

    /// Positionally aligned scores for a batch of pairs.
    pub fn batch(&mut self, pairs: &[(u32, u32)]) -> io::Result<Vec<f64>> {
        let request = Request::Batch {
            pairs: pairs.to_vec(),
        }
        .encode();
        let payload = self.roundtrip(&request)?;
        let scores = parse_counted_scores(&payload)?;
        if scores.len() != pairs.len() {
            return Err(invalid("batch response length mismatch"));
        }
        Ok(scores)
    }

    /// Raw `key=value ..` statistics payload.
    pub fn stats_line(&mut self) -> io::Result<String> {
        self.roundtrip(&Request::Stats.encode())
    }

    /// Full Prometheus text exposition (the `METRICS` verb).
    pub fn metrics(&mut self) -> io::Result<String> {
        self.framed(&Request::Metrics.encode())
    }

    /// Recent slow-query records, one line each, oldest first (the
    /// `SLOWLOG` verb). An empty string means no queries crossed the
    /// threshold (or the log is disabled).
    pub fn slow_queries(&mut self) -> io::Result<String> {
        let payload = self.framed(&Request::Slowlog.encode())?;
        Ok(payload.trim_end_matches('\n').to_string())
    }

    /// Send one request whose response is length-framed: an `OK <bytes>`
    /// header line, then exactly that many payload bytes. This is how
    /// multi-line payloads travel over the one-line protocol.
    fn framed(&mut self, request: &str) -> io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let header = self.line.trim_end_matches(['\n', '\r']);
        let len: usize = if let Some(rest) = header.strip_prefix("OK") {
            rest.trim()
                .parse()
                .map_err(|_| invalid(&format!("malformed length header {header:?}")))?
        } else if let Some(message) = header.strip_prefix("ERR") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server error: {}", message.trim_start()),
            ));
        } else {
            return Err(invalid(&format!("malformed response {header:?}")));
        };
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        String::from_utf8(payload).map_err(|_| invalid("payload is not valid UTF-8"))
    }

    /// Ask the server to check for (and hot-swap to) a newer promoted
    /// index generation. Returns the generation now being served and
    /// whether this call swapped it in.
    pub fn reload(&mut self) -> io::Result<(String, bool)> {
        let payload = self.roundtrip(&Request::Reload.encode())?;
        let mut generation = None;
        let mut swapped = None;
        for kv in payload.split_ascii_whitespace() {
            if let Some(v) = kv.strip_prefix("generation=") {
                generation = Some(v.to_string());
            } else if let Some(v) = kv.strip_prefix("swapped=") {
                swapped = v.parse().ok();
            }
        }
        match (generation, swapped) {
            (Some(g), Some(s)) => Ok((g, s)),
            _ => Err(invalid("malformed reload response")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let payload = self.roundtrip(&Request::Ping.encode())?;
        if payload == "pong" {
            Ok(())
        } else {
            Err(invalid("unexpected ping response"))
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.roundtrip(&Request::Shutdown.encode()).map(|_| ())
    }

    /// Close this session server-side.
    pub fn quit(&mut self) -> io::Result<()> {
        self.roundtrip(&Request::Quit.encode()).map(|_| ())
    }
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

fn parse_f64(raw: &str) -> io::Result<f64> {
    raw.trim()
        .parse()
        .map_err(|_| invalid(&format!("cannot parse score {raw:?}")))
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> io::Result<T> {
    tok.ok_or_else(|| invalid(&format!("missing {what}")))?
        .parse()
        .map_err(|_| invalid(&format!("cannot parse {what}")))
}

/// Parse `<count> <s0> <s1> ..` into a score vector.
fn parse_counted_scores(payload: &str) -> io::Result<Vec<f64>> {
    let mut tokens = payload.split_ascii_whitespace();
    let count: usize = parse_tok(tokens.next(), "score count")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(parse_f64(
            tokens.next().ok_or_else(|| invalid("truncated scores"))?,
        )?);
    }
    if tokens.next().is_some() {
        return Err(invalid("trailing tokens after scores"));
    }
    Ok(out)
}
