//! The server runtime: acceptor, thread-per-core worker pool, graceful
//! shutdown, and per-worker statistics.
//!
//! Sessions — not individual requests — are the scheduling unit: the
//! acceptor queues each accepted socket, and the next free worker serves
//! requests on it until the client closes (or sends `QUIT`). That keeps
//! one warm [`QueryWorkspace`] per worker on the hot path with zero
//! locking, which is exactly the regime skewed production traffic wants:
//! long-lived clients, hot keys answered from the shared
//! [`ShardedResultCache`]. Workers schedule cooperatively: a session
//! that goes *quiet* while other connections wait is parked back on the
//! queue within `READ_POLL` (read state intact), and a continuously
//! pipelining session yields after at most `YIELD_AFTER` requests — so
//! neither idle nor busy clients can pin workers and starve waiting
//! connections (or `SHUTDOWN`).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sling_core::single_source::SingleSourceWorkspace;
use sling_core::{
    CacheStats, HpStore, QueryWorkspace, ShardedResultCache, SharedEngine, SlingError,
};
use sling_graph::{DiGraph, NodeId};

use crate::latency::{merge_report, LatencyHistogram, LatencyReport};
use crate::protocol::{write_scores, Request, MAX_LINE_BYTES};
use crate::BoxConn;

/// How often the non-blocking acceptor re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Socket read timeout: the interval at which a worker parked on an idle
/// connection re-checks the shutdown flag, so `SHUTDOWN` drains even
/// while clients hold connections open without sending.
const READ_POLL: Duration = Duration::from_millis(100);

/// Shortened first-read timeout used when a worker picks up a session
/// with nothing buffered while other connections wait: probe briefly and
/// park instead of committing to a full `READ_POLL` block on a
/// possibly-idle client while ready work queues behind it.
const PROBE_POLL: Duration = Duration::from_millis(2);

/// Socket write timeout: bounds how long a stuck client (not draining
/// its receive buffer) can pin a worker before the connection is
/// dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Consecutive unexpected `accept(2)` failures (e.g. fd exhaustion)
/// tolerated — with a poll-interval sleep between retries — before the
/// acceptor gives up and shuts the server down rather than zombifying.
const MAX_ACCEPT_ERRORS: u32 = 512;

/// Requests a busy (continuously pipelining) session may run before its
/// worker considers parking it in favor of queued connections. Amortizes
/// the queue check — parking every request costs ~40% throughput on an
/// oversubscribed box — while still bounding how long a busy client can
/// monopolize a worker (idle sessions park on the READ_POLL timeout
/// instead, independent of this constant).
const YIELD_AFTER: u32 = 64;

/// Tuning knobs for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads; `0` means one per available core
    /// (thread-per-core).
    pub workers: usize,
    /// Total capacity of the shared single-pair result cache; `0`
    /// disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two); `0` picks
    /// [`ShardedResultCache::DEFAULT_SHARDS`].
    pub cache_shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            cache_capacity: 1 << 18,
            cache_shards: 0,
        }
    }
}

/// A bound accept socket: TCP or Unix-domain.
pub enum Listener {
    /// TCP listener (e.g. `127.0.0.1:0` for an ephemeral port).
    Tcp(TcpListener),
    /// Unix-domain listener; the socket file is removed when the server
    /// stops accepting.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind a TCP listener.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Bind a Unix-domain listener, replacing a stale socket file.
    ///
    /// Only an existing *socket* is removed (assumed stale from a prior
    /// run); any other file at the path is an error — a typo'd `--unix`
    /// must never delete data.
    pub fn bind_unix(path: impl AsRef<Path>) -> io::Result<Listener> {
        let path = path.as_ref().to_path_buf();
        match std::fs::symlink_metadata(&path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt as _;
                if meta.file_type().is_socket() {
                    std::fs::remove_file(&path)?;
                } else {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!("{} exists and is not a socket", path.display()),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Listener::Unix(UnixListener::bind(&path)?, path))
    }

    /// The bound TCP address (`None` for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }
}

/// A client session: the buffered connection plus any partially-read
/// request line. Sessions — not raw sockets — are the queue's unit, so a
/// worker can *park* a quiet session (putting it back on the queue,
/// partial line intact) and serve a waiting connection instead of
/// letting one idle client pin a worker while others starve.
struct Session {
    reader: BufReader<BoxConn>,
    line: String,
}

impl Session {
    fn new(conn: BoxConn) -> Self {
        Session {
            reader: BufReader::new(conn),
            line: String::new(),
        }
    }
}

/// Shared, non-generic server state: the session queue and the
/// counters the `STATS` command reports.
struct Control {
    queue: Mutex<VecDeque<Session>>,
    available: Condvar,
    shutdown: AtomicBool,
    served: Box<[AtomicU64]>,
    /// Per-worker query-latency histograms (merged on `STATS`), so
    /// recording a latency is one relaxed add on worker-private state.
    latency: Box<[LatencyHistogram]>,
    cache: Option<ShardedResultCache>,
}

impl Control {
    fn push(&self, session: Session) {
        self.queue.lock().unwrap().push_back(session);
        self.available.notify_one();
    }

    /// Next queued session; drains the queue during shutdown and
    /// returns `None` only once it is empty and the flag is set.
    fn pop(&self) -> Option<Session> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(session) = queue.pop_front() {
                return Some(session);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.available.wait(queue).unwrap();
        }
    }

    /// Whether sessions are waiting for a worker (checked by workers on
    /// read timeouts to decide whether to park the current session).
    fn has_waiting(&self) -> bool {
        !self.queue.lock().unwrap().is_empty()
    }

    fn initiate_shutdown(&self) {
        // Flag and notify under the queue lock: without it, a worker
        // that has observed `shutdown == false` inside `pop` but not yet
        // parked on the condvar would miss this notification and sleep
        // forever (the classic lost wakeup), hanging ServerHandle::join.
        let _guard = self.queue.lock().unwrap();
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn total_served(&self) -> u64 {
        self.served.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Final accounting returned by [`ServerHandle::join`] /
/// [`ServerHandle::shutdown`].
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Queries served per worker (pair/source/top-k count 1, batches
    /// count their pair count).
    pub served_per_worker: Vec<u64>,
    /// Result-cache counters, when a cache was configured.
    pub cache: Option<CacheStats>,
    /// Server-side query-latency percentiles (merged across workers).
    pub latency: LatencyReport,
}

impl ServerReport {
    /// Total queries served across all workers.
    pub fn total_served(&self) -> u64 {
        self.served_per_worker.iter().sum()
    }
}

/// Handle to a running server: its address, a shutdown lever, and the
/// worker/acceptor threads to join.
pub struct ServerHandle {
    addr: Option<SocketAddr>,
    control: Arc<Control>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bound TCP address (`None` for Unix-socket servers) — what clients
    /// of a `127.0.0.1:0` test server connect to.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Block until the server exits (a client sends `SHUTDOWN`), then
    /// report final statistics.
    pub fn join(mut self) -> ServerReport {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        ServerReport {
            served_per_worker: self
                .control
                .served
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cache: self.control.cache.as_ref().map(|c| c.stats()),
            latency: merge_report(&self.control.latency),
        }
    }

    /// Initiate shutdown from the owning process (equivalent to a client
    /// `SHUTDOWN`) and join.
    pub fn shutdown(self) -> ServerReport {
        self.control.initiate_shutdown();
        self.join()
    }
}

/// Start serving `engine` over `listener`.
///
/// Spawns `config.workers` worker threads (thread-per-core by default),
/// each owning its query workspaces, plus one acceptor thread. The
/// engine and graph are shared immutably; the only shared mutable state
/// is the connection queue and the sharded result cache. Returns
/// immediately with a [`ServerHandle`].
pub fn serve<S>(
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    listener: Listener,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    S: HpStore + Send + Sync + 'static,
{
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.workers
    };
    let cache = (config.cache_capacity > 0).then(|| {
        let shards = if config.cache_shards == 0 {
            ShardedResultCache::DEFAULT_SHARDS
        } else {
            config.cache_shards
        };
        ShardedResultCache::new(config.cache_capacity, shards)
    });
    let control = Arc::new(Control {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        served: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        latency: (0..workers).map(|_| LatencyHistogram::new()).collect(),
        cache,
    });
    let addr = listener.local_addr();
    let mut threads = Vec::with_capacity(workers + 1);
    for id in 0..workers {
        let control = Arc::clone(&control);
        let engine = Arc::clone(&engine);
        let graph = Arc::clone(&graph);
        threads.push(
            std::thread::Builder::new()
                .name(format!("sling-worker-{id}"))
                .spawn(move || worker_loop(&engine, &graph, &control, id))?,
        );
    }
    let acceptor_control = Arc::clone(&control);
    threads.push(
        std::thread::Builder::new()
            .name("sling-acceptor".to_string())
            .spawn(move || accept_loop(listener, &acceptor_control))?,
    );
    Ok(ServerHandle {
        addr,
        control,
        threads,
    })
}

/// Accept connections until shutdown; non-blocking with a short poll so
/// the flag is observed promptly, since `accept(2)` has no portable
/// cancellation.
///
/// Error policy: per-connection failures (aborted handshakes, resets)
/// are skipped; resource-exhaustion errors (e.g. `EMFILE`) are retried
/// with a poll-interval backoff. If the listener stays broken for
/// [`MAX_ACCEPT_ERRORS`] consecutive attempts, the acceptor initiates a
/// full shutdown — a server nobody can connect to must terminate, not
/// linger as a zombie that `SHUTDOWN` can no longer reach.
fn accept_loop(listener: Listener, control: &Control) {
    let _ = match &listener {
        Listener::Tcp(l) => l.set_nonblocking(true),
        Listener::Unix(l, _) => l.set_nonblocking(true),
    };
    let mut consecutive_errors = 0u32;
    loop {
        if control.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let accepted: io::Result<BoxConn> = match &listener {
            Listener::Tcp(l) => l.accept().map(|(stream, _)| {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                Box::new(stream) as BoxConn
            }),
            Listener::Unix(l, _) => l.accept().map(|(stream, _)| {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                Box::new(stream) as BoxConn
            }),
        };
        match accepted {
            Ok(conn) => {
                consecutive_errors = 0;
                control.push(Session::new(conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                consecutive_errors = 0;
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                ) => {}
            Err(_) => {
                consecutive_errors += 1;
                if consecutive_errors >= MAX_ACCEPT_ERRORS {
                    control.initiate_shutdown();
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

/// Per-worker reusable buffers: workspaces warm up once, then the hot
/// path is allocation-free for pair queries.
struct WorkerCtx {
    ws: QueryWorkspace,
    ss: SingleSourceWorkspace,
    scores: Vec<f64>,
    batch: Vec<f64>,
    response: String,
}

fn worker_loop<S: HpStore>(
    engine: &SharedEngine<S>,
    graph: &DiGraph,
    control: &Control,
    worker: usize,
) {
    let mut ctx = WorkerCtx {
        ws: QueryWorkspace::new(),
        ss: SingleSourceWorkspace::new(),
        scores: Vec::new(),
        batch: Vec::new(),
        response: String::new(),
    };
    while let Some(mut session) = control.pop() {
        match serve_session(engine, graph, control, worker, &mut session, &mut ctx) {
            // Quiet session parked while others wait: back of the queue,
            // partial read state intact.
            SessionOutcome::Parked => control.push(session),
            // Closed or broken: dropping a session only drops that
            // client; the worker returns to the queue for the next one.
            SessionOutcome::Closed => {}
        }
        // Release hub-sized scratch the session's queries may have
        // pinned: a long-lived worker must not retain the largest entry
        // list it ever materialized, per core, forever. Capacity checks
        // only — free when nothing outgrew the retention threshold.
        ctx.ws.trim_excess();
        ctx.ss.trim_excess();
    }
}

/// What the connection loop does after writing a response.
enum Action {
    Continue,
    Close,
    Shutdown,
}

/// Why `serve_session` returned.
enum SessionOutcome {
    /// Connection finished (client EOF/QUIT, IO error, or shutdown).
    Closed,
    /// Session went quiet while other connections wait: requeue it.
    Parked,
}

/// One attempt to complete the request line in `session.line`.
enum ReadOutcome {
    /// A full newline-terminated request is in `session.line`.
    Request,
    /// Client closed (EOF) or the server is draining.
    Closed,
    /// Read timed out while other sessions wait for a worker.
    Park,
}

/// Read one request line, waking on the socket read timeout (READ_POLL,
/// or PROBE_POLL while `probing`) so a worker parked on an idle
/// connection still observes `SHUTDOWN` and yields to waiting
/// connections instead of pinning the worker. Partial lines survive
/// both timeouts and parking: `read_line` appends whatever bytes it
/// consumed even when it returns an error, and the accumulator lives in
/// the session, not the worker.
fn read_request_line(
    session: &mut Session,
    control: &Control,
    probing: &mut bool,
) -> io::Result<ReadOutcome> {
    loop {
        match session
            .reader
            .by_ref()
            .take(MAX_LINE_BYTES as u64)
            .read_line(&mut session.line)
        {
            Ok(0) => return Ok(ReadOutcome::Closed), // EOF (a dangling partial line is moot)
            Ok(_) => {
                if session.line.ends_with('\n') {
                    return Ok(ReadOutcome::Request);
                }
                if session.line.len() >= MAX_LINE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "request line too long",
                    ));
                }
                // Partial line without a newline yet: keep reading (the
                // next pass returns Ok(0) if this was EOF mid-line).
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if control.shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadOutcome::Closed); // drop the idle connection during drain
                }
                if control.has_waiting() {
                    return Ok(ReadOutcome::Park); // yield the worker to a waiting session
                }
                if *probing {
                    // The queue drained while we probed: nobody is
                    // waiting, so fall back to the idle poll rate
                    // rather than waking every PROBE_POLL.
                    let _ = session.reader.get_ref().set_read_timeout(Some(READ_POLL));
                    *probing = false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serve requests on one session until it closes, breaks, or yields to
/// waiting connections — on a READ_POLL timeout while idle, or after
/// YIELD_AFTER back-to-back requests while busy.
fn serve_session<S: HpStore>(
    engine: &SharedEngine<S>,
    graph: &DiGraph,
    control: &Control,
    worker: usize,
    session: &mut Session,
    ctx: &mut WorkerCtx,
) -> SessionOutcome {
    let mut served_since_park = 0u32;
    // Ready-work preemption: nothing buffered on this session while
    // other connections wait — probe with a short timeout so an idle
    // client costs PROBE_POLL, not READ_POLL, before we park it. (The
    // timeout alone still paces the worker, so parking cycles through
    // all-idle sessions cannot busy-spin.) Set explicitly either way: a
    // previously parked session may carry the other rate.
    let mut probing = session.reader.buffer().is_empty() && control.has_waiting();
    let _ = session.reader.get_ref().set_read_timeout(Some(if probing {
        PROBE_POLL
    } else {
        READ_POLL
    }));
    loop {
        match read_request_line(session, control, &mut probing) {
            Ok(ReadOutcome::Request) => {
                if probing {
                    // The session proved active: back to the idle poll.
                    let _ = session.reader.get_ref().set_read_timeout(Some(READ_POLL));
                    probing = false;
                }
            }
            Ok(ReadOutcome::Park) => return SessionOutcome::Parked,
            Ok(ReadOutcome::Closed) | Err(_) => return SessionOutcome::Closed,
        }
        ctx.response.clear();
        let action = match Request::parse(session.line.trim_end_matches(['\n', '\r'])) {
            Err(msg) => {
                let _ = write!(ctx.response, "ERR {msg}");
                Action::Continue
            }
            Ok(req) => handle_request(engine, graph, control, worker, req, ctx),
        };
        session.line.clear();
        if matches!(action, Action::Shutdown) {
            control.initiate_shutdown();
        }
        let stream = session.reader.get_mut();
        if stream
            .write_all(ctx.response.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_err()
        {
            return SessionOutcome::Closed;
        }
        match action {
            Action::Continue => {
                // Re-check between requests too: a client pipelining
                // back-to-back requests never hits the read-timeout
                // branch, so without this a busy session would pin its
                // worker and starve queued connections (and SHUTDOWN).
                // Amortized to every YIELD_AFTER requests so the check
                // stays off the hot path.
                served_since_park += 1;
                if served_since_park >= YIELD_AFTER {
                    served_since_park = 0;
                    if control.shutdown.load(Ordering::SeqCst) {
                        return SessionOutcome::Closed;
                    }
                    if control.has_waiting() {
                        return SessionOutcome::Parked;
                    }
                }
            }
            Action::Close | Action::Shutdown => return SessionOutcome::Closed,
        }
    }
}

/// Canonicalize and score one symmetric pair, through the shared cache
/// when one is configured (the cached path prefetches internally, on
/// misses only — a hit never touches the store, so advising it would
/// waste syscalls on the hottest path). Both the `PAIR` and `BATCH`
/// handlers route here so the two cannot diverge.
fn score_pair<S: HpStore>(
    engine: &SharedEngine<S>,
    graph: &DiGraph,
    control: &Control,
    ws: &mut QueryWorkspace,
    u: u32,
    v: u32,
) -> Result<f64, SlingError> {
    let (a, b) = (NodeId(u.min(v)), NodeId(u.max(v)));
    match &control.cache {
        Some(cache) => engine.single_pair_cached(graph, ws, cache, a, b),
        None => {
            engine.store().prefetch(a);
            if a != b {
                engine.store().prefetch(b);
            }
            engine.single_pair_with(graph, ws, a, b)
        }
    }
}

fn write_query_error(out: &mut String, err: SlingError) {
    let _ = write!(out, "ERR {err}");
}

fn handle_request<S: HpStore>(
    engine: &SharedEngine<S>,
    graph: &DiGraph,
    control: &Control,
    worker: usize,
    req: Request,
    ctx: &mut WorkerCtx,
) -> Action {
    let out = &mut ctx.response;
    match req {
        Request::Ping => out.push_str("OK pong"),
        Request::Quit => {
            out.push_str("OK bye");
            return Action::Close;
        }
        Request::Shutdown => {
            out.push_str("OK shutting-down");
            return Action::Shutdown;
        }
        Request::Stats => {
            let _ = write!(
                out,
                "OK workers={} served={}",
                control.served.len(),
                control.total_served()
            );
            let lat = merge_report(&control.latency);
            let _ = write!(
                out,
                " latency_count={} latency_p50_us={:.1} latency_p99_us={:.1} \
                 latency_p999_us={:.1}",
                lat.count, lat.p50_us, lat.p99_us, lat.p999_us
            );
            out.push_str(" per_worker=");
            for (i, c) in control.served.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", c.load(Ordering::Relaxed));
            }
            match &control.cache {
                None => out.push_str(" cache=off"),
                Some(cache) => {
                    let s = cache.stats();
                    let _ = write!(
                        out,
                        " cache=on cache_entries={} cache_capacity={} cache_shards={} \
                         cache_hits={} cache_misses={} cache_evictions={} cache_hit_rate={:.4}",
                        cache.len(),
                        cache.capacity(),
                        cache.num_shards(),
                        s.hits,
                        s.misses,
                        s.evictions,
                        s.hit_rate()
                    );
                }
            }
            let _ = write!(out, " resident_bytes={}", engine.resident_bytes());
        }
        Request::Pair { u, v } => {
            control.served[worker].fetch_add(1, Ordering::Relaxed);
            let t0 = std::time::Instant::now();
            match score_pair(engine, graph, control, &mut ctx.ws, u, v) {
                Ok(s) => {
                    control.latency[worker].record(t0.elapsed());
                    let _ = write!(out, "OK {s}");
                }
                Err(e) => write_query_error(out, e),
            }
        }
        Request::Source { u } => {
            control.served[worker].fetch_add(1, Ordering::Relaxed);
            engine.store().prefetch(NodeId(u));
            let t0 = std::time::Instant::now();
            match engine.single_source_with(graph, &mut ctx.ss, NodeId(u), &mut ctx.scores) {
                Ok(()) => {
                    control.latency[worker].record(t0.elapsed());
                    out.push_str("OK ");
                    write_scores(out, &ctx.scores);
                }
                Err(e) => write_query_error(out, e),
            }
        }
        Request::TopK { u, k } => {
            control.served[worker].fetch_add(1, Ordering::Relaxed);
            engine.store().prefetch(NodeId(u));
            let t0 = std::time::Instant::now();
            match engine.top_k_with(graph, &mut ctx.ss, &mut ctx.scores, NodeId(u), k) {
                Ok(top) => {
                    control.latency[worker].record(t0.elapsed());
                    let _ = write!(out, "OK {}", top.len());
                    for (node, score) in top {
                        let _ = write!(out, " {}:{score}", node.0);
                    }
                }
                Err(e) => write_query_error(out, e),
            }
        }
        Request::Batch { pairs } => {
            control.served[worker].fetch_add(pairs.len() as u64, Ordering::Relaxed);
            ctx.batch.clear();
            for &(u, v) in &pairs {
                let t0 = std::time::Instant::now();
                match score_pair(engine, graph, control, &mut ctx.ws, u, v) {
                    Ok(s) => {
                        control.latency[worker].record(t0.elapsed());
                        ctx.batch.push(s);
                    }
                    Err(e) => {
                        write_query_error(out, e);
                        return Action::Continue;
                    }
                }
            }
            out.push_str("OK ");
            write_scores(out, &ctx.batch);
        }
    }
    Action::Continue
}
