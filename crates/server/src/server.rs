//! The server runtime: acceptor, thread-per-core worker pool, hot
//! generation reload, graceful shutdown, and per-worker statistics.
//!
//! Sessions — not individual requests — are the scheduling unit: the
//! acceptor queues each accepted socket, and the next free worker serves
//! requests on it until the client closes (or sends `QUIT`). That keeps
//! one warm [`QueryWorkspace`] per worker on the hot path with zero
//! locking, which is exactly the regime skewed production traffic wants:
//! long-lived clients, hot keys answered from the shared
//! [`ShardedResultCache`]. Workers schedule cooperatively: a session
//! that goes *quiet* while other connections wait is parked back on the
//! queue within `READ_POLL` (read state intact), and a continuously
//! pipelining session yields after at most `YIELD_AFTER` requests — so
//! neither idle nor busy clients can pin workers and starve waiting
//! connections (or `SHUTDOWN`).
//!
//! ## Hot reload
//!
//! The engine lives in a [`ReloadableEngine`] — an epoch-tagged swap
//! slot holding one [`EngineGeneration`] (engine + graph + generation
//! name). Requests in flight keep the `Arc` of the generation they
//! started on; the next request a worker picks up observes the bumped
//! epoch with one atomic load and refetches. A swap also advances the
//! shared result cache's epoch *in the same critical section*, and every
//! insert is tagged with the epoch of the generation that computed it,
//! so a hit computed against a retired index can never be served (see
//! [`ShardedResultCache`]). Swaps are driven by the `RELOAD` protocol
//! verb or the periodic `CURRENT`-staleness watcher
//! ([`ServerConfig::watch_interval_ms`]), both of which consult the
//! [`ReloadableEngine`]'s generation opener (typically wired to a
//! [`sling_core::lifecycle::GenerationStore`]).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use sling_core::lifecycle::{warm_engine, GenerationStore};
use sling_core::single_source::SingleSourceWorkspace;
use sling_core::{
    CacheStats, HpStore, QueryWorkspace, ShardedResultCache, SharedEngine, SlingError,
};
use sling_graph::{DiGraph, NodeId};

use crate::latency::{merge_report, LatencyHistogram, LatencyReport};
use crate::protocol::{write_scores, Request, MAX_LINE_BYTES};
use crate::BoxConn;

/// How often the non-blocking acceptor re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Socket read timeout: the interval at which a worker parked on an idle
/// connection re-checks the shutdown flag, so `SHUTDOWN` drains even
/// while clients hold connections open without sending.
const READ_POLL: Duration = Duration::from_millis(100);

/// Shortened first-read timeout used when a worker picks up a session
/// with nothing buffered while other connections wait: probe briefly and
/// park instead of committing to a full `READ_POLL` block on a
/// possibly-idle client while ready work queues behind it.
const PROBE_POLL: Duration = Duration::from_millis(2);

/// Socket write timeout: bounds how long a stuck client (not draining
/// its receive buffer) can pin a worker before the connection is
/// dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Consecutive unexpected `accept(2)` failures (e.g. fd exhaustion)
/// tolerated — with a poll-interval sleep between retries — before the
/// acceptor gives up and shuts the server down rather than zombifying.
const MAX_ACCEPT_ERRORS: u32 = 512;

/// Requests a busy (continuously pipelining) session may run before its
/// worker considers parking it in favor of queued connections. Amortizes
/// the queue check — parking every request costs ~40% throughput on an
/// oversubscribed box — while still bounding how long a busy client can
/// monopolize a worker (idle sessions park on the READ_POLL timeout
/// instead, independent of this constant).
const YIELD_AFTER: u32 = 64;

/// Tuning knobs for [`serve`] / [`serve_reloadable`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads; `0` means one per available core
    /// (thread-per-core).
    pub workers: usize,
    /// Total capacity of the shared single-pair result cache; `0`
    /// disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two); `0` picks
    /// [`ShardedResultCache::DEFAULT_SHARDS`].
    pub cache_shards: usize,
    /// Period of the `CURRENT`-staleness watcher in milliseconds; `0`
    /// disables it. Only meaningful for [`serve_reloadable`] with a
    /// generation opener — swaps can still be driven explicitly with the
    /// `RELOAD` verb either way.
    pub watch_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            cache_capacity: 1 << 18,
            cache_shards: 0,
            watch_interval_ms: 0,
        }
    }
}

/// A bound accept socket: TCP or Unix-domain.
pub enum Listener {
    /// TCP listener (e.g. `127.0.0.1:0` for an ephemeral port).
    Tcp(TcpListener),
    /// Unix-domain listener; the socket file is removed when the server
    /// stops accepting.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind a TCP listener.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Bind a Unix-domain listener, replacing a stale socket file.
    ///
    /// Only an existing *socket* is removed (assumed stale from a prior
    /// run); any other file at the path is an error — a typo'd `--unix`
    /// must never delete data.
    pub fn bind_unix(path: impl AsRef<Path>) -> io::Result<Listener> {
        let path = path.as_ref().to_path_buf();
        match std::fs::symlink_metadata(&path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt as _;
                if meta.file_type().is_socket() {
                    std::fs::remove_file(&path)?;
                } else {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!("{} exists and is not a socket", path.display()),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Listener::Unix(UnixListener::bind(&path)?, path))
    }

    /// The bound TCP address (`None` for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }
}

/// One live index generation: the engine, the graph it serves, and the
/// generation's name (`gen-NNNN`, or `static` for pinned deployments).
/// Immutable once published into a [`ReloadableEngine`]; requests hold
/// an `Arc` to the generation they started on, so a swap never tears a
/// response.
pub struct EngineGeneration<S: HpStore> {
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    name: String,
    /// Swap epoch assigned when this generation is published into the
    /// slot (0 for the initial generation); also the tag its computed
    /// scores carry in the shared result cache.
    epoch: u64,
}

impl<S: HpStore> EngineGeneration<S> {
    /// Package an engine + graph as a generation named `name`.
    pub fn new(engine: Arc<SharedEngine<S>>, graph: Arc<DiGraph>, name: impl Into<String>) -> Self {
        EngineGeneration {
            engine,
            graph,
            name: name.into(),
            epoch: 0,
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &SharedEngine<S> {
        &self.engine
    }

    /// The graph this generation was built from.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Generation name (`gen-NNNN` or `static`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Swap epoch of this generation (see [`ReloadableEngine`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Produces the next generation when the promoted one changes: given the
/// name of the generation currently being served, return `Ok(Some(..))`
/// with a fully opened (and warmed) successor, `Ok(None)` when nothing
/// newer is promoted. Runs on watcher or `RELOAD`-handling threads, so
/// it may block on IO.
pub type GenerationOpener<S> =
    Box<dyn Fn(&str) -> io::Result<Option<EngineGeneration<S>>> + Send + Sync>;

/// Epoch-tagged hot-swap slot for the serving engine.
///
/// Readers ([`ReloadableEngine::current`]) take an uncontended
/// `RwLock` read just long enough to clone the generation `Arc`; the
/// worker hot path avoids even that by caching the `Arc` and comparing
/// one relaxed-cost atomic epoch load per request. Swapping
/// ([`ReloadableEngine::try_reload`]) verifies-and-opens the new
/// generation *outside* any lock, then publishes it and advances the
/// shared result cache's epoch inside the write critical section — the
/// ordering that makes "a swap can never serve a hit computed against a
/// retired index" hold (see [`ShardedResultCache`]).
pub struct ReloadableEngine<S: HpStore> {
    slot: RwLock<Arc<EngineGeneration<S>>>,
    /// Epoch of the generation currently in `slot` (bumped on swap).
    epoch: AtomicU64,
    swaps: AtomicU64,
    last_swap_unix_ms: AtomicU64,
    /// Reload attempts whose opener failed (the old generation kept
    /// serving). Surfaced through `STATS` so a permanently failing
    /// promotion is diagnosable even under `--watch`.
    reload_failures: AtomicU64,
    opener: Option<GenerationOpener<S>>,
    /// Serializes [`ReloadableEngine::try_reload`] so concurrent callers
    /// (watcher + `RELOAD`) cannot double-open one generation.
    reload_lock: Mutex<()>,
}

/// Snapshot of a [`ReloadableEngine`]'s swap state, surfaced through
/// `STATS` and [`ServerReport`].
#[derive(Clone, Debug)]
pub struct GenerationInfo {
    /// Name of the generation being served.
    pub generation: String,
    /// Current swap epoch (0 until the first swap).
    pub epoch: u64,
    /// Completed generation swaps.
    pub swaps: u64,
    /// Reload attempts that failed (old generation kept serving).
    pub reload_failures: u64,
    /// Unix timestamp (ms) of the last swap; 0 when none happened.
    pub last_swap_unix_ms: u64,
}

fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl<S: HpStore> ReloadableEngine<S> {
    /// A slot pinned to one generation forever — what [`serve`] wraps a
    /// plain engine in. `RELOAD` reports `swapped=false` and the watcher
    /// never starts.
    pub fn pinned(engine: Arc<SharedEngine<S>>, graph: Arc<DiGraph>) -> Self {
        Self::with_opener(EngineGeneration::new(engine, graph, "static"), None)
    }

    /// A slot starting at `initial` whose successors come from `opener`.
    pub fn new(initial: EngineGeneration<S>, opener: GenerationOpener<S>) -> Self {
        Self::with_opener(initial, Some(opener))
    }

    fn with_opener(initial: EngineGeneration<S>, opener: Option<GenerationOpener<S>>) -> Self {
        ReloadableEngine {
            epoch: AtomicU64::new(initial.epoch),
            slot: RwLock::new(Arc::new(initial)),
            swaps: AtomicU64::new(0),
            last_swap_unix_ms: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            opener,
            reload_lock: Mutex::new(()),
        }
    }

    /// Watch a [`GenerationStore`]: open its promoted generation now
    /// (erroring when nothing is promoted) and reload whenever `CURRENT`
    /// moves. `open` maps a graph + index path to an engine — one line
    /// per storage backend. Each generation's graph comes from its
    /// co-located snapshot when present, else from `fallback_graph`
    /// (fingerprint-checked against the manifest either way), and each
    /// freshly opened engine is warmed from the store's hot-key log
    /// before it starts serving.
    pub fn watching_store<F>(
        store: GenerationStore,
        fallback_graph: Option<Arc<DiGraph>>,
        open: F,
    ) -> io::Result<ReloadableEngine<S>>
    where
        F: Fn(&DiGraph, &Path) -> Result<SharedEngine<S>, SlingError> + Send + Sync + 'static,
        S: 'static,
    {
        let current = store.current().map_err(io::Error::other)?.ok_or_else(|| {
            io::Error::other(format!(
                "{}: no promoted generation (run `sling promote` first)",
                store.root().display()
            ))
        })?;
        let initial = open_store_generation(&store, &fallback_graph, &open, current)?;
        let opener: GenerationOpener<S> = Box::new(move |serving: &str| {
            let Some(promoted) = store.current().map_err(io::Error::other)? else {
                return Ok(None); // pointer vanished: keep serving
            };
            if promoted.dir_name() == serving {
                return Ok(None);
            }
            open_store_generation(&store, &fallback_graph, &open, promoted).map(Some)
        });
        Ok(Self::new(initial, opener))
    }

    /// The generation currently being served.
    pub fn current(&self) -> Arc<EngineGeneration<S>> {
        Arc::clone(&self.slot.read().unwrap())
    }

    /// Epoch of the serving generation — one atomic load, so callers can
    /// cheaply detect a swap and refetch [`ReloadableEngine::current`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Swap-state snapshot for reporting.
    pub fn info(&self) -> GenerationInfo {
        GenerationInfo {
            generation: self.current().name.clone(),
            epoch: self.epoch(),
            swaps: self.swaps.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            last_swap_unix_ms: self.last_swap_unix_ms.load(Ordering::Relaxed),
        }
    }

    /// Publish `next` as the serving generation: bump the epoch, retag
    /// the shared result cache (when one is given) in the same critical
    /// section, and record swap accounting. In-flight requests finish on
    /// the generation `Arc` they hold; the old generation is dropped
    /// when its last request completes.
    pub fn swap(&self, next: EngineGeneration<S>, cache: Option<&ShardedResultCache>) {
        let mut slot = self.slot.write().unwrap();
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let mut next = next;
        next.epoch = epoch;
        *slot = Arc::new(next);
        // Cache first, then the epoch the workers poll: a worker that
        // observes the new epoch must also observe the retagged cache.
        if let Some(cache) = cache {
            cache.set_epoch(epoch);
        }
        self.epoch.store(epoch, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.last_swap_unix_ms
            .store(unix_ms_now(), Ordering::Relaxed);
    }

    /// Consult the generation opener and swap if a newer generation is
    /// promoted. Returns whether a swap happened; `Ok(false)` for pinned
    /// slots. Serialized internally — concurrent callers (watcher +
    /// `RELOAD`) cannot double-open one generation.
    ///
    /// **Synchronous by design**: the open, verification, and warm-up
    /// run on the calling thread, so a `RELOAD` verb answers with the
    /// definitive outcome — at the cost of occupying that worker for
    /// the load duration. On small worker pools serving a large index,
    /// prefer the watcher ([`ServerConfig::watch_interval_ms`]), which
    /// performs the same load on its own thread while every worker
    /// keeps serving; workers then pick the new generation up with one
    /// atomic compare.
    pub fn try_reload(&self, cache: Option<&ShardedResultCache>) -> io::Result<bool> {
        let Some(opener) = &self.opener else {
            return Ok(false);
        };
        // The slot read is brief; the open runs outside the slot lock. A
        // racing second reload would re-open the same generation and
        // swap it in twice — harmless but wasteful, so serialize opens.
        let _serialized = self.reload_lock.lock().unwrap();
        let serving = self.current().name.clone();
        match opener(&serving) {
            Ok(Some(next)) => {
                self.swap(next, cache);
                Ok(true)
            }
            Ok(None) => Ok(false),
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

/// Open, fingerprint-check, and warm one generation from a store.
fn open_store_generation<S, F>(
    store: &GenerationStore,
    fallback_graph: &Option<Arc<DiGraph>>,
    open: &F,
    gen: sling_core::lifecycle::GenId,
) -> io::Result<EngineGeneration<S>>
where
    S: HpStore,
    F: Fn(&DiGraph, &Path) -> Result<SharedEngine<S>, SlingError>,
{
    let manifest = store.manifest(gen).map_err(io::Error::other)?;
    let graph: Arc<DiGraph> = match store
        .load_graph_with(gen, &manifest)
        .map_err(io::Error::other)?
    {
        Some(snapshot) => Arc::new(snapshot),
        None => {
            let fallback = fallback_graph.clone().ok_or_else(|| {
                io::Error::other(format!(
                    "{gen} has no graph snapshot and no fallback graph was provided"
                ))
            })?;
            if fallback.num_nodes() != manifest.num_nodes
                || fallback.num_edges() != manifest.num_edges
            {
                return Err(io::Error::other(format!(
                    "{gen} was built for a graph with {} nodes / {} edges; the fallback \
                     graph has {} / {}",
                    manifest.num_nodes,
                    manifest.num_edges,
                    fallback.num_nodes(),
                    fallback.num_edges()
                )));
            }
            fallback
        }
    };
    let engine = open(&graph, &store.index_path(gen)).map_err(io::Error::other)?;
    // Prime the caches from the replayable hot-key log before the
    // generation takes traffic; warm-up failures must never block a
    // promotion, so the key list being empty or stale is fine.
    let hot = store.read_hot_keys();
    warm_engine(&engine, &graph, &hot);
    Ok(EngineGeneration::new(
        Arc::new(engine),
        graph,
        gen.dir_name(),
    ))
}

/// A client session: the buffered connection plus any partially-read
/// request line. Sessions — not raw sockets — are the queue's unit, so a
/// worker can *park* a quiet session (putting it back on the queue,
/// partial line intact) and serve a waiting connection instead of
/// letting one idle client pin a worker while others starve.
struct Session {
    reader: BufReader<BoxConn>,
    line: String,
}

impl Session {
    fn new(conn: BoxConn) -> Self {
        Session {
            reader: BufReader::new(conn),
            line: String::new(),
        }
    }
}

/// Shared, non-generic server state: the session queue and the
/// counters the `STATS` command reports.
struct Control {
    queue: Mutex<VecDeque<Session>>,
    available: Condvar,
    shutdown: AtomicBool,
    served: Box<[AtomicU64]>,
    /// Per-worker query-latency histograms (merged on `STATS`), so
    /// recording a latency is one relaxed add on worker-private state.
    latency: Box<[LatencyHistogram]>,
    cache: Option<ShardedResultCache>,
}

impl Control {
    fn push(&self, session: Session) {
        self.queue.lock().unwrap().push_back(session);
        self.available.notify_one();
    }

    /// Next queued session; drains the queue during shutdown and
    /// returns `None` only once it is empty and the flag is set.
    fn pop(&self) -> Option<Session> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(session) = queue.pop_front() {
                return Some(session);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.available.wait(queue).unwrap();
        }
    }

    /// Whether sessions are waiting for a worker (checked by workers on
    /// read timeouts to decide whether to park the current session).
    fn has_waiting(&self) -> bool {
        !self.queue.lock().unwrap().is_empty()
    }

    fn initiate_shutdown(&self) {
        // Flag and notify under the queue lock: without it, a worker
        // that has observed `shutdown == false` inside `pop` but not yet
        // parked on the condvar would miss this notification and sleep
        // forever (the classic lost wakeup), hanging ServerHandle::join.
        let _guard = self.queue.lock().unwrap();
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn total_served(&self) -> u64 {
        self.served.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Final accounting returned by [`ServerHandle::join`] /
/// [`ServerHandle::shutdown`].
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Queries served per worker (pair/source/top-k count 1, batches
    /// count their pair count).
    pub served_per_worker: Vec<u64>,
    /// Result-cache counters, when a cache was configured.
    pub cache: Option<CacheStats>,
    /// Server-side query-latency percentiles (merged across workers).
    pub latency: LatencyReport,
    /// Index generation being served at exit, swap count, and the
    /// last-swap timestamp.
    pub generation: GenerationInfo,
}

impl ServerReport {
    /// Total queries served across all workers.
    pub fn total_served(&self) -> u64 {
        self.served_per_worker.iter().sum()
    }
}

/// Handle to a running server: its address, a shutdown lever, and the
/// worker/acceptor threads to join.
pub struct ServerHandle {
    addr: Option<SocketAddr>,
    control: Arc<Control>,
    threads: Vec<JoinHandle<()>>,
    /// Type-erased view of the reloadable slot's swap state (the slot
    /// itself is generic over the backend; the handle is not).
    generation_info: Arc<dyn Fn() -> GenerationInfo + Send + Sync>,
}

impl ServerHandle {
    /// Bound TCP address (`None` for Unix-socket servers) — what clients
    /// of a `127.0.0.1:0` test server connect to.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Swap-state snapshot of the serving generation (live; callable
    /// while the server runs).
    pub fn generation_info(&self) -> GenerationInfo {
        (self.generation_info)()
    }

    /// Block until the server exits (a client sends `SHUTDOWN`), then
    /// report final statistics.
    pub fn join(mut self) -> ServerReport {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        ServerReport {
            served_per_worker: self
                .control
                .served
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cache: self.control.cache.as_ref().map(|c| c.stats()),
            latency: merge_report(&self.control.latency),
            generation: (self.generation_info)(),
        }
    }

    /// Initiate shutdown from the owning process (equivalent to a client
    /// `SHUTDOWN`) and join.
    pub fn shutdown(self) -> ServerReport {
        self.control.initiate_shutdown();
        self.join()
    }
}

/// Start serving a pinned `engine` over `listener` (no hot reload; the
/// `RELOAD` verb reports `swapped=false`). See [`serve_reloadable`].
pub fn serve<S>(
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    listener: Listener,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    S: HpStore + Send + Sync + 'static,
{
    serve_reloadable(
        Arc::new(ReloadableEngine::pinned(engine, graph)),
        listener,
        config,
    )
}

/// Start serving the generation held by `reloadable` over `listener`.
///
/// Spawns `config.workers` worker threads (thread-per-core by default),
/// each owning its query workspaces, plus one acceptor thread — and,
/// when the slot has a generation opener and
/// [`ServerConfig::watch_interval_ms`] is nonzero, a watcher thread that
/// periodically checks for a newer promoted generation and hot-swaps it
/// under live traffic. The engine and graph are shared immutably; the
/// only shared mutable state is the connection queue, the sharded result
/// cache, and the swap slot. Returns immediately with a
/// [`ServerHandle`].
pub fn serve_reloadable<S>(
    reloadable: Arc<ReloadableEngine<S>>,
    listener: Listener,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    S: HpStore + Send + Sync + 'static,
{
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.workers
    };
    let cache = (config.cache_capacity > 0).then(|| {
        let shards = if config.cache_shards == 0 {
            ShardedResultCache::DEFAULT_SHARDS
        } else {
            config.cache_shards
        };
        ShardedResultCache::new(config.cache_capacity, shards)
    });
    let control = Arc::new(Control {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        served: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        latency: (0..workers).map(|_| LatencyHistogram::new()).collect(),
        cache,
    });
    let addr = listener.local_addr();
    let mut threads = Vec::with_capacity(workers + 2);
    for id in 0..workers {
        let control = Arc::clone(&control);
        let reloadable = Arc::clone(&reloadable);
        threads.push(
            std::thread::Builder::new()
                .name(format!("sling-worker-{id}"))
                .spawn(move || worker_loop(&reloadable, &control, id))?,
        );
    }
    let acceptor_control = Arc::clone(&control);
    threads.push(
        std::thread::Builder::new()
            .name("sling-acceptor".to_string())
            .spawn(move || accept_loop(listener, &acceptor_control))?,
    );
    if config.watch_interval_ms > 0 && reloadable.opener.is_some() {
        let control = Arc::clone(&control);
        let watched = Arc::clone(&reloadable);
        let interval = Duration::from_millis(config.watch_interval_ms);
        threads.push(
            std::thread::Builder::new()
                .name("sling-watcher".to_string())
                .spawn(move || watch_loop(&watched, &control, interval))?,
        );
    }
    let info_source = Arc::clone(&reloadable);
    Ok(ServerHandle {
        addr,
        control,
        threads,
        generation_info: Arc::new(move || info_source.info()),
    })
}

/// Periodically re-check the promoted generation and hot-swap on change.
/// Sleeps in `READ_POLL` slices so `SHUTDOWN` is observed promptly; a
/// failing reload (a promotion racing its own publish, transient IO) is
/// retried at the next tick rather than taking the server down — the
/// old generation keeps serving, which is the whole point.
fn watch_loop<S: HpStore>(reloadable: &ReloadableEngine<S>, control: &Control, interval: Duration) {
    let mut since_check = Duration::ZERO;
    let mut failing = false;
    loop {
        if control.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let slice = READ_POLL.min(interval);
        std::thread::sleep(slice);
        since_check += slice;
        if since_check >= interval {
            since_check = Duration::ZERO;
            match reloadable.try_reload(control.cache.as_ref()) {
                Ok(_) => failing = false,
                Err(e) => {
                    // One stderr line per failure streak (not per tick):
                    // a corrupt promotion under --watch must be visible
                    // somewhere, and STATS carries the running count.
                    if !failing {
                        eprintln!("sling-server: generation reload failed: {e}");
                    }
                    failing = true;
                }
            }
        }
    }
}

/// Accept connections until shutdown; non-blocking with a short poll so
/// the flag is observed promptly, since `accept(2)` has no portable
/// cancellation.
///
/// Error policy: per-connection failures (aborted handshakes, resets)
/// are skipped; resource-exhaustion errors (e.g. `EMFILE`) are retried
/// with a poll-interval backoff. If the listener stays broken for
/// [`MAX_ACCEPT_ERRORS`] consecutive attempts, the acceptor initiates a
/// full shutdown — a server nobody can connect to must terminate, not
/// linger as a zombie that `SHUTDOWN` can no longer reach.
fn accept_loop(listener: Listener, control: &Control) {
    let _ = match &listener {
        Listener::Tcp(l) => l.set_nonblocking(true),
        Listener::Unix(l, _) => l.set_nonblocking(true),
    };
    let mut consecutive_errors = 0u32;
    loop {
        if control.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let accepted: io::Result<BoxConn> = match &listener {
            Listener::Tcp(l) => l.accept().map(|(stream, _)| {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                Box::new(stream) as BoxConn
            }),
            Listener::Unix(l, _) => l.accept().map(|(stream, _)| {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                Box::new(stream) as BoxConn
            }),
        };
        match accepted {
            Ok(conn) => {
                consecutive_errors = 0;
                control.push(Session::new(conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                consecutive_errors = 0;
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                ) => {}
            Err(_) => {
                consecutive_errors += 1;
                if consecutive_errors >= MAX_ACCEPT_ERRORS {
                    control.initiate_shutdown();
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

/// Per-worker reusable buffers: workspaces warm up once, then the hot
/// path is allocation-free for pair queries. The worker also caches the
/// generation `Arc` it is serving, refreshed with one atomic epoch
/// compare per request ([`WorkerCtx::generation`]).
struct WorkerCtx<S: HpStore> {
    ws: QueryWorkspace,
    ss: SingleSourceWorkspace,
    scores: Vec<f64>,
    batch: Vec<f64>,
    response: String,
    /// The generation currently being served, held only while the
    /// worker is actively serving (`None` while parked on the queue, so
    /// an idle worker never pins a retired generation's engine in
    /// memory across a swap).
    gen: Option<Arc<EngineGeneration<S>>>,
}

impl<S: HpStore> WorkerCtx<S> {
    /// The serving generation, refetched from the swap slot only when
    /// the epoch moved — one `Acquire` load on the hot path. In-flight
    /// requests keep whatever generation they started with; this is
    /// where the *next* request picks up a promoted one.
    fn generation(&mut self, reloadable: &ReloadableEngine<S>) -> Arc<EngineGeneration<S>> {
        let epoch = reloadable.epoch();
        match &self.gen {
            Some(gen) if gen.epoch == epoch => Arc::clone(gen),
            _ => {
                let gen = reloadable.current();
                self.gen = Some(Arc::clone(&gen));
                gen
            }
        }
    }
}

fn worker_loop<S: HpStore>(reloadable: &ReloadableEngine<S>, control: &Control, worker: usize) {
    let mut ctx = WorkerCtx {
        ws: QueryWorkspace::new(),
        ss: SingleSourceWorkspace::new(),
        scores: Vec::new(),
        batch: Vec::new(),
        response: String::new(),
        gen: None,
    };
    loop {
        // Release the generation before parking: a worker blocked on an
        // empty queue across a swap must not keep the retired engine
        // (potentially the whole previous index) alive.
        ctx.gen = None;
        let Some(mut session) = control.pop() else {
            break;
        };
        match serve_session(reloadable, control, worker, &mut session, &mut ctx) {
            // Quiet session parked while others wait: back of the queue,
            // partial read state intact.
            SessionOutcome::Parked => control.push(session),
            // Closed or broken: dropping a session only drops that
            // client; the worker returns to the queue for the next one.
            SessionOutcome::Closed => {}
        }
        // Release hub-sized scratch the session's queries may have
        // pinned: a long-lived worker must not retain the largest entry
        // list it ever materialized, per core, forever. Capacity checks
        // only — free when nothing outgrew the retention threshold.
        ctx.ws.trim_excess();
        ctx.ss.trim_excess();
    }
}

/// What the connection loop does after writing a response.
enum Action {
    Continue,
    Close,
    Shutdown,
}

/// Why `serve_session` returned.
enum SessionOutcome {
    /// Connection finished (client EOF/QUIT, IO error, or shutdown).
    Closed,
    /// Session went quiet while other connections wait: requeue it.
    Parked,
}

/// One attempt to complete the request line in `session.line`.
enum ReadOutcome {
    /// A full newline-terminated request is in `session.line`.
    Request,
    /// Client closed (EOF) or the server is draining.
    Closed,
    /// Read timed out while other sessions wait for a worker.
    Park,
}

/// Read one request line, waking on the socket read timeout (READ_POLL,
/// or PROBE_POLL while `probing`) so a worker parked on an idle
/// connection still observes `SHUTDOWN` and yields to waiting
/// connections instead of pinning the worker. Partial lines survive
/// both timeouts and parking: `read_line` appends whatever bytes it
/// consumed even when it returns an error, and the accumulator lives in
/// the session, not the worker.
fn read_request_line(
    session: &mut Session,
    control: &Control,
    probing: &mut bool,
) -> io::Result<ReadOutcome> {
    loop {
        match session
            .reader
            .by_ref()
            .take(MAX_LINE_BYTES as u64)
            .read_line(&mut session.line)
        {
            Ok(0) => return Ok(ReadOutcome::Closed), // EOF (a dangling partial line is moot)
            Ok(_) => {
                if session.line.ends_with('\n') {
                    return Ok(ReadOutcome::Request);
                }
                if session.line.len() >= MAX_LINE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "request line too long",
                    ));
                }
                // Partial line without a newline yet: keep reading (the
                // next pass returns Ok(0) if this was EOF mid-line).
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if control.shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadOutcome::Closed); // drop the idle connection during drain
                }
                if control.has_waiting() {
                    return Ok(ReadOutcome::Park); // yield the worker to a waiting session
                }
                if *probing {
                    // The queue drained while we probed: nobody is
                    // waiting, so fall back to the idle poll rate
                    // rather than waking every PROBE_POLL.
                    let _ = session.reader.get_ref().set_read_timeout(Some(READ_POLL));
                    *probing = false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serve requests on one session until it closes, breaks, or yields to
/// waiting connections — on a READ_POLL timeout while idle, or after
/// YIELD_AFTER back-to-back requests while busy.
fn serve_session<S: HpStore>(
    reloadable: &ReloadableEngine<S>,
    control: &Control,
    worker: usize,
    session: &mut Session,
    ctx: &mut WorkerCtx<S>,
) -> SessionOutcome {
    let mut served_since_park = 0u32;
    // Ready-work preemption: nothing buffered on this session while
    // other connections wait — probe with a short timeout so an idle
    // client costs PROBE_POLL, not READ_POLL, before we park it. (The
    // timeout alone still paces the worker, so parking cycles through
    // all-idle sessions cannot busy-spin.) Set explicitly either way: a
    // previously parked session may carry the other rate.
    let mut probing = session.reader.buffer().is_empty() && control.has_waiting();
    let _ = session.reader.get_ref().set_read_timeout(Some(if probing {
        PROBE_POLL
    } else {
        READ_POLL
    }));
    loop {
        match read_request_line(session, control, &mut probing) {
            Ok(ReadOutcome::Request) => {
                if probing {
                    // The session proved active: back to the idle poll.
                    let _ = session.reader.get_ref().set_read_timeout(Some(READ_POLL));
                    probing = false;
                }
            }
            Ok(ReadOutcome::Park) => return SessionOutcome::Parked,
            Ok(ReadOutcome::Closed) | Err(_) => return SessionOutcome::Closed,
        }
        ctx.response.clear();
        let action = match Request::parse(session.line.trim_end_matches(['\n', '\r'])) {
            Err(msg) => {
                let _ = write!(ctx.response, "ERR {msg}");
                Action::Continue
            }
            Ok(req) => handle_request(reloadable, control, worker, req, ctx),
        };
        session.line.clear();
        if matches!(action, Action::Shutdown) {
            control.initiate_shutdown();
        }
        let stream = session.reader.get_mut();
        if stream
            .write_all(ctx.response.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_err()
        {
            return SessionOutcome::Closed;
        }
        match action {
            Action::Continue => {
                // Re-check between requests too: a client pipelining
                // back-to-back requests never hits the read-timeout
                // branch, so without this a busy session would pin its
                // worker and starve queued connections (and SHUTDOWN).
                // Amortized to every YIELD_AFTER requests so the check
                // stays off the hot path.
                served_since_park += 1;
                if served_since_park >= YIELD_AFTER {
                    served_since_park = 0;
                    if control.shutdown.load(Ordering::SeqCst) {
                        return SessionOutcome::Closed;
                    }
                    if control.has_waiting() {
                        return SessionOutcome::Parked;
                    }
                }
            }
            Action::Close | Action::Shutdown => return SessionOutcome::Closed,
        }
    }
}

/// Canonicalize and score one symmetric pair, through the shared cache
/// when one is configured (the cached path prefetches internally, on
/// misses only — a hit never touches the store, so advising it would
/// waste syscalls on the hottest path). Both the `PAIR` and `BATCH`
/// handlers route here so the two cannot diverge. Cache inserts are
/// tagged with the generation's epoch (captured before computing), so a
/// swap landing mid-query can never get a retired-generation score
/// admitted as fresh.
fn score_pair<S: HpStore>(
    gen: &EngineGeneration<S>,
    control: &Control,
    ws: &mut QueryWorkspace,
    u: u32,
    v: u32,
) -> Result<f64, SlingError> {
    let (a, b) = (NodeId(u.min(v)), NodeId(u.max(v)));
    match &control.cache {
        Some(cache) => gen
            .engine
            .single_pair_cached_tagged(&gen.graph, ws, cache, a, b, gen.epoch),
        None => {
            gen.engine.store().prefetch(a);
            if a != b {
                gen.engine.store().prefetch(b);
            }
            gen.engine.single_pair_with(&gen.graph, ws, a, b)
        }
    }
}

fn write_query_error(out: &mut String, err: SlingError) {
    let _ = write!(out, "ERR {err}");
}

fn handle_request<S: HpStore>(
    reloadable: &ReloadableEngine<S>,
    control: &Control,
    worker: usize,
    req: Request,
    ctx: &mut WorkerCtx<S>,
) -> Action {
    // Refresh the cached generation if a swap landed (one atomic
    // compare); the Arc clone keeps this request on one consistent
    // generation even if another swap lands mid-request.
    let gen = ctx.generation(reloadable);
    let out = &mut ctx.response;
    match req {
        Request::Ping => out.push_str("OK pong"),
        Request::Quit => {
            out.push_str("OK bye");
            return Action::Close;
        }
        Request::Shutdown => {
            out.push_str("OK shutting-down");
            return Action::Shutdown;
        }
        Request::Reload => match reloadable.try_reload(control.cache.as_ref()) {
            Ok(swapped) => {
                let info = reloadable.info();
                let _ = write!(
                    out,
                    "OK generation={} epoch={} swapped={swapped}",
                    info.generation, info.epoch
                );
            }
            Err(e) => {
                let _ = write!(out, "ERR reload failed: {e}");
            }
        },
        Request::Stats => {
            let _ = write!(
                out,
                "OK workers={} served={}",
                control.served.len(),
                control.total_served()
            );
            let info = reloadable.info();
            let _ = write!(
                out,
                " index_generation={} index_epoch={} swaps={} reload_failures={} \
                 last_swap_unix_ms={}",
                info.generation,
                info.epoch,
                info.swaps,
                info.reload_failures,
                info.last_swap_unix_ms
            );
            let lat = merge_report(&control.latency);
            let _ = write!(
                out,
                " latency_count={} latency_p50_us={:.1} latency_p99_us={:.1} \
                 latency_p999_us={:.1}",
                lat.count, lat.p50_us, lat.p99_us, lat.p999_us
            );
            out.push_str(" per_worker=");
            for (i, c) in control.served.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", c.load(Ordering::Relaxed));
            }
            match &control.cache {
                None => out.push_str(" cache=off"),
                Some(cache) => {
                    let s = cache.stats();
                    let _ = write!(
                        out,
                        " cache=on cache_entries={} cache_capacity={} cache_shards={} \
                         cache_hits={} cache_misses={} cache_evictions={} cache_hit_rate={:.4}",
                        cache.len(),
                        cache.capacity(),
                        cache.num_shards(),
                        s.hits,
                        s.misses,
                        s.evictions,
                        s.hit_rate()
                    );
                }
            }
            let _ = write!(out, " resident_bytes={}", gen.engine.resident_bytes());
        }
        Request::Pair { u, v } => {
            control.served[worker].fetch_add(1, Ordering::Relaxed);
            let t0 = std::time::Instant::now();
            match score_pair(&gen, control, &mut ctx.ws, u, v) {
                Ok(s) => {
                    control.latency[worker].record(t0.elapsed());
                    let _ = write!(out, "OK {s}");
                }
                Err(e) => write_query_error(out, e),
            }
        }
        Request::Source { u } => {
            control.served[worker].fetch_add(1, Ordering::Relaxed);
            gen.engine.store().prefetch(NodeId(u));
            let t0 = std::time::Instant::now();
            match gen
                .engine
                .single_source_with(&gen.graph, &mut ctx.ss, NodeId(u), &mut ctx.scores)
            {
                Ok(()) => {
                    control.latency[worker].record(t0.elapsed());
                    out.push_str("OK ");
                    write_scores(out, &ctx.scores);
                }
                Err(e) => write_query_error(out, e),
            }
        }
        Request::TopK { u, k } => {
            control.served[worker].fetch_add(1, Ordering::Relaxed);
            gen.engine.store().prefetch(NodeId(u));
            let t0 = std::time::Instant::now();
            match gen
                .engine
                .top_k_with(&gen.graph, &mut ctx.ss, &mut ctx.scores, NodeId(u), k)
            {
                Ok(top) => {
                    control.latency[worker].record(t0.elapsed());
                    let _ = write!(out, "OK {}", top.len());
                    for (node, score) in top {
                        let _ = write!(out, " {}:{score}", node.0);
                    }
                }
                Err(e) => write_query_error(out, e),
            }
        }
        Request::Batch { pairs } => {
            control.served[worker].fetch_add(pairs.len() as u64, Ordering::Relaxed);
            ctx.batch.clear();
            for &(u, v) in &pairs {
                let t0 = std::time::Instant::now();
                match score_pair(&gen, control, &mut ctx.ws, u, v) {
                    Ok(s) => {
                        control.latency[worker].record(t0.elapsed());
                        ctx.batch.push(s);
                    }
                    Err(e) => {
                        write_query_error(out, e);
                        return Action::Continue;
                    }
                }
            }
            out.push_str("OK ");
            write_scores(out, &ctx.batch);
        }
    }
    Action::Continue
}
