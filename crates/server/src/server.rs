//! The server runtime: acceptor, per-worker epoll readiness loops, hot
//! generation reload, graceful shutdown, and per-worker statistics.
//!
//! Each worker owns one epoll instance (a [`polling::Poller`]) and a set
//! of nonblocking connections, handed to it round-robin by the acceptor.
//! A connection is a small state machine ([`Conn`]): bytes accumulate in
//! an incremental read buffer until a full newline-terminated request is
//! framed, every response produced in one readiness *turn* is coalesced
//! into a pending-write buffer and flushed with a single `write`, and a
//! partial write re-arms the connection for write readiness instead of
//! blocking the worker. Idle connections therefore cost one registration
//! each — no thread, no timeout probing — which is the regime skewed,
//! mostly-idle production traffic (SkyServer-shaped: bursty, hot-key
//! dominated, bot-heavy) actually presents.
//!
//! Scheduling is cooperative and fair: readiness events feed a
//! round-robin ready queue, a continuously pipelining connection yields
//! back to that queue after [`YIELD_AFTER`] requests, and a connection
//! owing more than [`OUT_HIGH_WATER`] pending response bytes stops being
//! read until the peer drains it (backpressure). Each worker keeps one
//! warm [`QueryWorkspace`] — the query hot path stays allocation-free
//! and lock-free. Shutdown is lost-wakeup-safe by construction: the
//! flag store is followed by an eventfd notify per worker, and the
//! eventfd stays readable until the worker drains it, so a worker
//! between its flag check and `epoll_wait` still wakes.
//!
//! ## Hot reload
//!
//! The engine lives in a [`ReloadableEngine`] — an epoch-tagged swap
//! slot holding one [`EngineGeneration`] (engine + graph + generation
//! name). Requests in flight keep the `Arc` of the generation they
//! started on; the next request a worker picks up observes the bumped
//! epoch with one atomic load and refetches. A swap also advances the
//! shared result cache's epoch *in the same critical section*, and every
//! insert is tagged with the epoch of the generation that computed it,
//! so a hit computed against a retired index can never be served (see
//! [`ShardedResultCache`]). Swaps are driven by the `RELOAD` protocol
//! verb or the periodic `CURRENT`-staleness watcher
//! ([`ServerConfig::watch_interval_ms`]), both of which consult the
//! [`ReloadableEngine`]'s generation opener (typically wired to a
//! [`sling_core::lifecycle::GenerationStore`]).

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use polling::{Event, Events, Poller};

use sling_core::faults::{self, FaultAction};
use sling_core::lifecycle::{warm_engine, GenId, GenerationStore};
use sling_core::obs::{
    register_process_metrics, Counter, Histogram, MetricsRegistry, SlowQueryLog, SlowQueryRecord,
    StageNanos,
};
use sling_core::single_source::SingleSourceWorkspace;
use sling_core::workload::trace::{encode_record, TraceKey, TraceOutcome, TraceVerb};
use sling_core::{
    Admission, CacheStats, HpStore, QueryWorkspace, ShardedResultCache, SharedEngine, SlingError,
};
use sling_graph::{DiGraph, NodeId};

use crate::latency::{merge_report, LatencyReport};
use crate::protocol::{write_scores, Request, MAX_LINE_BYTES};
use crate::recorder::{writer_loop, TraceRecorder, MAX_TRACE_BATCH};

/// How often the non-blocking acceptor re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Upper bound on an *idle* worker's `epoll_wait`, and the watcher's
/// sleep slice: even if a shutdown notify were somehow missed, every
/// thread re-checks the flag at least this often. The eventfd waker
/// makes the normal shutdown path immediate; this is the belt to that
/// suspender.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// Consecutive unexpected `accept(2)` failures (e.g. fd exhaustion)
/// tolerated — with a poll-interval sleep between retries — before the
/// acceptor gives up and shuts the server down rather than zombifying.
const MAX_ACCEPT_ERRORS: u32 = 512;

/// Requests one connection may run in a single readiness turn before it
/// is re-queued behind the other ready connections. Amortizes dispatch
/// overhead for pipelining clients while bounding how long one busy
/// connection can monopolize a worker.
const YIELD_AFTER: u32 = 64;

/// Read-chunk size for draining a readable socket into a connection's
/// frame buffer.
const READ_CHUNK: usize = 16 * 1024;

/// Most bytes one turn will read from a single connection before
/// yielding — bounds per-turn latency under a firehose client without
/// stalling large (up to [`MAX_LINE_BYTES`]) requests, which resume on
/// the next readiness event.
const TURN_READ_CAP: usize = 256 * 1024;

/// Pending-write high-water mark: a connection owing more than this many
/// unflushed response bytes stops being *read* (backpressure) and is
/// armed for write readiness only, so a client that never drains its
/// receive buffer cannot balloon server memory.
const OUT_HIGH_WATER: usize = 1 << 20;

/// How long shutdown keeps serving connections that still owe work
/// (buffered requests or unflushed responses) before force-closing.
const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Pause between drain passes during shutdown.
const DRAIN_POLL: Duration = Duration::from_millis(10);

/// Slow-query ring capacity: enough recent offenders to characterize a
/// latency regression without unbounded retention.
const SLOW_LOG_CAPACITY: usize = 128;

/// Tuning knobs for [`serve`] / [`serve_reloadable`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads; `0` means one per available core
    /// (thread-per-core).
    pub workers: usize,
    /// Total capacity of the shared single-pair result cache; `0`
    /// disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two); `0` picks
    /// [`ShardedResultCache::DEFAULT_SHARDS`].
    pub cache_shards: usize,
    /// Period of the `CURRENT`-staleness watcher in milliseconds; `0`
    /// disables it. Only meaningful for [`serve_reloadable`] with a
    /// generation opener — swaps can still be driven explicitly with the
    /// `RELOAD` verb either way.
    pub watch_interval_ms: u64,
    /// Maximum simultaneously open client connections; past the cap the
    /// acceptor answers `ERR busy` and closes the socket instead of
    /// queueing unboundedly. `0` means unlimited.
    pub max_connections: usize,
    /// Slow-query threshold in microseconds: requests at or above it are
    /// admitted to the ring-buffered slow-query log (`SLOWLOG` verb).
    /// `0` disables the log.
    pub slow_query_us: u64,
    /// Per-request deadline budget in microseconds, measured from when
    /// a request's first bytes reached the server. A query verb
    /// dispatched past its budget answers `ERR deadline` instead of
    /// computing a score nobody is waiting for. `0` disables deadlines.
    pub deadline_us: u64,
    /// Overload shedding by ready-queue depth: when this many
    /// connections are already waiting on the worker's ready queue, new
    /// query verbs answer `ERR overloaded` (fast-fail) instead of
    /// queueing behind them. `0` disables the depth trigger.
    pub shed_queue_depth: usize,
    /// Overload shedding by per-connection pending bytes: a query verb
    /// arriving while the connection already owes this many unserved
    /// input + unflushed output bytes answers `ERR overloaded`. `0`
    /// disables the byte trigger.
    pub shed_pending_bytes: usize,
    /// Runtime `CorruptIndex`/IO errors tolerated per generation before
    /// the [`ReloadableEngine`] quarantines it and auto-rolls back to
    /// the newest verified prior generation. `0` disables rollback.
    pub rollback_error_threshold: u64,
    /// Capture served traffic to this `SLNGTRACE` file (the CLI's
    /// `serve --record FILE`). Enables the recorder ring, the writer
    /// thread, and the `TRACE` wire verb; `None` disables all three.
    pub record_path: Option<PathBuf>,
    /// Keep every Nth request outcome in the capture (`0`/`1` = keep
    /// all) — head-room for servers too hot to trace in full.
    pub record_sample: u64,
    /// Admission policy of the shared result cache (and, via
    /// [`serve_reloadable`], anything keyed off it): plain LRU, or
    /// TinyLFU frequency-sketch admission that rejects one-touch
    /// inserts which would evict a hotter resident.
    pub cache_admission: Admission,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            cache_capacity: 1 << 18,
            cache_shards: 0,
            watch_interval_ms: 0,
            max_connections: 0,
            slow_query_us: 10_000,
            deadline_us: 0,
            shed_queue_depth: 0,
            shed_pending_bytes: 0,
            rollback_error_threshold: 8,
            record_path: None,
            record_sample: 1,
            cache_admission: Admission::Lru,
        }
    }
}

/// A bound accept socket: TCP or Unix-domain.
pub enum Listener {
    /// TCP listener (e.g. `127.0.0.1:0` for an ephemeral port).
    Tcp(TcpListener),
    /// Unix-domain listener; the socket file is removed when the server
    /// stops accepting.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind a TCP listener.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Bind a Unix-domain listener, replacing a stale socket file.
    ///
    /// Only an existing *socket* is removed (assumed stale from a prior
    /// run); any other file at the path is an error — a typo'd `--unix`
    /// must never delete data.
    pub fn bind_unix(path: impl AsRef<Path>) -> io::Result<Listener> {
        let path = path.as_ref().to_path_buf();
        match std::fs::symlink_metadata(&path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt as _;
                if meta.file_type().is_socket() {
                    std::fs::remove_file(&path)?;
                } else {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!("{} exists and is not a socket", path.display()),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Listener::Unix(UnixListener::bind(&path)?, path))
    }

    /// The bound TCP address (`None` for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }
}

/// One live index generation: the engine, the graph it serves, and the
/// generation's name (`gen-NNNN`, or `static` for pinned deployments).
/// Immutable once published into a [`ReloadableEngine`]; requests hold
/// an `Arc` to the generation they started on, so a swap never tears a
/// response.
pub struct EngineGeneration<S: HpStore> {
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    name: String,
    /// Swap epoch assigned when this generation is published into the
    /// slot (0 for the initial generation); also the tag its computed
    /// scores carry in the shared result cache.
    epoch: u64,
    /// Runtime `CorruptIndex`/IO errors observed while serving this
    /// generation — the signal corrupt-generation rollback triggers on.
    runtime_errors: AtomicU64,
}

impl<S: HpStore> EngineGeneration<S> {
    /// Package an engine + graph as a generation named `name`.
    pub fn new(engine: Arc<SharedEngine<S>>, graph: Arc<DiGraph>, name: impl Into<String>) -> Self {
        EngineGeneration {
            engine,
            graph,
            name: name.into(),
            epoch: 0,
            runtime_errors: AtomicU64::new(0),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &SharedEngine<S> {
        &self.engine
    }

    /// The graph this generation was built from.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Generation name (`gen-NNNN` or `static`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Swap epoch of this generation (see [`ReloadableEngine`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runtime `CorruptIndex`/IO errors observed while serving this
    /// generation.
    pub fn runtime_errors(&self) -> u64 {
        self.runtime_errors.load(Ordering::Relaxed)
    }
}

/// Produces the next generation when the promoted one changes: given the
/// name of the generation currently being served, return `Ok(Some(..))`
/// with a fully opened (and warmed) successor, `Ok(None)` when nothing
/// newer is promoted. Runs on watcher or `RELOAD`-handling threads, so
/// it may block on IO.
pub type GenerationOpener<S> =
    Box<dyn Fn(&str) -> io::Result<Option<EngineGeneration<S>>> + Send + Sync>;

/// Produces the rollback target when a serving generation is
/// quarantined: given the quarantined generation's name and the full
/// quarantine set, open the newest verified *prior* generation that is
/// not itself quarantined. `Ok(None)` means there is nowhere to roll
/// back to (the old generation keeps serving, errors and all).
type RollbackOpener<S> =
    Box<dyn Fn(&str, &HashSet<String>) -> io::Result<Option<EngineGeneration<S>>> + Send + Sync>;

/// Epoch-tagged hot-swap slot for the serving engine.
///
/// Readers ([`ReloadableEngine::current`]) take an uncontended
/// `RwLock` read just long enough to clone the generation `Arc`; the
/// worker hot path avoids even that by caching the `Arc` and comparing
/// one relaxed-cost atomic epoch load per request. Swapping
/// ([`ReloadableEngine::try_reload`]) verifies-and-opens the new
/// generation *outside* any lock, then publishes it and advances the
/// shared result cache's epoch inside the write critical section — the
/// ordering that makes "a swap can never serve a hit computed against a
/// retired index" hold (see [`ShardedResultCache`]).
pub struct ReloadableEngine<S: HpStore> {
    slot: RwLock<Arc<EngineGeneration<S>>>,
    /// Epoch of the generation currently in `slot` (bumped on swap).
    epoch: AtomicU64,
    swaps: AtomicU64,
    last_swap_unix_ms: AtomicU64,
    /// Reload attempts whose opener failed (the old generation kept
    /// serving). Surfaced through `STATS` so a permanently failing
    /// promotion is diagnosable even under `--watch`.
    reload_failures: AtomicU64,
    opener: Option<GenerationOpener<S>>,
    /// Opens the newest verified prior generation on rollback (set by
    /// [`ReloadableEngine::watching_store`]; `None` for pinned slots,
    /// which have nowhere to roll back to).
    rollback_opener: Option<RollbackOpener<S>>,
    /// Generations quarantined after crossing the runtime-error
    /// threshold. A quarantined generation is refused by
    /// [`ReloadableEngine::try_reload`] until `RELOAD FORCE` lifts it.
    quarantined: Mutex<HashSet<String>>,
    /// Completed corrupt-generation rollbacks.
    rollbacks: AtomicU64,
    /// Serializes [`ReloadableEngine::try_reload`] so concurrent callers
    /// (watcher + `RELOAD`) cannot double-open one generation.
    reload_lock: Mutex<()>,
}

/// Snapshot of a [`ReloadableEngine`]'s swap state, surfaced through
/// `STATS` and [`ServerReport`].
#[derive(Clone, Debug)]
pub struct GenerationInfo {
    /// Name of the generation being served.
    pub generation: String,
    /// Current swap epoch (0 until the first swap).
    pub epoch: u64,
    /// Completed generation swaps.
    pub swaps: u64,
    /// Reload attempts that failed (old generation kept serving).
    pub reload_failures: u64,
    /// Unix timestamp (ms) of the last swap; 0 when none happened.
    pub last_swap_unix_ms: u64,
    /// Completed corrupt-generation rollbacks.
    pub rollbacks: u64,
    /// Generations currently quarantined (refused until `RELOAD FORCE`).
    pub quarantined: usize,
    /// Runtime `CorruptIndex`/IO errors charged to the serving
    /// generation.
    pub runtime_errors: u64,
}

fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl<S: HpStore> ReloadableEngine<S> {
    /// A slot pinned to one generation forever — what [`serve`] wraps a
    /// plain engine in. `RELOAD` reports `swapped=false` and the watcher
    /// never starts.
    pub fn pinned(engine: Arc<SharedEngine<S>>, graph: Arc<DiGraph>) -> Self {
        Self::with_opener(EngineGeneration::new(engine, graph, "static"), None)
    }

    /// A slot starting at `initial` whose successors come from `opener`.
    pub fn new(initial: EngineGeneration<S>, opener: GenerationOpener<S>) -> Self {
        Self::with_opener(initial, Some(opener))
    }

    fn with_opener(initial: EngineGeneration<S>, opener: Option<GenerationOpener<S>>) -> Self {
        ReloadableEngine {
            epoch: AtomicU64::new(initial.epoch),
            slot: RwLock::new(Arc::new(initial)),
            swaps: AtomicU64::new(0),
            last_swap_unix_ms: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            opener,
            rollback_opener: None,
            quarantined: Mutex::new(HashSet::new()),
            rollbacks: AtomicU64::new(0),
            reload_lock: Mutex::new(()),
        }
    }

    /// Watch a [`GenerationStore`]: open its promoted generation now
    /// (erroring when nothing is promoted) and reload whenever `CURRENT`
    /// moves. `open` maps a graph + index path to an engine — one line
    /// per storage backend. Each generation's graph comes from its
    /// co-located snapshot when present, else from `fallback_graph`
    /// (fingerprint-checked against the manifest either way), and each
    /// freshly opened engine is warmed from the store's hot-key log
    /// before it starts serving.
    pub fn watching_store<F>(
        store: GenerationStore,
        fallback_graph: Option<Arc<DiGraph>>,
        open: F,
    ) -> io::Result<ReloadableEngine<S>>
    where
        F: Fn(&DiGraph, &Path) -> Result<SharedEngine<S>, SlingError> + Send + Sync + 'static,
        S: 'static,
    {
        let current = store.current().map_err(io::Error::other)?.ok_or_else(|| {
            io::Error::other(format!(
                "{}: no promoted generation (run `sling promote` first)",
                store.root().display()
            ))
        })?;
        let initial = open_store_generation(&store, &fallback_graph, &open, current)?;
        // The store and the open closure feed both the forward opener
        // (promotion watching) and the rollback opener, so share them.
        let store = Arc::new(store);
        let fallback_graph = Arc::new(fallback_graph);
        let open = Arc::new(open);
        let opener: GenerationOpener<S> = {
            let (store, fallback_graph, open) = (
                Arc::clone(&store),
                Arc::clone(&fallback_graph),
                Arc::clone(&open),
            );
            Box::new(move |serving: &str| {
                let Some(promoted) = store.current().map_err(io::Error::other)? else {
                    return Ok(None); // pointer vanished: keep serving
                };
                if promoted.dir_name() == serving {
                    return Ok(None);
                }
                open_store_generation(&store, &fallback_graph, open.as_ref(), promoted).map(Some)
            })
        };
        // Rollback target: the newest generation strictly older than the
        // quarantined one that is not itself quarantined and passes full
        // payload verification — never trade one corrupt index for
        // another.
        let rollback: RollbackOpener<S> =
            Box::new(move |bad: &str, quarantined: &HashSet<String>| {
                let bad_id = GenId::parse(bad);
                let mut gens = store.list().map_err(io::Error::other)?;
                gens.sort_unstable();
                for gen in gens.into_iter().rev() {
                    if bad_id.is_some_and(|b| gen >= b) || quarantined.contains(&gen.dir_name()) {
                        continue;
                    }
                    if store.verify(gen).is_err() {
                        continue;
                    }
                    return open_store_generation(&store, &fallback_graph, open.as_ref(), gen)
                        .map(Some);
                }
                Ok(None)
            });
        let mut slot = Self::new(initial, opener);
        slot.rollback_opener = Some(rollback);
        Ok(slot)
    }

    /// The generation currently being served.
    pub fn current(&self) -> Arc<EngineGeneration<S>> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Epoch of the serving generation — one atomic load, so callers can
    /// cheaply detect a swap and refetch [`ReloadableEngine::current`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Swap-state snapshot for reporting.
    pub fn info(&self) -> GenerationInfo {
        let current = self.current();
        GenerationInfo {
            generation: current.name.clone(),
            epoch: self.epoch(),
            swaps: self.swaps.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            last_swap_unix_ms: self.last_swap_unix_ms.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            quarantined: self
                .quarantined
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
            runtime_errors: current.runtime_errors(),
        }
    }

    /// Publish `next` as the serving generation: bump the epoch, retag
    /// the shared result cache (when one is given) in the same critical
    /// section, and record swap accounting. In-flight requests finish on
    /// the generation `Arc` they hold; the old generation is dropped
    /// when its last request completes.
    pub fn swap(&self, next: EngineGeneration<S>, cache: Option<&ShardedResultCache>) {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let mut next = next;
        next.epoch = epoch;
        *slot = Arc::new(next);
        // Cache first, then the epoch the workers poll: a worker that
        // observes the new epoch must also observe the retagged cache.
        if let Some(cache) = cache {
            cache.set_epoch(epoch);
        }
        self.epoch.store(epoch, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.last_swap_unix_ms
            .store(unix_ms_now(), Ordering::Relaxed);
    }

    /// Consult the generation opener and swap if a newer generation is
    /// promoted. Returns whether a swap happened; `Ok(false)` for pinned
    /// slots. Serialized internally — concurrent callers (watcher +
    /// `RELOAD`) cannot double-open one generation.
    ///
    /// **Synchronous by design**: the open, verification, and warm-up
    /// run on the calling thread, so a `RELOAD` verb answers with the
    /// definitive outcome — at the cost of occupying that worker for
    /// the load duration. On small worker pools serving a large index,
    /// prefer the watcher ([`ServerConfig::watch_interval_ms`]), which
    /// performs the same load on its own thread while every worker
    /// keeps serving; workers then pick the new generation up with one
    /// atomic compare.
    pub fn try_reload(&self, cache: Option<&ShardedResultCache>) -> io::Result<bool> {
        self.try_reload_with(cache, false)
    }

    /// [`ReloadableEngine::try_reload`], optionally lifting the opened
    /// generation's quarantine first (`RELOAD FORCE`). Without `force`,
    /// a promoted-but-quarantined generation is refused — `Ok(false)`,
    /// the rolled-back-to generation keeps serving — so the watcher
    /// cannot re-promote an index that was quarantined at runtime.
    pub fn try_reload_with(
        &self,
        cache: Option<&ShardedResultCache>,
        force: bool,
    ) -> io::Result<bool> {
        let Some(opener) = &self.opener else {
            return Ok(false);
        };
        // The slot read is brief; the open runs outside the slot lock. A
        // racing second reload would re-open the same generation and
        // swap it in twice — harmless but wasteful, so serialize opens.
        let _serialized = self.reload_lock.lock().unwrap_or_else(|e| e.into_inner());
        let serving = self.current().name.clone();
        match opener(&serving) {
            Ok(Some(next)) => {
                {
                    let mut quarantined =
                        self.quarantined.lock().unwrap_or_else(|e| e.into_inner());
                    if force {
                        quarantined.remove(next.name());
                    } else if quarantined.contains(next.name()) {
                        return Ok(false);
                    }
                }
                self.swap(next, cache);
                Ok(true)
            }
            Ok(None) => Ok(false),
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Charge one runtime `CorruptIndex`/IO error to `gen`. Crossing
    /// `threshold` (exactly once per generation — the thread whose
    /// increment lands on the threshold wins) quarantines the
    /// generation and rolls back to the newest verified prior
    /// generation. Returns `true` when this call performed a rollback.
    pub fn note_runtime_error(
        &self,
        gen: &EngineGeneration<S>,
        threshold: u64,
        cache: Option<&ShardedResultCache>,
    ) -> bool {
        let count = gen.runtime_errors.fetch_add(1, Ordering::Relaxed) + 1;
        if threshold == 0 || count != threshold {
            return false;
        }
        match self.quarantine_and_rollback(&gen.name, cache) {
            Ok(rolled) => rolled,
            Err(e) => {
                eprintln!("sling-server: rollback from {} failed: {e}", gen.name);
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Quarantine generation `bad` and, when it is still the one being
    /// served and a verified prior generation exists, swap that prior
    /// generation in. Runs synchronously on the calling worker (like
    /// `RELOAD`); the quarantine is deliberately serving-side only —
    /// the on-disk `CURRENT` pointer is left untouched, and
    /// [`ReloadableEngine::try_reload`] refuses the quarantined name
    /// until `RELOAD FORCE`.
    fn quarantine_and_rollback(
        &self,
        bad: &str,
        cache: Option<&ShardedResultCache>,
    ) -> io::Result<bool> {
        let _serialized = self.reload_lock.lock().unwrap_or_else(|e| e.into_inner());
        let quarantine_snapshot = {
            let mut quarantined = self.quarantined.lock().unwrap_or_else(|e| e.into_inner());
            quarantined.insert(bad.to_string());
            quarantined.clone()
        };
        if self.current().name != bad {
            // A swap already replaced the bad generation (watcher race);
            // the quarantine above still blocks its re-promotion.
            return Ok(false);
        }
        let Some(rollback) = &self.rollback_opener else {
            return Err(io::Error::other(format!(
                "{bad} quarantined but this slot has no rollback opener"
            )));
        };
        match rollback(bad, &quarantine_snapshot)? {
            Some(prior) => {
                eprintln!(
                    "sling-server: quarantined {bad} after runtime errors; rolling back to {}",
                    prior.name
                );
                self.swap(prior, cache);
                self.rollbacks.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            None => Err(io::Error::other(format!(
                "{bad} quarantined but no verified prior generation exists"
            ))),
        }
    }
}

/// Open, fingerprint-check, and warm one generation from a store.
fn open_store_generation<S, F>(
    store: &GenerationStore,
    fallback_graph: &Option<Arc<DiGraph>>,
    open: &F,
    gen: sling_core::lifecycle::GenId,
) -> io::Result<EngineGeneration<S>>
where
    S: HpStore,
    F: Fn(&DiGraph, &Path) -> Result<SharedEngine<S>, SlingError>,
{
    let manifest = store.manifest(gen).map_err(io::Error::other)?;
    let graph: Arc<DiGraph> = match store
        .load_graph_with(gen, &manifest)
        .map_err(io::Error::other)?
    {
        Some(snapshot) => Arc::new(snapshot),
        None => {
            let fallback = fallback_graph.clone().ok_or_else(|| {
                io::Error::other(format!(
                    "{gen} has no graph snapshot and no fallback graph was provided"
                ))
            })?;
            if fallback.num_nodes() != manifest.num_nodes
                || fallback.num_edges() != manifest.num_edges
            {
                return Err(io::Error::other(format!(
                    "{gen} was built for a graph with {} nodes / {} edges; the fallback \
                     graph has {} / {}",
                    manifest.num_nodes,
                    manifest.num_edges,
                    fallback.num_nodes(),
                    fallback.num_edges()
                )));
            }
            fallback
        }
    };
    let engine = open(&graph, &store.index_path(gen)).map_err(io::Error::other)?;
    // Prime the caches from the replayable hot-key log before the
    // generation takes traffic; warm-up failures must never block a
    // promotion, so the key list being empty or stale is fine.
    let hot = store.read_hot_keys();
    warm_engine(&engine, &graph, &hot);
    Ok(EngineGeneration::new(
        Arc::new(engine),
        graph,
        gen.dir_name(),
    ))
}

/// An accepted client socket, TCP or Unix-domain, in nonblocking mode.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

/// Per-connection state machine: a nonblocking socket, the incremental
/// frame buffer requests accumulate in, and the pending-write buffer
/// responses coalesce into. One readiness turn ([`serve_turn`]) flushes
/// what the last turn left behind, drains the socket, serves every
/// complete line it framed (up to [`YIELD_AFTER`]), and flushes all of
/// those responses with a single `write`.
struct Conn {
    stream: Stream,
    /// Bytes received but not yet consumed; a request line may arrive in
    /// arbitrarily many fragments across turns.
    inbuf: Vec<u8>,
    /// Coalesced responses not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written (partial-write resume point).
    outpos: usize,
    /// An over-long line is being skipped: bytes are dropped until its
    /// terminating newline, then parsing resyncs on the next request
    /// (the `ERR request line too long` answer was already queued).
    discarding: bool,
    /// `QUIT`/`SHUTDOWN` answered: close once `outbuf` drains.
    close_after_flush: bool,
    /// The peer half-closed its write side (read returned 0).
    eof: bool,
    /// Already queued on the worker's ready list (dedupe flag).
    in_ready: bool,
    /// When the oldest unserved bytes in `inbuf` arrived — the start of
    /// the per-request deadline budget. `None` while the buffer is
    /// empty; pipelined requests framed from one read share the stamp.
    read_at: Option<Instant>,
}

impl Conn {
    fn new(stream: Stream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            discarding: false,
            close_after_flush: false,
            eof: false,
            in_ready: false,
            read_at: None,
        }
    }

    /// Unflushed response bytes this connection still owes its peer.
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    /// The epoll interest to re-arm with when this connection parks:
    /// readable unless closing or backpressured, writable while
    /// responses are pending.
    fn interest(&self, key: usize) -> Event {
        let pending = self.pending_out();
        Event {
            key,
            readable: !self.eof && !self.close_after_flush && pending < OUT_HIGH_WATER,
            writable: pending > 0,
        }
    }
}

/// One worker's shared face: its epoll instance (also the acceptor's
/// hand-off and shutdown waker) plus event-loop counters for `STATS`.
struct WorkerShared {
    poller: Poller,
    /// Connections accepted but not yet adopted by the worker; pushed by
    /// the acceptor (round-robin), drained after every `epoll_wait`.
    inbox: Mutex<Vec<Stream>>,
    /// Connections on this worker's ready list as of its last dispatch —
    /// the "not idle" gauge.
    active: AtomicU64,
    /// `epoll_wait` returns (including idle ticks and notifies).
    wakeups: AtomicU64,
    /// Readiness turns dispatched to connections.
    turns: AtomicU64,
}

/// Per-worker shards of the four kernel-stage histograms — one set per
/// worker so recording a stage breakdown touches only worker-private
/// cache lines; the registry merges shards on scrape.
struct StageShards {
    entry_fetch: Arc<Histogram>,
    restore: Arc<Histogram>,
    merge: Arc<Histogram>,
    propagate: Arc<Histogram>,
}

/// Shared, non-generic server state: the per-worker event loops and the
/// counters the `STATS` command reports.
struct Control {
    shutdown: AtomicBool,
    /// The server's metrics registry (also carrying the process-wide
    /// kernel/lifecycle counters); rendered by the `METRICS` verb.
    metrics: Arc<MetricsRegistry>,
    /// Ring-buffered slow-query log, served by the `SLOWLOG` verb.
    slowlog: Arc<SlowQueryLog>,
    /// Per-worker shards of `sling_server_requests_total`; `STATS`
    /// reads the same handles, so the two expositions cannot diverge.
    served: Box<[Counter]>,
    /// Per-worker query-latency histograms (merged on `STATS`), so
    /// recording a latency is one relaxed add on worker-private state.
    latency: Box<[Arc<Histogram>]>,
    /// Per-worker kernel-stage histogram shards.
    stages: Box<[StageShards]>,
    cache: Option<ShardedResultCache>,
    /// [`ServerConfig::max_connections`] (0 = unlimited).
    max_connections: usize,
    /// Currently open client connections (accepted and not yet closed).
    open_connections: AtomicU64,
    /// Connections refused with `ERR busy` by the cap.
    rejected_connections: AtomicU64,
    /// [`ServerConfig::deadline_us`] as a duration (zero = off).
    deadline: Duration,
    /// [`ServerConfig::shed_queue_depth`] (0 = off).
    shed_queue_depth: usize,
    /// [`ServerConfig::shed_pending_bytes`] (0 = off).
    shed_pending_bytes: usize,
    /// [`ServerConfig::rollback_error_threshold`] (0 = off).
    rollback_error_threshold: u64,
    /// Query verbs answered `ERR overloaded` by the shed triggers.
    requests_shed: Counter,
    /// Query verbs answered `ERR deadline` past their budget.
    requests_deadline: Counter,
    /// Acceptor errors (transient skips and unexpected failures alike).
    accept_errors: AtomicU64,
    /// Traffic-trace recorder ([`ServerConfig::record_path`]); feeds
    /// the capture file and the `TRACE` wire verb.
    recorder: Option<Arc<TraceRecorder>>,
    workers: Box<[WorkerShared]>,
}

impl Control {
    fn initiate_shutdown(&self) {
        // Store the flag, then wake every worker. The eventfd behind
        // `notify` stays readable until the worker drains it inside
        // `wait`, so a worker between its flag check and `epoll_wait`
        // still observes the wakeup — no lost-wakeup window.
        self.shutdown.store(true, Ordering::SeqCst);
        for worker in self.workers.iter() {
            let _ = worker.poller.notify();
        }
    }

    fn total_served(&self) -> u64 {
        self.served.iter().map(|c| c.get()).sum()
    }

    /// Merged server-side latency report across worker shards.
    fn latency_report(&self) -> LatencyReport {
        merge_report(self.latency.iter().map(|h| h.as_ref()))
    }
}

/// Register the gauges and derived counters that read `Control`'s own
/// atomics (connection gauges, event-loop counters, cache stats). The
/// closures hold a `Weak` so the registry living inside `Control` does
/// not keep it alive in a reference cycle.
fn register_control_metrics(metrics: &MetricsRegistry, control: &Arc<Control>) {
    let c = Arc::downgrade(control);
    metrics.gauge_fn(
        "sling_server_open_connections",
        "client connections currently open",
        move || {
            c.upgrade()
                .map(|c| c.open_connections.load(Ordering::Relaxed) as f64)
                .unwrap_or(0.0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.gauge_fn(
        "sling_server_active_connections",
        "connections on worker ready queues (not idle)",
        move || {
            c.upgrade()
                .map(|c| {
                    c.workers
                        .iter()
                        .map(|w| w.active.load(Ordering::Relaxed))
                        .sum::<u64>() as f64
                })
                .unwrap_or(0.0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_server_rejected_connections_total",
        "connections refused with ERR busy by the connection cap",
        move || {
            c.upgrade()
                .map(|c| c.rejected_connections.load(Ordering::Relaxed))
                .unwrap_or(0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_accept_errors_total",
        "acceptor errors (transient and unexpected accept failures)",
        move || {
            c.upgrade()
                .map(|c| c.accept_errors.load(Ordering::Relaxed))
                .unwrap_or(0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_evloop_wakeups_total",
        "epoll_wait returns across workers (including idle ticks)",
        move || {
            c.upgrade()
                .map(|c| {
                    c.workers
                        .iter()
                        .map(|w| w.wakeups.load(Ordering::Relaxed))
                        .sum()
                })
                .unwrap_or(0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_evloop_turns_total",
        "readiness turns dispatched to connections across workers",
        move || {
            c.upgrade()
                .map(|c| {
                    c.workers
                        .iter()
                        .map(|w| w.turns.load(Ordering::Relaxed))
                        .sum()
                })
                .unwrap_or(0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_cache_hits_total",
        "shared result-cache hits",
        move || {
            c.upgrade()
                .and_then(|c| c.cache.as_ref().map(|cache| cache.stats().hits))
                .unwrap_or(0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_cache_misses_total",
        "shared result-cache misses",
        move || {
            c.upgrade()
                .and_then(|c| c.cache.as_ref().map(|cache| cache.stats().misses))
                .unwrap_or(0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_cache_evictions_total",
        "shared result-cache evictions",
        move || {
            c.upgrade()
                .and_then(|c| c.cache.as_ref().map(|cache| cache.stats().evictions))
                .unwrap_or(0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.gauge_fn(
        "sling_cache_entries",
        "entries resident in the shared result cache",
        move || {
            c.upgrade()
                .and_then(|c| c.cache.as_ref().map(|cache| cache.len() as f64))
                .unwrap_or(0.0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.gauge_fn(
        "sling_cache_capacity",
        "configured capacity of the shared result cache",
        move || {
            c.upgrade()
                .and_then(|c| c.cache.as_ref().map(|cache| cache.capacity() as f64))
                .unwrap_or(0.0)
        },
    );
    let c = Arc::downgrade(control);
    metrics.counter_fn(
        "sling_cache_admission_rejects_total",
        "result-cache inserts rejected by TinyLFU admission",
        move || {
            c.upgrade()
                .and_then(|c| c.cache.as_ref().map(|cache| cache.admission_rejects()))
                .unwrap_or(0)
        },
    );
}

/// Final accounting returned by [`ServerHandle::join`] /
/// [`ServerHandle::shutdown`].
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Queries served per worker (pair/source/top-k count 1, batches
    /// count their pair count).
    pub served_per_worker: Vec<u64>,
    /// Result-cache counters, when a cache was configured.
    pub cache: Option<CacheStats>,
    /// Server-side query-latency percentiles (merged across workers).
    pub latency: LatencyReport,
    /// Index generation being served at exit, swap count, and the
    /// last-swap timestamp.
    pub generation: GenerationInfo,
    /// Client connections still open at exit (0 after a full drain).
    pub open_connections: u64,
    /// Connections refused with `ERR busy` by
    /// [`ServerConfig::max_connections`].
    pub rejected_connections: u64,
    /// Per-worker event-loop wakeups (`epoll_wait` returns, including
    /// idle ticks).
    pub evloop_wakeups_per_worker: Vec<u64>,
    /// Per-worker readiness turns dispatched to connections.
    pub evloop_turns_per_worker: Vec<u64>,
}

impl ServerReport {
    /// Total queries served across all workers.
    pub fn total_served(&self) -> u64 {
        self.served_per_worker.iter().sum()
    }
}

/// Handle to a running server: its address, a shutdown lever, and the
/// worker/acceptor threads to join.
pub struct ServerHandle {
    addr: Option<SocketAddr>,
    control: Arc<Control>,
    threads: Vec<JoinHandle<()>>,
    /// Type-erased view of the reloadable slot's swap state (the slot
    /// itself is generic over the backend; the handle is not).
    generation_info: Arc<dyn Fn() -> GenerationInfo + Send + Sync>,
}

impl ServerHandle {
    /// Bound TCP address (`None` for Unix-socket servers) — what clients
    /// of a `127.0.0.1:0` test server connect to.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Swap-state snapshot of the serving generation (live; callable
    /// while the server runs).
    pub fn generation_info(&self) -> GenerationInfo {
        (self.generation_info)()
    }

    /// The server's metrics registry — render Prometheus text or JSON
    /// snapshots from another thread while the server runs (what the
    /// CLI's `--metrics-snapshot` exporter does).
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.control.metrics)
    }

    /// Block until the server exits (a client sends `SHUTDOWN`), then
    /// report final statistics.
    pub fn join(mut self) -> ServerReport {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        ServerReport {
            served_per_worker: self.control.served.iter().map(|c| c.get()).collect(),
            cache: self.control.cache.as_ref().map(|c| c.stats()),
            latency: self.control.latency_report(),
            generation: (self.generation_info)(),
            open_connections: self.control.open_connections.load(Ordering::Relaxed),
            rejected_connections: self.control.rejected_connections.load(Ordering::Relaxed),
            evloop_wakeups_per_worker: self
                .control
                .workers
                .iter()
                .map(|w| w.wakeups.load(Ordering::Relaxed))
                .collect(),
            evloop_turns_per_worker: self
                .control
                .workers
                .iter()
                .map(|w| w.turns.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Initiate shutdown from the owning process (equivalent to a client
    /// `SHUTDOWN`) and join.
    pub fn shutdown(self) -> ServerReport {
        self.control.initiate_shutdown();
        self.join()
    }
}

/// Start serving a pinned `engine` over `listener` (no hot reload; the
/// `RELOAD` verb reports `swapped=false`). See [`serve_reloadable`].
pub fn serve<S>(
    engine: Arc<SharedEngine<S>>,
    graph: Arc<DiGraph>,
    listener: Listener,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    S: HpStore + Send + Sync + 'static,
{
    serve_reloadable(
        Arc::new(ReloadableEngine::pinned(engine, graph)),
        listener,
        config,
    )
}

/// Start serving the generation held by `reloadable` over `listener`.
///
/// Spawns `config.workers` worker threads (thread-per-core by default),
/// each owning its query workspaces, plus one acceptor thread — and,
/// when the slot has a generation opener and
/// [`ServerConfig::watch_interval_ms`] is nonzero, a watcher thread that
/// periodically checks for a newer promoted generation and hot-swaps it
/// under live traffic. The engine and graph are shared immutably; the
/// only shared mutable state is the connection queue, the sharded result
/// cache, and the swap slot. Returns immediately with a
/// [`ServerHandle`].
pub fn serve_reloadable<S>(
    reloadable: Arc<ReloadableEngine<S>>,
    listener: Listener,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    S: HpStore + Send + Sync + 'static,
{
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.workers
    };
    let cache = (config.cache_capacity > 0).then(|| {
        let shards = if config.cache_shards == 0 {
            ShardedResultCache::DEFAULT_SHARDS
        } else {
            config.cache_shards
        };
        ShardedResultCache::with_admission(config.cache_capacity, shards, config.cache_admission)
    });
    let worker_shared = (0..workers)
        .map(|_| {
            Ok(WorkerShared {
                poller: Poller::new()?,
                inbox: Mutex::new(Vec::new()),
                active: AtomicU64::new(0),
                wakeups: AtomicU64::new(0),
                turns: AtomicU64::new(0),
            })
        })
        .collect::<io::Result<Box<[WorkerShared]>>>()?;
    let metrics = Arc::new(MetricsRegistry::new());
    register_process_metrics(&metrics);
    let slowlog = Arc::new(SlowQueryLog::new(
        Duration::from_micros(config.slow_query_us),
        SLOW_LOG_CAPACITY,
    ));
    {
        let sl = Arc::clone(&slowlog);
        metrics.counter_fn(
            "sling_slow_queries_total",
            "queries at or above the slow-query threshold",
            move || sl.admitted(),
        );
    }
    let served = (0..workers)
        .map(|_| {
            metrics.counter(
                "sling_server_requests_total",
                "queries served (batch pairs counted individually)",
            )
        })
        .collect();
    let latency = (0..workers)
        .map(|_| {
            metrics.histogram(
                "sling_server_request_ns",
                "server-side request handling latency",
            )
        })
        .collect();
    let stages = (0..workers)
        .map(|_| StageShards {
            entry_fetch: metrics.histogram(
                "sling_query_stage_entry_fetch_ns",
                "per-query backend entry-run resolution time",
            ),
            restore: metrics.histogram(
                "sling_query_stage_restore_ns",
                "per-query restore (space-reduction recomputation) time",
            ),
            merge: metrics.histogram(
                "sling_query_stage_merge_ns",
                "per-query intersect-merge time",
            ),
            propagate: metrics.histogram(
                "sling_query_stage_propagate_ns",
                "per-query frontier propagation time",
            ),
        })
        .collect();
    let requests_shed = metrics.counter(
        "sling_requests_shed_total",
        "query verbs answered ERR overloaded by the shed triggers",
    );
    let requests_deadline = metrics.counter(
        "sling_requests_deadline_total",
        "query verbs answered ERR deadline past their budget",
    );
    let recorder = config.record_path.as_ref().map(|_| {
        Arc::new(TraceRecorder::new(
            unix_ms_now() * 1000,
            config.record_sample,
        ))
    });
    let control = Arc::new(Control {
        shutdown: AtomicBool::new(false),
        metrics: Arc::clone(&metrics),
        slowlog,
        served,
        latency,
        stages,
        cache,
        max_connections: config.max_connections,
        open_connections: AtomicU64::new(0),
        rejected_connections: AtomicU64::new(0),
        deadline: Duration::from_micros(config.deadline_us),
        shed_queue_depth: config.shed_queue_depth,
        shed_pending_bytes: config.shed_pending_bytes,
        rollback_error_threshold: config.rollback_error_threshold,
        requests_shed,
        requests_deadline,
        accept_errors: AtomicU64::new(0),
        recorder: recorder.clone(),
        workers: worker_shared,
    });
    register_control_metrics(&metrics, &control);
    {
        let r = Arc::downgrade(&reloadable);
        metrics.gauge_fn(
            "sling_index_epoch",
            "swap epoch of the serving generation",
            move || r.upgrade().map(|r| r.epoch() as f64).unwrap_or(0.0),
        );
        let r = Arc::downgrade(&reloadable);
        metrics.counter_fn(
            "sling_index_swaps_total",
            "completed generation swaps",
            move || {
                r.upgrade()
                    .map(|r| r.swaps.load(Ordering::Relaxed))
                    .unwrap_or(0)
            },
        );
        let r = Arc::downgrade(&reloadable);
        metrics.counter_fn(
            "sling_index_reload_failures_total",
            "reload attempts whose opener failed",
            move || {
                r.upgrade()
                    .map(|r| r.reload_failures.load(Ordering::Relaxed))
                    .unwrap_or(0)
            },
        );
        let r = Arc::downgrade(&reloadable);
        metrics.counter_fn(
            "sling_rollbacks_total",
            "corrupt-generation rollbacks completed",
            move || {
                r.upgrade()
                    .map(|r| r.rollbacks.load(Ordering::Relaxed))
                    .unwrap_or(0)
            },
        );
    }
    let addr = listener.local_addr();
    let mut threads = Vec::with_capacity(workers + 2);
    for id in 0..workers {
        let control = Arc::clone(&control);
        let reloadable = Arc::clone(&reloadable);
        threads.push(
            std::thread::Builder::new()
                .name(format!("sling-worker-{id}"))
                .spawn(move || worker_loop(&reloadable, &control, id))?,
        );
    }
    let acceptor_control = Arc::clone(&control);
    threads.push(
        std::thread::Builder::new()
            .name("sling-acceptor".to_string())
            .spawn(move || accept_loop(listener, &acceptor_control))?,
    );
    if let (Some(rec), Some(path)) = (recorder, config.record_path.clone()) {
        let c = Arc::clone(&control);
        threads.push(
            std::thread::Builder::new()
                .name("sling-recorder".to_string())
                .spawn(move || {
                    writer_loop(&rec, &path, || c.shutdown.load(Ordering::SeqCst));
                })?,
        );
    }
    if config.watch_interval_ms > 0 && reloadable.opener.is_some() {
        let control = Arc::clone(&control);
        let watched = Arc::clone(&reloadable);
        let interval = Duration::from_millis(config.watch_interval_ms);
        threads.push(
            std::thread::Builder::new()
                .name("sling-watcher".to_string())
                .spawn(move || watch_loop(&watched, &control, interval))?,
        );
    }
    let info_source = Arc::clone(&reloadable);
    Ok(ServerHandle {
        addr,
        control,
        threads,
        generation_info: Arc::new(move || info_source.info()),
    })
}

/// Periodically re-check the promoted generation and hot-swap on change.
/// Sleeps in `SHUTDOWN_POLL` slices so `SHUTDOWN` is observed promptly; a
/// failing reload (a promotion racing its own publish, transient IO) is
/// retried at the next tick rather than taking the server down — the
/// old generation keeps serving, which is the whole point.
fn watch_loop<S: HpStore>(reloadable: &ReloadableEngine<S>, control: &Control, interval: Duration) {
    let mut since_check = Duration::ZERO;
    let mut failing = false;
    loop {
        if control.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let slice = SHUTDOWN_POLL.min(interval);
        std::thread::sleep(slice);
        since_check += slice;
        if since_check >= interval {
            since_check = Duration::ZERO;
            match reloadable.try_reload(control.cache.as_ref()) {
                Ok(_) => failing = false,
                Err(e) => {
                    // One stderr line per failure streak (not per tick):
                    // a corrupt promotion under --watch must be visible
                    // somewhere, and STATS carries the running count.
                    if !failing {
                        eprintln!("sling-server: generation reload failed: {e}");
                    }
                    failing = true;
                }
            }
        }
    }
}

/// Accept connections until shutdown; non-blocking with a short poll so
/// the flag is observed promptly, since `accept(2)` has no portable
/// cancellation.
///
/// Accepted sockets are switched to nonblocking mode and distributed
/// round-robin across the worker inboxes; each hand-off is followed by a
/// `notify` so the target worker adopts the connection on its next
/// wakeup. Past [`ServerConfig::max_connections`] the acceptor answers
/// `ERR busy` and closes instead (the acceptor is the only incrementer
/// of the open-connection gauge, so the cap cannot be raced past).
///
/// Error policy: every accept failure — transient per-connection skips
/// (aborted handshakes, resets) and unexpected errors alike — counts
/// into `sling_accept_errors_total`, so a reset storm or fd exhaustion
/// is visible on a dashboard instead of silently eaten. Unexpected
/// errors (e.g. `EMFILE`) are retried under a jittered exponential
/// backoff — doubling from [`ACCEPT_POLL`] up to ~128× with a
/// deterministic xorshift jitter, so a fleet of servers hitting the
/// same fault does not retry in lockstep. If the listener stays broken
/// for [`MAX_ACCEPT_ERRORS`] consecutive attempts, the acceptor
/// initiates a full shutdown — a server nobody can connect to must
/// terminate, not linger as a zombie that `SHUTDOWN` can no longer
/// reach.
fn accept_loop(listener: Listener, control: &Control) {
    let _ = match &listener {
        Listener::Tcp(l) => l.set_nonblocking(true),
        Listener::Unix(l, _) => l.set_nonblocking(true),
    };
    let mut consecutive_errors = 0u32;
    let mut next_worker = 0usize;
    // Deterministic jitter stream for the error backoff (seeded from
    // the listener fd so two servers in one process still diverge).
    let mut jitter_rng: u64 = 0x9e37_79b9 ^ {
        let fd = match &listener {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        };
        fd as u64
    };
    loop {
        if control.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let accepted: io::Result<Stream> = match faults::check_io(faults::point::SERVER_ACCEPT) {
            // An injected accept fault leaves the pending connection in
            // the backlog — a later retry accepts it, like a real
            // transient failure.
            Err(e) => Err(e),
            Ok(_) => match &listener {
                Listener::Tcp(l) => l.accept().map(|(stream, _)| {
                    let _ = stream.set_nodelay(true);
                    Stream::Tcp(stream)
                }),
                Listener::Unix(l, _) => l.accept().map(|(stream, _)| Stream::Unix(stream)),
            },
        };
        match accepted {
            Ok(mut stream) => {
                consecutive_errors = 0;
                if control.max_connections > 0
                    && control.open_connections.load(Ordering::Relaxed)
                        >= control.max_connections as u64
                {
                    // Over the cap: say why, then close. The socket is
                    // still blocking and its send buffer empty, so this
                    // cannot stall the acceptor.
                    control.rejected_connections.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.write_all(b"ERR busy\n");
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                control.open_connections.fetch_add(1, Ordering::Relaxed);
                let shared = &control.workers[next_worker];
                next_worker = (next_worker + 1) % control.workers.len();
                shared
                    .inbox
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(stream);
                let _ = shared.poller.notify();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                consecutive_errors = 0;
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                ) =>
            {
                // Transient per-connection failure: skip the connection
                // but make the event observable.
                control.accept_errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                control.accept_errors.fetch_add(1, Ordering::Relaxed);
                consecutive_errors += 1;
                if consecutive_errors >= MAX_ACCEPT_ERRORS {
                    control.initiate_shutdown();
                    break;
                }
                std::thread::sleep(accept_backoff(consecutive_errors, &mut jitter_rng));
            }
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

/// Jittered exponential backoff for acceptor errors: [`ACCEPT_POLL`]
/// doubled per consecutive error (capped at 128×, ~256ms), multiplied
/// by a uniform factor in [0.5, 1.5) from the xorshift stream.
fn accept_backoff(consecutive_errors: u32, rng: &mut u64) -> Duration {
    let mut x = *rng | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    let scale = 1u32 << consecutive_errors.min(7);
    let base_us = ACCEPT_POLL.as_micros() as u64 * scale as u64;
    // Uniform jitter in [0.5, 1.5): half to one-and-a-half times base.
    let jittered = base_us / 2 + (x % base_us.max(1));
    Duration::from_micros(jittered)
}

/// Per-worker reusable buffers: workspaces warm up once, then the hot
/// path is allocation-free for pair queries. The worker also caches the
/// generation `Arc` it is serving, refreshed with one atomic epoch
/// compare per request ([`WorkerCtx::generation`]).
struct WorkerCtx<S: HpStore> {
    ws: QueryWorkspace,
    ss: SingleSourceWorkspace,
    scores: Vec<f64>,
    batch: Vec<f64>,
    response: String,
    /// The generation currently being served, held only while the
    /// worker is actively serving (`None` while parked on the queue, so
    /// an idle worker never pins a retired generation's engine in
    /// memory across a swap).
    gen: Option<Arc<EngineGeneration<S>>>,
}

impl<S: HpStore> WorkerCtx<S> {
    /// The serving generation, refetched from the swap slot only when
    /// the epoch moved — one `Acquire` load on the hot path. In-flight
    /// requests keep whatever generation they started with; this is
    /// where the *next* request picks up a promoted one.
    fn generation(&mut self, reloadable: &ReloadableEngine<S>) -> Arc<EngineGeneration<S>> {
        let epoch = reloadable.epoch();
        match &self.gen {
            Some(gen) if gen.epoch == epoch => Arc::clone(gen),
            _ => {
                let gen = reloadable.current();
                self.gen = Some(Arc::clone(&gen));
                gen
            }
        }
    }
}

/// The readiness loop: one epoll instance, a slab of connections, and a
/// round-robin ready queue.
///
/// Each pass waits for events (blocking up to [`SHUTDOWN_POLL`] when
/// idle, non-blocking while the ready queue holds work), adopts newly
/// accepted connections from the inbox, marks event keys ready, and
/// dispatches one [`serve_turn`] to every ready connection. A
/// connection with more framed requests after its turn goes to the back
/// of the queue ([`YIELD_AFTER`] fairness); one that consumed its
/// readiness re-arms its oneshot epoll interest and parks costing
/// nothing until the next event.
fn worker_loop<S: HpStore>(reloadable: &ReloadableEngine<S>, control: &Control, worker: usize) {
    let shared = &control.workers[worker];
    let mut ctx = WorkerCtx {
        ws: QueryWorkspace::new(),
        ss: SingleSourceWorkspace::new(),
        scores: Vec::new(),
        batch: Vec::new(),
        response: String::new(),
        gen: None,
    };
    // Serving always traces: the stage histograms and slow-query log
    // need per-request breakdowns, and the cost is a handful of clock
    // reads per query.
    ctx.ws.set_trace_enabled(true);
    ctx.ss.set_trace_enabled(true);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut ready: VecDeque<usize> = VecDeque::new();
    let mut events = Events::new();
    loop {
        if control.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if ready.is_empty() {
            // Going idle: release the generation (a parked worker must
            // not keep a retired engine — potentially the whole previous
            // index — alive across a swap) and hub-sized query scratch.
            // Capacity checks only, so idle ticks stay cheap.
            ctx.gen = None;
            ctx.ws.trim_excess();
            ctx.ss.trim_excess();
        }
        let timeout = if ready.is_empty() {
            SHUTDOWN_POLL
        } else {
            Duration::ZERO
        };
        if shared.poller.wait(&mut events, Some(timeout)).is_err() {
            // epoll_wait failing (beyond EINTR, which the stub absorbs)
            // means a programming error; pace the retry so a persistent
            // failure cannot busy-spin the core.
            std::thread::sleep(ACCEPT_POLL);
            continue;
        }
        shared.wakeups.fetch_add(1, Ordering::Relaxed);
        adopt_inbox(control, shared, &mut conns, &mut free);
        for ev in events.iter() {
            if let Some(Some(conn)) = conns.get_mut(ev.key) {
                if !conn.in_ready {
                    conn.in_ready = true;
                    ready.push_back(ev.key);
                }
            }
        }
        shared.active.store(ready.len() as u64, Ordering::Relaxed);
        // One dispatch round over the queue as it stands now; re-queued
        // connections run again only after the next event poll, keeping
        // accept hand-offs and fresh events interleaved with busy
        // pipeliners.
        for _ in 0..ready.len() {
            let Some(key) = ready.pop_front() else {
                break;
            };
            let Some(mut conn) = conns[key].take() else {
                continue;
            };
            conn.in_ready = false;
            shared.turns.fetch_add(1, Ordering::Relaxed);
            match serve_turn(reloadable, control, worker, &mut conn, &mut ctx) {
                Turn::Close => {
                    close_conn(control, shared, conn);
                    free.push(key);
                }
                Turn::MoreWork => {
                    conn.in_ready = true;
                    conns[key] = Some(conn);
                    ready.push_back(key);
                }
                Turn::Wait => {
                    let interest = conn.interest(key);
                    if shared.poller.modify(&conn.stream, interest).is_err() {
                        close_conn(control, shared, conn);
                        free.push(key);
                    } else {
                        conns[key] = Some(conn);
                    }
                }
            }
            if control.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        shared.active.store(ready.len() as u64, Ordering::Relaxed);
    }
    drain_worker(reloadable, control, shared, worker, &mut conns, &mut ctx);
    shared.active.store(0, Ordering::Relaxed);
}

/// Adopt connections the acceptor handed over: register each with this
/// worker's poller under a slab key, armed for read readiness.
fn adopt_inbox(
    control: &Control,
    shared: &WorkerShared,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
) {
    for stream in std::mem::take(&mut *shared.inbox.lock().unwrap_or_else(|e| e.into_inner())) {
        let key = free.pop().unwrap_or_else(|| {
            conns.push(None);
            conns.len() - 1
        });
        let conn = Conn::new(stream);
        match shared.poller.add(&conn.stream, Event::readable(key)) {
            Ok(()) => conns[key] = Some(conn),
            Err(_) => {
                // Registration failed (fd pressure): drop the socket.
                free.push(key);
                control.open_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Deregister (before the fd closes, so a recycled fd cannot deliver a
/// stale key), account, and drop one connection.
fn close_conn(control: &Control, shared: &WorkerShared, conn: Conn) {
    let _ = shared.poller.delete(&conn.stream);
    control.open_connections.fetch_sub(1, Ordering::Relaxed);
}

/// Shutdown drain: keep serving connections that still owe work —
/// buffered requests or unflushed responses — and close the rest, for at
/// most [`DRAIN_GRACE`]. Mirrors the old blocking loop's semantics:
/// in-flight requests are answered, idle connections are dropped.
fn drain_worker<S: HpStore>(
    reloadable: &ReloadableEngine<S>,
    control: &Control,
    shared: &WorkerShared,
    worker: usize,
    conns: &mut [Option<Conn>],
    ctx: &mut WorkerCtx<S>,
) {
    let deadline = Instant::now() + DRAIN_GRACE;
    let mut events = Events::new();
    loop {
        // Hand-offs that raced the shutdown flag: never served, just
        // un-account and drop them.
        for stream in std::mem::take(&mut *shared.inbox.lock().unwrap_or_else(|e| e.into_inner())) {
            drop(stream);
            control.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
        let mut live = 0usize;
        for slot in conns.iter_mut() {
            let Some(mut conn) = slot.take() else {
                continue;
            };
            match serve_turn(reloadable, control, worker, &mut conn, ctx) {
                Turn::Close => close_conn(control, shared, conn),
                Turn::MoreWork => {
                    live += 1;
                    *slot = Some(conn);
                }
                Turn::Wait => {
                    if conn.pending_out() == 0 {
                        // Nothing owed: an idle (or mid-line) connection
                        // is dropped during drain.
                        close_conn(control, shared, conn);
                    } else {
                        live += 1;
                        *slot = Some(conn);
                    }
                }
            }
        }
        if live == 0 || Instant::now() >= deadline {
            break;
        }
        let _ = shared.poller.wait(&mut events, Some(DRAIN_POLL));
    }
    for slot in conns.iter_mut() {
        if let Some(conn) = slot.take() {
            close_conn(control, shared, conn);
        }
    }
    for stream in std::mem::take(&mut *shared.inbox.lock().unwrap_or_else(|e| e.into_inner())) {
        drop(stream);
        control.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What the request dispatcher asks the connection loop to do after a
/// response.
enum Action {
    Continue,
    Close,
    Shutdown,
}

/// Outcome of one readiness turn on a connection.
enum Turn {
    /// Close and drop the connection (EOF drained, QUIT/SHUTDOWN
    /// flushed, or broken socket).
    Close,
    /// More complete requests are already framed: go to the back of the
    /// ready queue, no epoll round-trip needed.
    MoreWork,
    /// Readiness consumed: re-arm interest and park until the next
    /// event.
    Wait,
}

/// Position of the first newline, scanning only the unparsed suffix.
fn find_newline(buf: &[u8]) -> Option<usize> {
    buf.iter().position(|&b| b == b'\n')
}

/// Write as much pending response data as the socket accepts; only a
/// genuinely broken socket is an error (`WouldBlock` leaves the rest
/// for the next write-readiness event).
fn flush_pending(conn: &mut Conn) -> io::Result<()> {
    // Fault point: one check per flush pass that has bytes to write.
    // `Error` breaks the socket (connection closes, client reconnects);
    // `Delay` models a write stall; `ShortRead` caps this pass to one
    // byte, exercising the partial-write resume path.
    let write_fault = if conn.pending_out() == 0 {
        None
    } else {
        match faults::check(faults::point::SERVER_WRITE) {
            Some(FaultAction::Error) => {
                return Err(faults::injected_error(faults::point::SERVER_WRITE))
            }
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                None
            }
            other => other,
        }
    };
    while conn.outpos < conn.outbuf.len() {
        let limit = if write_fault == Some(FaultAction::ShortRead) {
            (conn.outpos + 1).min(conn.outbuf.len())
        } else {
            conn.outbuf.len()
        };
        match conn.stream.write(&conn.outbuf[conn.outpos..limit]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.outpos += n;
                if write_fault == Some(FaultAction::ShortRead) {
                    break; // leave the rest for the next readiness turn
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if conn.outpos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
        // A burst (large BATCH fan-out, backpressured peer) must not pin
        // its high-water allocation on a long-lived connection forever.
        if conn.outbuf.capacity() > 2 * OUT_HIGH_WATER {
            conn.outbuf.shrink_to(READ_CHUNK);
        }
    } else if conn.outpos >= READ_CHUNK {
        // Partially flushed: drop the sent prefix so repeated partial
        // writes cannot creep the buffer.
        conn.outbuf.drain(..conn.outpos);
        conn.outpos = 0;
    }
    Ok(())
}

/// One readiness turn on one connection: flush what the last turn left
/// behind, drain the socket into the frame buffer, serve every complete
/// request line framed so far (up to [`YIELD_AFTER`]), and flush all of
/// those responses with a single coalesced `write`.
///
/// Framing is byte-exact regardless of fragmentation: a request
/// delivered byte-at-a-time accumulates across turns and parses
/// identically to one delivered whole. An over-long line (>
/// [`MAX_LINE_BYTES`]) answers `ERR request line too long` once and
/// switches to discard mode until its terminating newline, so the
/// *next* request on the connection parses cleanly — one bad line never
/// desyncs the stream or tears down the session.
fn serve_turn<S: HpStore>(
    reloadable: &ReloadableEngine<S>,
    control: &Control,
    worker: usize,
    conn: &mut Conn,
    ctx: &mut WorkerCtx<S>,
) -> Turn {
    if flush_pending(conn).is_err() {
        return Turn::Close;
    }
    // Read first — unless backpressured: a peer that owes us a drain
    // gets no more requests buffered on its behalf.
    if conn.pending_out() < OUT_HIGH_WATER && !conn.eof {
        // Fault point: one check per turn. `Error` breaks the socket
        // (the client sees a reset and reconnects), `Delay` models a
        // stalled read, `ShortRead` truncates this turn's first read to
        // one byte (framing must resume byte-exactly).
        let read_fault = match faults::check(faults::point::SERVER_READ) {
            Some(FaultAction::Error) => return Turn::Close,
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                None
            }
            other => other,
        };
        let mut turn_read = 0usize;
        let mut chunk = [0u8; READ_CHUNK];
        while turn_read < TURN_READ_CAP {
            let window = if read_fault == Some(FaultAction::ShortRead) && turn_read == 0 {
                1
            } else {
                READ_CHUNK
            };
            match conn.stream.read(&mut chunk[..window]) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.read_at.is_none() {
                        conn.read_at = Some(Instant::now());
                    }
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    turn_read += n;
                    if n < window {
                        break; // drained the socket
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Turn::Close,
            }
        }
    }
    // Serve the complete lines framed so far.
    let mut consumed = 0usize;
    let mut served_this_turn = 0u32;
    let mut shutdown_now = false;
    loop {
        if conn.discarding {
            // Skip the tail of an over-long line; its error response was
            // queued when discard mode started.
            match find_newline(&conn.inbuf[consumed..]) {
                Some(nl) => {
                    consumed += nl + 1;
                    conn.discarding = false;
                }
                None => {
                    consumed = conn.inbuf.len();
                    break;
                }
            }
            continue;
        }
        if served_this_turn >= YIELD_AFTER
            || conn.close_after_flush
            || conn.pending_out() >= OUT_HIGH_WATER
        {
            break;
        }
        let rest_len = conn.inbuf.len() - consumed;
        let Some(nl) = find_newline(&conn.inbuf[consumed..]) else {
            if rest_len > MAX_LINE_BYTES {
                // The line already exceeds the cap with no newline in
                // sight: answer once, then discard until it ends.
                conn.outbuf
                    .extend_from_slice(b"ERR request line too long\n");
                conn.discarding = true;
                consumed = conn.inbuf.len();
            }
            break;
        };
        ctx.response.clear();
        let action = if nl > MAX_LINE_BYTES {
            ctx.response.push_str("ERR request line too long");
            Action::Continue
        } else {
            let line = &conn.inbuf[consumed..consumed + nl];
            match std::str::from_utf8(line) {
                Err(_) => {
                    ctx.response.push_str("ERR request is not valid UTF-8");
                    Action::Continue
                }
                Ok(text) => match Request::parse(text.trim_end_matches(['\n', '\r'])) {
                    Err(msg) => {
                        let _ = write!(ctx.response, "ERR {msg}");
                        Action::Continue
                    }
                    Ok(req) => match admission_error(control, worker, conn, &req) {
                        Some(msg) => {
                            record_admission_outcome(reloadable, control, &req, msg);
                            ctx.response.push_str(msg);
                            Action::Continue
                        }
                        None => handle_request(reloadable, control, worker, req, ctx),
                    },
                },
            }
        };
        consumed += nl + 1;
        served_this_turn += 1;
        // Coalesce: every response of this turn accumulates here and is
        // flushed below with one write.
        conn.outbuf.extend_from_slice(ctx.response.as_bytes());
        conn.outbuf.push(b'\n');
        match action {
            Action::Continue => {}
            Action::Close => conn.close_after_flush = true,
            Action::Shutdown => {
                conn.close_after_flush = true;
                shutdown_now = true;
            }
        }
    }
    if consumed > 0 {
        conn.inbuf.drain(..consumed);
    }
    if conn.inbuf.is_empty() {
        // Buffer fully consumed: the next bytes to arrive start a fresh
        // deadline budget.
        conn.read_at = None;
        if conn.inbuf.capacity() > TURN_READ_CAP {
            conn.inbuf.shrink_to(READ_CHUNK);
        }
    }
    if shutdown_now {
        control.initiate_shutdown();
    }
    if flush_pending(conn).is_err() {
        return Turn::Close;
    }
    let pending = conn.pending_out();
    if pending == 0 && (conn.close_after_flush || conn.eof) {
        return Turn::Close;
    }
    let has_line = !conn.discarding && find_newline(&conn.inbuf).is_some();
    if has_line && !conn.close_after_flush && pending < OUT_HIGH_WATER {
        return Turn::MoreWork;
    }
    Turn::Wait
}

/// Canonicalize and score one symmetric pair, through the shared cache
/// when one is configured (the cached path prefetches internally, on
/// misses only — a hit never touches the store, so advising it would
/// waste syscalls on the hottest path). Both the `PAIR` and `BATCH`
/// handlers route here so the two cannot diverge. Cache inserts are
/// tagged with the generation's epoch (captured before computing), so a
/// swap landing mid-query can never get a retired-generation score
/// admitted as fresh.
fn score_pair<S: HpStore>(
    gen: &EngineGeneration<S>,
    control: &Control,
    ws: &mut QueryWorkspace,
    u: u32,
    v: u32,
) -> Result<f64, SlingError> {
    let (a, b) = (NodeId(u.min(v)), NodeId(u.max(v)));
    match &control.cache {
        Some(cache) => gen
            .engine
            .single_pair_cached_tagged(&gen.graph, ws, cache, a, b, gen.epoch),
        None => {
            gen.engine.store().prefetch(a);
            if a != b {
                gen.engine.store().prefetch(b);
            }
            gen.engine.single_pair_with(&gen.graph, ws, a, b)
        }
    }
}

/// `true` for the verbs the deadline/shed admission gate applies to.
/// Admin verbs (PING/STATS/METRICS/SLOWLOG/RELOAD/QUIT/SHUTDOWN) always
/// pass: an operator must be able to inspect — and stop — an overloaded
/// server.
fn is_query_verb(req: &Request) -> bool {
    matches!(
        req,
        Request::Pair { .. }
            | Request::Source { .. }
            | Request::TopK { .. }
            | Request::Batch { .. }
    )
}

/// Fast-fail admission control, checked before a query verb touches the
/// engine. Shedding (`ERR overloaded`) fires when the worker's ready
/// queue or this connection's pending bytes cross their high-water
/// marks; the deadline (`ERR deadline`) fires when the request's bytes
/// have already waited longer than the budget. Both answers are
/// retryable by contract (see the crate-level error taxonomy) — the
/// client backs off and re-sends, which is cheaper for everyone than
/// queue collapse.
fn admission_error(
    control: &Control,
    worker: usize,
    conn: &Conn,
    req: &Request,
) -> Option<&'static str> {
    if !is_query_verb(req) {
        return None;
    }
    let depth = control.workers[worker].active.load(Ordering::Relaxed) as usize;
    let pending = conn.pending_out() + conn.inbuf.len();
    if (control.shed_queue_depth > 0 && depth >= control.shed_queue_depth)
        || (control.shed_pending_bytes > 0 && pending >= control.shed_pending_bytes)
    {
        control.requests_shed.inc();
        return Some("ERR overloaded");
    }
    if !control.deadline.is_zero() {
        if let Some(at) = conn.read_at {
            if at.elapsed() > control.deadline {
                control.requests_deadline.inc();
                return Some("ERR deadline");
            }
        }
    }
    None
}

/// The trace verb for the `&'static str` labels `observe_query` and the
/// slow-query log already carry.
fn trace_verb(verb: &'static str) -> TraceVerb {
    match verb {
        "SOURCE" => TraceVerb::Source,
        "TOPK" => TraceVerb::TopK,
        "BATCH" => TraceVerb::Batch,
        _ => TraceVerb::Pair,
    }
}

/// Record requests rejected by the admission gate into the traffic
/// trace (a batch records one line per pair, mirroring served batches),
/// so a capture shows *offered* load, not just served load — the whole
/// point of replaying an overload incident.
fn record_admission_outcome<S: HpStore>(
    reloadable: &ReloadableEngine<S>,
    control: &Control,
    req: &Request,
    answer: &str,
) {
    let Some(rec) = &control.recorder else { return };
    let outcome = if answer == "ERR deadline" {
        TraceOutcome::Deadline
    } else {
        TraceOutcome::Shed
    };
    let epoch = reloadable.epoch();
    match req {
        Request::Pair { u, v } => rec.push(
            TraceVerb::Pair,
            TraceKey::Pair(*u, *v),
            outcome,
            Duration::ZERO,
            epoch,
        ),
        Request::Source { u } => rec.push(
            TraceVerb::Source,
            TraceKey::Node(*u),
            outcome,
            Duration::ZERO,
            epoch,
        ),
        Request::TopK { u, k } => rec.push(
            TraceVerb::TopK,
            TraceKey::NodeK(*u, (*k).min(u32::MAX as usize) as u32),
            outcome,
            Duration::ZERO,
            epoch,
        ),
        Request::Batch { pairs } => {
            for &(u, v) in pairs {
                rec.push(
                    TraceVerb::Batch,
                    TraceKey::Pair(u, v),
                    outcome,
                    Duration::ZERO,
                    epoch,
                );
            }
        }
        _ => {}
    }
}

/// Answer a failed query and charge storage-layer errors
/// (`CorruptIndex`/IO — the signatures of an index rotting *after*
/// promotion) to the generation that produced them; crossing the
/// configured threshold quarantines the generation and rolls back (see
/// [`ReloadableEngine::note_runtime_error`]). The failure is also
/// recorded into the traffic trace with outcome `err`.
#[allow(clippy::too_many_arguments)]
fn write_query_error<S: HpStore>(
    reloadable: &ReloadableEngine<S>,
    control: &Control,
    gen: &EngineGeneration<S>,
    out: &mut String,
    err: SlingError,
    verb: &'static str,
    tkey: TraceKey,
    elapsed: Duration,
) {
    if matches!(err, SlingError::CorruptIndex(_) | SlingError::Io(_)) {
        reloadable.note_runtime_error(
            gen,
            control.rollback_error_threshold,
            control.cache.as_ref(),
        );
    }
    if let Some(rec) = &control.recorder {
        rec.push(
            trace_verb(verb),
            tkey,
            TraceOutcome::Err,
            elapsed,
            gen.epoch,
        );
    }
    let _ = write!(out, "ERR {err}");
}

/// Record one served query everywhere it is observed: the merged
/// latency histogram, the per-stage kernel histograms (zero stages are
/// skipped, so each stage family's `_count` counts the queries that
/// actually exercised it), the traffic-trace recorder when one is
/// running, and — at or above the threshold — the slow-query log. The
/// slowlog key is built lazily so the fast path never allocates.
fn observe_query<S: HpStore>(
    control: &Control,
    worker: usize,
    gen: &EngineGeneration<S>,
    verb: &'static str,
    tkey: TraceKey,
    elapsed: Duration,
    stages: StageNanos,
    key: impl FnOnce() -> String,
) {
    if let Some(rec) = &control.recorder {
        rec.push(trace_verb(verb), tkey, TraceOutcome::Ok, elapsed, gen.epoch);
    }
    control.latency[worker].record(elapsed);
    let shard = &control.stages[worker];
    for (hist, ns) in [
        (&shard.entry_fetch, stages.entry_fetch),
        (&shard.restore, stages.restore),
        (&shard.merge, stages.merge),
        (&shard.propagate, stages.propagate),
    ] {
        if ns > 0 {
            hist.record_ns(ns);
        }
    }
    let threshold = control.slowlog.threshold();
    if !threshold.is_zero() && elapsed >= threshold {
        control.slowlog.record(SlowQueryRecord {
            verb,
            key: key(),
            generation: gen.name.clone(),
            epoch: gen.epoch,
            total: elapsed,
            stages,
        });
    }
}

/// Frame a multi-line payload for the one-line protocol: `OK <bytes>`
/// followed by exactly that many payload bytes. The connection loop
/// appends the response's final `\n`, so the payload's trailing newline
/// is emitted by it — `<bytes>` always counts a newline-terminated
/// payload.
fn write_framed(out: &mut String, payload: &str) {
    let body = payload.strip_suffix('\n').unwrap_or(payload);
    let _ = write!(out, "OK {}", body.len() + 1);
    out.push('\n');
    out.push_str(body);
}

fn handle_request<S: HpStore>(
    reloadable: &ReloadableEngine<S>,
    control: &Control,
    worker: usize,
    req: Request,
    ctx: &mut WorkerCtx<S>,
) -> Action {
    // Refresh the cached generation if a swap landed (one atomic
    // compare); the Arc clone keeps this request on one consistent
    // generation even if another swap lands mid-request.
    let gen = ctx.generation(reloadable);
    let out = &mut ctx.response;
    match req {
        Request::Ping => out.push_str("OK pong"),
        Request::Quit => {
            out.push_str("OK bye");
            return Action::Close;
        }
        Request::Shutdown => {
            out.push_str("OK shutting-down");
            return Action::Shutdown;
        }
        Request::Reload { force } => {
            match reloadable.try_reload_with(control.cache.as_ref(), force) {
                Ok(swapped) => {
                    let info = reloadable.info();
                    let _ = write!(
                        out,
                        "OK generation={} epoch={} swapped={swapped}",
                        info.generation, info.epoch
                    );
                }
                Err(e) => {
                    let _ = write!(out, "ERR reload failed: {e}");
                }
            }
        }
        Request::Stats => {
            let _ = write!(
                out,
                "OK workers={} served={}",
                control.served.len(),
                control.total_served()
            );
            let info = reloadable.info();
            let _ = write!(
                out,
                " index_generation={} index_epoch={} swaps={} reload_failures={} \
                 last_swap_unix_ms={} rollbacks={} quarantined={} runtime_errors={}",
                info.generation,
                info.epoch,
                info.swaps,
                info.reload_failures,
                info.last_swap_unix_ms,
                info.rollbacks,
                info.quarantined,
                info.runtime_errors
            );
            let _ = write!(
                out,
                " shed={} deadline_exceeded={}",
                control.requests_shed.get(),
                control.requests_deadline.get()
            );
            match &control.recorder {
                None => out.push_str(" trace=off"),
                Some(rec) => {
                    let (records, dropped, bytes) = rec.counters();
                    let _ = write!(
                        out,
                        " trace=on trace_records={records} trace_dropped={dropped} \
                         trace_bytes={bytes}"
                    );
                }
            }
            let lat = control.latency_report();
            let _ = write!(
                out,
                " latency_count={} latency_p50_us={:.1} latency_p99_us={:.1} \
                 latency_p999_us={:.1}",
                lat.count, lat.p50_us, lat.p99_us, lat.p999_us
            );
            out.push_str(" per_worker=");
            for (i, c) in control.served.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", c.get());
            }
            let open = control.open_connections.load(Ordering::Relaxed);
            let active: u64 = control
                .workers
                .iter()
                .map(|w| w.active.load(Ordering::Relaxed))
                .sum();
            let _ = write!(
                out,
                " open_connections={} idle_connections={} rejected_connections={}",
                open,
                open.saturating_sub(active),
                control.rejected_connections.load(Ordering::Relaxed)
            );
            out.push_str(" evloop_wakeups=");
            for (i, w) in control.workers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", w.wakeups.load(Ordering::Relaxed));
            }
            out.push_str(" evloop_turns=");
            for (i, w) in control.workers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", w.turns.load(Ordering::Relaxed));
            }
            match &control.cache {
                None => out.push_str(" cache=off"),
                Some(cache) => {
                    let s = cache.stats();
                    let _ = write!(
                        out,
                        " cache=on cache_entries={} cache_capacity={} cache_shards={} \
                         cache_hits={} cache_misses={} cache_evictions={} cache_hit_rate={:.4} \
                         cache_admission={} cache_admission_rejects={}",
                        cache.len(),
                        cache.capacity(),
                        cache.num_shards(),
                        s.hits,
                        s.misses,
                        s.evictions,
                        s.hit_rate(),
                        cache.admission().as_str(),
                        cache.admission_rejects()
                    );
                }
            }
            let _ = write!(out, " resident_bytes={}", gen.engine.resident_bytes());
        }
        Request::Metrics => {
            write_framed(out, &control.metrics.render_prometheus());
        }
        Request::Slowlog => {
            let mut payload = String::new();
            for rec in control.slowlog.snapshot() {
                let _ = writeln!(payload, "{rec}");
            }
            write_framed(out, &payload);
        }
        Request::Trace { from, max } => match &control.recorder {
            None => out.push_str("ERR trace recording is not enabled (serve --record)"),
            Some(rec) => {
                let chunk = rec.read_from(from, max.min(MAX_TRACE_BATCH));
                let mut payload = format!(
                    "base_us={} next_seq={} dropped={}\n",
                    chunk.base_us, chunk.next_seq, chunk.dropped
                );
                for (seq, r) in &chunk.records {
                    let _ = write!(payload, "{seq} ");
                    // Absolute timestamps (delta from 0): wire lines are
                    // independently parseable, so a poller can dedup by
                    // sequence without threading a running clock.
                    encode_record(r, 0, &mut payload);
                }
                write_framed(out, &payload);
            }
        },
        Request::Pair { u, v } => {
            control.served[worker].inc();
            let t0 = std::time::Instant::now();
            match score_pair(&gen, control, &mut ctx.ws, u, v) {
                Ok(s) => {
                    let stages = ctx.ws.take_trace();
                    observe_query(
                        control,
                        worker,
                        &gen,
                        "PAIR",
                        TraceKey::Pair(u, v),
                        t0.elapsed(),
                        stages,
                        || format!("{u},{v}"),
                    );
                    let _ = write!(out, "OK {s}");
                }
                Err(e) => write_query_error(
                    reloadable,
                    control,
                    &gen,
                    out,
                    e,
                    "PAIR",
                    TraceKey::Pair(u, v),
                    t0.elapsed(),
                ),
            }
        }
        Request::Source { u } => {
            control.served[worker].inc();
            gen.engine.store().prefetch(NodeId(u));
            let t0 = std::time::Instant::now();
            match gen
                .engine
                .single_source_with(&gen.graph, &mut ctx.ss, NodeId(u), &mut ctx.scores)
            {
                Ok(()) => {
                    let stages = ctx.ss.take_trace();
                    observe_query(
                        control,
                        worker,
                        &gen,
                        "SOURCE",
                        TraceKey::Node(u),
                        t0.elapsed(),
                        stages,
                        || u.to_string(),
                    );
                    out.push_str("OK ");
                    write_scores(out, &ctx.scores);
                }
                Err(e) => write_query_error(
                    reloadable,
                    control,
                    &gen,
                    out,
                    e,
                    "SOURCE",
                    TraceKey::Node(u),
                    t0.elapsed(),
                ),
            }
        }
        Request::TopK { u, k } => {
            control.served[worker].inc();
            gen.engine.store().prefetch(NodeId(u));
            let t0 = std::time::Instant::now();
            match gen
                .engine
                .top_k_with(&gen.graph, &mut ctx.ss, &mut ctx.scores, NodeId(u), k)
            {
                Ok(top) => {
                    let stages = ctx.ss.take_trace();
                    observe_query(
                        control,
                        worker,
                        &gen,
                        "TOPK",
                        TraceKey::NodeK(u, k.min(u32::MAX as usize) as u32),
                        t0.elapsed(),
                        stages,
                        || format!("{u}:{k}"),
                    );
                    let _ = write!(out, "OK {}", top.len());
                    for (node, score) in top {
                        let _ = write!(out, " {}:{score}", node.0);
                    }
                }
                Err(e) => write_query_error(
                    reloadable,
                    control,
                    &gen,
                    out,
                    e,
                    "TOPK",
                    TraceKey::NodeK(u, k.min(u32::MAX as usize) as u32),
                    t0.elapsed(),
                ),
            }
        }
        Request::Batch { pairs } => {
            control.served[worker].add(pairs.len() as u64);
            ctx.batch.clear();
            for &(u, v) in &pairs {
                let t0 = std::time::Instant::now();
                match score_pair(&gen, control, &mut ctx.ws, u, v) {
                    Ok(s) => {
                        let stages = ctx.ws.take_trace();
                        observe_query(
                            control,
                            worker,
                            &gen,
                            "BATCH",
                            TraceKey::Pair(u, v),
                            t0.elapsed(),
                            stages,
                            || format!("{u},{v}"),
                        );
                        ctx.batch.push(s);
                    }
                    Err(e) => {
                        write_query_error(
                            reloadable,
                            control,
                            &gen,
                            out,
                            e,
                            "BATCH",
                            TraceKey::Pair(u, v),
                            t0.elapsed(),
                        );
                        return Action::Continue;
                    }
                }
            }
            out.push_str("OK ");
            write_scores(out, &ctx.batch);
        }
    }
    Action::Continue
}
