//! Hot-reload tests: a loopback server must answer continuously while
//! index generations promote underneath it — every response bit-identical
//! to one of the live generations, no torn reads, caches provably
//! invalidated at each swap — and the `RELOAD` / watcher plumbing must
//! report the generation it serves.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sling_core::lifecycle::GenerationStore;
use sling_core::{SharedEngine, SlingConfig, SlingError, SlingIndex};
use sling_graph::generators::barabasi_albert;
use sling_graph::{DiGraph, NodeId};
use sling_server::{
    serve, serve_reloadable, Client, Listener, ReloadableEngine, ServerConfig, ServerHandle,
};

const CLIENT_THREADS: usize = 8;

fn fixture() -> DiGraph {
    barabasi_albert(120, 3, 41).unwrap()
}

fn build(g: &DiGraph, seed: u64) -> SlingIndex {
    let config = SlingConfig::from_epsilon(0.6, 0.1)
        .with_seed(seed)
        .with_enhancement(true);
    SlingIndex::build(g, &config).unwrap()
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sling_hot_reload_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn mem_opener(g: &DiGraph, p: &Path) -> Result<SharedEngine<sling_core::hp::HpArena>, SlingError> {
    SlingIndex::load(g, p).map(SlingIndex::into_shared_engine)
}

fn start_reloadable(
    store: &GenerationStore,
    config: ServerConfig,
) -> (ServerHandle, std::net::SocketAddr) {
    let reloadable = ReloadableEngine::watching_store(store.clone(), None, mem_opener).unwrap();
    let handle = serve_reloadable(
        Arc::new(reloadable),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        config,
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    (handle, addr)
}

/// 8 client threads hammer hot pairs while the main thread publishes and
/// promotes generations repeatedly (alternating between two builds whose
/// scores differ bit-wise). Every answer must be bit-identical to one of
/// the two live generations — no torn reads, no errors — and after the
/// final swap every hot pair must answer from the *new* generation,
/// which proves the result cache cannot serve hits computed against a
/// retired index.
#[test]
fn swap_under_load_answers_from_a_live_generation_only() {
    let g = fixture();
    let n = g.num_nodes() as u32;
    let idx_a = build(&g, 7);
    let idx_b = build(&g, 8);

    // Hot pairs where the two generations provably disagree bit-wise, so
    // a stale cache hit (or a torn read) cannot masquerade as correct.
    let canon = |u: u32, v: u32| (u.min(v), u.max(v));
    let mut hot: Vec<(u32, u32)> = Vec::new();
    let mut score_a: Vec<f64> = Vec::new();
    let mut score_b: Vec<f64> = Vec::new();
    for i in 0..64u32 {
        let (u, v) = canon(i % n, (i * 7 + 1) % n);
        let a = idx_a.single_pair(&g, NodeId(u), NodeId(v));
        let b = idx_b.single_pair(&g, NodeId(u), NodeId(v));
        if a.to_bits() != b.to_bits() {
            hot.push((u, v));
            score_a.push(a);
            score_b.push(b);
        }
    }
    assert!(
        hot.len() >= 16,
        "fixture too agreeable: only {} distinguishing pairs",
        hot.len()
    );

    let root = tmp_root("swap");
    let store = GenerationStore::open(&root).unwrap();
    store
        .promote(store.publish_index(&idx_a, Some(&g)).unwrap())
        .unwrap();

    let (handle, addr) = start_reloadable(
        &store,
        ServerConfig {
            workers: 4,
            cache_capacity: 4096,
            cache_shards: 8,
            ..ServerConfig::default()
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        // Traffic threads: continuous queries; every answer must match
        // one of the two generations exactly. Any ERR fails the test.
        for t in 0..CLIENT_THREADS {
            let (stop, total, hot, score_a, score_b) = (
                Arc::clone(&stop),
                Arc::clone(&total),
                &hot,
                &score_a,
                &score_b,
            );
            s.spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                let mut i = t; // desynchronize threads
                while !stop.load(Ordering::Relaxed) {
                    let k = i % hot.len();
                    let (u, v) = hot[k];
                    let got = client
                        .pair(u, v)
                        .unwrap_or_else(|e| panic!("request errored during swap: {e}"));
                    assert!(
                        got.to_bits() == score_a[k].to_bits()
                            || got.to_bits() == score_b[k].to_bits(),
                        "pair ({u},{v}) answered {got}, which is neither generation \
                         ({} / {})",
                        score_a[k],
                        score_b[k]
                    );
                    total.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                client.quit().ok();
            });
        }

        // Promotion thread (the test body): swap generations repeatedly
        // under the live traffic above. Odd rounds serve idx_b, even
        // rounds idx_a; the final round lands on idx_b.
        let mut control = Client::connect_tcp(addr).unwrap();
        let mut last_gen = String::new();
        for round in 0..5 {
            std::thread::sleep(std::time::Duration::from_millis(30));
            let next = if round % 2 == 0 { &idx_b } else { &idx_a };
            let gen = store.publish_index(next, Some(&g)).unwrap();
            store.promote(gen).unwrap();
            let (serving, swapped) = control.reload().unwrap();
            assert!(swapped, "promotion of {} did not swap", gen.dir_name());
            assert_eq!(serving, gen.dir_name());
            last_gen = serving;
        }
        std::thread::sleep(std::time::Duration::from_millis(30));

        // Cache invalidation proof: the final generation is idx_b, and
        // every hot pair was cached under earlier generations. Repeated
        // queries must now answer idx_b's scores exactly — a single
        // surviving stale hit would return idx_a's bits instead.
        for _ in 0..2 {
            for (k, &(u, v)) in hot.iter().enumerate() {
                let got = control.pair(u, v).unwrap();
                assert_eq!(
                    got.to_bits(),
                    score_b[k].to_bits(),
                    "pair ({u},{v}) served a stale hit after the final swap"
                );
            }
        }

        // STATS surfaces the serving generation and the swap count.
        let stats = control.stats_line().unwrap();
        assert!(
            stats.contains(&format!("index_generation={last_gen}")),
            "{stats}"
        );
        assert!(stats.contains("swaps=5"), "{stats}");
        assert!(stats.contains("last_swap_unix_ms="), "{stats}");
        assert!(!stats.contains("last_swap_unix_ms=0"), "{stats}");

        stop.store(true, Ordering::Relaxed);
        control.shutdown().unwrap();
    });

    let report = handle.join();
    assert_eq!(report.generation.swaps, 5);
    assert!(
        total.load(Ordering::Relaxed) > 0,
        "traffic threads never ran"
    );
    assert!(report.total_served() > 0);
    std::fs::remove_dir_all(&root).ok();
}

/// The `--watch` path: no `RELOAD` is ever sent; the watcher thread
/// notices the moved `CURRENT` pointer on its own and swaps, with the
/// served answers flipping to the new generation.
#[test]
fn watcher_swaps_without_an_explicit_reload() {
    let g = fixture();
    let idx_a = build(&g, 7);
    let idx_b = build(&g, 8);
    // A pair the two builds disagree on.
    let (u, v) = (0u32, 1u32);
    let a = idx_a.single_pair(&g, NodeId(u), NodeId(v));
    let b = idx_b.single_pair(&g, NodeId(u), NodeId(v));
    assert_ne!(a.to_bits(), b.to_bits(), "fixture pair must distinguish");

    let root = tmp_root("watch");
    let store = GenerationStore::open(&root).unwrap();
    store
        .promote(store.publish_index(&idx_a, Some(&g)).unwrap())
        .unwrap();
    let (handle, addr) = start_reloadable(
        &store,
        ServerConfig {
            workers: 2,
            cache_capacity: 256,
            cache_shards: 4,
            watch_interval_ms: 20,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect_tcp(addr).unwrap();
    assert_eq!(client.pair(u, v).unwrap().to_bits(), a.to_bits());

    let gen2 = store.publish_index(&idx_b, Some(&g)).unwrap();
    store.promote(gen2).unwrap();
    // Poll until the watcher swaps (bounded; typically one interval).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let got = client.pair(u, v).unwrap();
        if got.to_bits() == b.to_bits() {
            break;
        }
        assert_eq!(got.to_bits(), a.to_bits(), "neither generation's score");
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never swapped to {}",
            gen2.dir_name()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let stats = client.stats_line().unwrap();
    assert!(
        stats.contains(&format!("index_generation={}", gen2.dir_name())),
        "{stats}"
    );
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).ok();
}

/// Pinned servers (plain `serve`) answer `RELOAD` with `swapped=false`
/// and report the `static` generation in `STATS` and the final report.
#[test]
fn pinned_server_reload_is_a_noop() {
    let g = fixture();
    let idx = build(&g, 7);
    let handle = serve(
        Arc::new(SharedEngine::from(idx)),
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect_tcp(handle.local_addr().unwrap()).unwrap();
    let (generation, swapped) = client.reload().unwrap();
    assert_eq!(generation, "static");
    assert!(!swapped);
    let stats = client.stats_line().unwrap();
    assert!(stats.contains("index_generation=static"), "{stats}");
    assert!(stats.contains("swaps=0"), "{stats}");
    client.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.generation.generation, "static");
    assert_eq!(report.generation.swaps, 0);
    assert_eq!(report.generation.last_swap_unix_ms, 0);
}

/// A store with nothing promoted refuses to start serving (there is no
/// generation to pin), and a store whose promoted generation was
/// corrupted *after* promotion keeps the old generation serving when a
/// reload fails.
#[test]
fn reload_failures_keep_the_old_generation_serving() {
    let g = fixture();
    let idx = build(&g, 7);
    let want = idx.single_pair(&g, NodeId(0), NodeId(1));

    // Nothing promoted: watching_store must refuse to start.
    let empty_root = tmp_root("empty");
    let store = GenerationStore::open(&empty_root).unwrap();
    let Err(err) = ReloadableEngine::watching_store(store.clone(), None, mem_opener) else {
        panic!("watching_store started with nothing promoted");
    };
    assert!(err.to_string().contains("promote"), "{err}");

    // Promote a good generation, start serving, then corrupt the next
    // promotion target on disk *after* promoting it: RELOAD must fail,
    // and traffic must keep flowing on the old generation.
    store
        .promote(store.publish_index(&idx, Some(&g)).unwrap())
        .unwrap();
    let (handle, addr) = start_reloadable(
        &store,
        ServerConfig {
            workers: 2,
            cache_capacity: 64,
            cache_shards: 2,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect_tcp(addr).unwrap();
    assert_eq!(client.pair(0, 1).unwrap().to_bits(), want.to_bits());

    let gen2 = store.publish_index(&idx, Some(&g)).unwrap();
    store.promote(gen2).unwrap();
    // Corrupt gen2's payload after promotion: the opener's manifest
    // check rejects it at reload time.
    let path = store.index_path(gen2);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = client.reload().unwrap_err();
    assert!(err.to_string().contains("reload failed"), "{err}");
    // Old generation still serves, bit-identically.
    assert_eq!(client.pair(0, 1).unwrap().to_bits(), want.to_bits());
    let stats = client.stats_line().unwrap();
    assert!(stats.contains("index_generation=gen-0001"), "{stats}");
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&empty_root).ok();
}
