//! Server smoke tests over loopback sockets: concurrent mixed traffic
//! from ≥ 8 client threads against one shared engine must return scores
//! **bit-identical** to the serial in-memory path, report cache and
//! per-worker statistics, and shut down gracefully.

use std::sync::Arc;

use sling_core::{HpStore, SharedEngine, SlingConfig, SlingIndex};
use sling_graph::generators::barabasi_albert;
use sling_graph::{DiGraph, NodeId};
use sling_server::{serve, Client, Listener, ServerConfig};

const CLIENT_THREADS: usize = 8;

fn setup() -> (DiGraph, SlingIndex) {
    let g = barabasi_albert(120, 3, 41).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.1)
        .with_seed(7)
        .with_enhancement(true);
    let idx = SlingIndex::build(&g, &config).unwrap();
    (g, idx)
}

/// Deterministic per-thread query mix: mostly hot pairs (shared across
/// threads so the cache sees reuse), some cold pairs, some top-k.
fn pair_for(thread: usize, i: usize, n: u32) -> (u32, u32) {
    if i % 4 != 3 {
        // Hot set shared by every thread.
        let h = (i % 7) as u32;
        (h % n, (h * 3 + 1) % n)
    } else {
        let a = ((thread * 31 + i * 17) as u32) % n;
        let b = ((thread * 13 + i * 29 + 1) as u32) % n;
        (a, b)
    }
}

#[test]
fn concurrent_mixed_traffic_is_bit_identical_to_serial() {
    let (g, idx) = setup();
    let n = g.num_nodes() as u32;

    // Serial in-memory references, canonical pair order (the server
    // canonicalizes symmetric pairs before computing).
    let reference_pair = |u: u32, v: u32| idx.single_pair(&g, NodeId(u.min(v)), NodeId(u.max(v)));
    let reference_topk: Vec<Vec<(u32, f64)>> = (0..16u32)
        .map(|u| {
            idx.top_k_heap(&g, NodeId(u), 5)
                .into_iter()
                .map(|(v, s)| (v.0, s))
                .collect()
        })
        .collect();
    let reference_source = idx.single_source(&g, NodeId(3));

    let engine: Arc<SharedEngine<_>> = Arc::new(idx.clone().into_shared_engine());
    let handle = serve(
        engine,
        Arc::new(g.clone()),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 4,
            cache_capacity: 512,
            cache_shards: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();

    std::thread::scope(|s| {
        for t in 0..CLIENT_THREADS {
            let reference_topk = &reference_topk;
            s.spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                client.ping().unwrap();
                for i in 0..40 {
                    match i % 5 {
                        4 => {
                            let u = ((t + i) % 16) as u32;
                            let got = client.top_k(u, 5).unwrap();
                            assert_eq!(got, reference_topk[u as usize], "TOPK {u} on thread {t}");
                        }
                        _ => {
                            let (u, v) = pair_for(t, i, n);
                            let got = client.pair(u, v).unwrap();
                            let want = reference_pair(u, v);
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "PAIR {u} {v} on thread {t}: {got} vs {want}"
                            );
                        }
                    }
                }
                client.quit().unwrap();
            });
        }
    });

    // Batch and single-source answers through one more connection.
    let mut client = Client::connect_tcp(addr).unwrap();
    let pairs: Vec<(u32, u32)> = (0..20u32).map(|i| (i % n, (i * 7 + 2) % n)).collect();
    let batch = client.batch(&pairs).unwrap();
    for (&(u, v), got) in pairs.iter().zip(&batch) {
        assert_eq!(
            got.to_bits(),
            reference_pair(u, v).to_bits(),
            "BATCH ({u},{v})"
        );
    }
    let source = client.single_source(3).unwrap();
    assert_eq!(source.len(), reference_source.len());
    for (got, want) in source.iter().zip(&reference_source) {
        assert_eq!(got.to_bits(), want.to_bits(), "SOURCE row diverged");
    }

    // Stats report workers, served counts, and a live hit rate.
    let stats = client.stats_line().unwrap();
    assert!(stats.contains("workers=4"), "{stats}");
    assert!(stats.contains("cache=on"), "{stats}");
    assert!(stats.contains("cache_hits="), "{stats}");
    assert!(stats.contains("cache_hit_rate="), "{stats}");
    let hits: u64 = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("cache_hits=").map(|v| v.parse().unwrap()))
        .unwrap();
    assert!(hits > 0, "hot keys must hit the shared cache: {stats}");

    // Errors come back as ERR without killing the session.
    let err = client.pair(0, 9999).unwrap_err();
    assert!(err.to_string().contains("range"), "{err}");
    client.ping().unwrap();

    // Graceful shutdown: join returns the final accounting.
    client.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.served_per_worker.len(), 4);
    // 8 threads x 40 requests + 20 batch pairs + 1 source + 1 failed pair.
    assert!(report.total_served() >= 8 * 40 + 21, "{report:?}");
    let cache = report.cache.unwrap();
    assert!(cache.hits > 0 && cache.misses > 0);
}

#[test]
fn unix_socket_serving_and_cacheless_mode() {
    let (g, idx) = setup();
    let want = idx.single_pair(&g, NodeId(1), NodeId(2));
    let engine = Arc::new(SharedEngine::from(idx));
    let path = std::env::temp_dir().join(format!("sling_server_smoke_{}.sock", std::process::id()));
    let handle = serve(
        engine,
        Arc::new(g),
        Listener::bind_unix(&path).unwrap(),
        ServerConfig {
            workers: 2,
            cache_capacity: 0, // cacheless: direct engine path
            cache_shards: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert!(handle.local_addr().is_none());
    let mut client = Client::connect_unix(&path).unwrap();
    let got = client.pair(2, 1).unwrap(); // canonicalized server-side
    assert_eq!(got.to_bits(), want.to_bits());
    let stats = client.stats_line().unwrap();
    assert!(stats.contains("cache=off"), "{stats}");
    client.shutdown().unwrap();
    let report = handle.join();
    assert!(report.cache.is_none());
    assert_eq!(report.total_served(), 1);
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

#[test]
fn mmap_backend_serves_identically_with_prefetch() {
    let (g, idx) = setup();
    let dir = std::env::temp_dir().join(format!("sling_server_mmap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.slng");
    idx.save(&path).unwrap();
    let engine = Arc::new(SharedEngine::open_mmap(&g, &path).unwrap());
    // The server's workers prefetch through this trait method; exercise
    // it directly too (advisory, must not affect results).
    engine.store().prefetch(NodeId(0));
    let handle = serve(
        engine,
        Arc::new(g.clone()),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 2,
            cache_capacity: 256,
            cache_shards: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    for (u, v) in [(0u32, 1u32), (5, 80), (40, 7)] {
        let want = idx.single_pair(&g, NodeId(u.min(v)), NodeId(u.max(v)));
        let got = client.pair(u, v).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "mmap-served ({u},{v})");
    }
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_despite_idle_connections() {
    let (g, idx) = setup();
    let engine = Arc::new(SharedEngine::from(idx));
    let handle = serve(
        engine,
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 2,
            cache_capacity: 16,
            cache_shards: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    // Two idle connections pin both workers mid-read without ever
    // sending a request...
    let idle_a = std::net::TcpStream::connect(addr).unwrap();
    let idle_b = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    // ...a third client can still be served (queued until a worker
    // wakes) after shutdown is initiated from the handle side; the join
    // must return promptly instead of hanging on the idle readers.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let shutdown_thread = std::thread::spawn(move || {
        let report = handle.shutdown();
        done_tx.send(report.served_per_worker.len()).unwrap();
    });
    let workers = done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("shutdown hung on idle connections");
    assert_eq!(workers, 2);
    shutdown_thread.join().unwrap();
    drop(idle_a);
    drop(idle_b);
}

#[test]
fn idle_connection_cannot_starve_a_single_worker() {
    let (g, idx) = setup();
    let want = idx.single_pair(&g, NodeId(0), NodeId(1));
    let engine = Arc::new(SharedEngine::from(idx));
    let handle = serve(
        engine,
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    // Pin the only worker with a connection that never sends anything...
    let idle = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    // ...a second client must still be served (the worker parks the
    // quiet session when it sees the queue is non-empty), including the
    // SHUTDOWN that ends the server.
    let mut client = Client::connect_tcp(addr).unwrap();
    let got = client.pair(0, 1).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
    client.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.total_served(), 1);
    drop(idle);
}

#[test]
fn busy_pipelining_client_cannot_starve_others() {
    let (g, idx) = setup();
    let want = idx.single_pair(&g, NodeId(0), NodeId(1));
    let engine = Arc::new(SharedEngine::from(idx));
    let handle = serve(
        engine,
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    // Hammer the single worker with back-to-back requests so its reads
    // always find data and never hit the idle-timeout branch...
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_busy = Arc::clone(&stop);
    let busy = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(addr).unwrap();
        while !stop_busy.load(std::sync::atomic::Ordering::SeqCst) {
            if client.ping().is_err() {
                break; // server shut down underneath us: fine
            }
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    // ...a second client must still be served (the worker parks the
    // busy session between requests when the queue is non-empty).
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let prober = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(addr).unwrap();
        let got = client.pair(0, 1).unwrap();
        client.shutdown().unwrap();
        done_tx.send(got).unwrap();
    });
    let got = done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("busy client starved the queued one");
    assert_eq!(got.to_bits(), want.to_bits());
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    prober.join().unwrap();
    busy.join().unwrap();
    handle.join();
}

#[test]
fn malformed_requests_get_err_lines() {
    let (g, idx) = setup();
    let engine = Arc::new(SharedEngine::from(idx));
    let handle = serve(
        engine,
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for (raw, expect) in [
        ("FROBNICATE 1\n", "ERR "),
        ("PAIR 1\n", "ERR "),
        ("PAIR a b\n", "ERR "),
        ("PING\n", "OK pong"),
    ] {
        reader.get_mut().write_all(raw.as_bytes()).unwrap();
        reader.get_mut().flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with(expect), "{raw:?} -> {line:?}");
    }
    drop(reader);
    let mut client = Client::connect_tcp(addr).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn metrics_exposition_round_trips_with_live_families() {
    let (g, idx) = setup();
    let engine = Arc::new(SharedEngine::from(idx));
    let handle = serve(
        engine,
        Arc::new(g.clone()),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 2,
            cache_capacity: 256,
            cache_shards: 2,
            // Everything is "slow": the slow-query log must fill.
            slow_query_us: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    let n = g.num_nodes() as u32;

    let mut client = Client::connect_tcp(addr).unwrap();
    for i in 0..32u32 {
        // Repeat a hot pair so the shared result cache records hits.
        let (u, v) = if i % 2 == 0 {
            (3, 77 % n)
        } else {
            (i % n, (i * 7 + 1) % n)
        };
        client.pair(u, v).unwrap();
    }
    client.single_source(5).unwrap();
    client.top_k(3, 4).unwrap();

    let text = client.metrics().unwrap();
    assert!(text.ends_with('\n'), "payload must be newline-terminated");
    // Prometheus text shape: every family has HELP and TYPE lines, and
    // every non-comment line is `name[{labels}] value`.
    let mut families = 0usize;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families += 1;
            let mut parts = rest.split_ascii_whitespace();
            let name = parts.next().unwrap();
            assert!(
                text.contains(&format!("# HELP {name} ")),
                "no HELP for {name}"
            );
            assert!(
                matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
                "bad TYPE line {line:?}"
            );
        } else if !line.starts_with('#') {
            let mut parts = line.split_ascii_whitespace();
            let (name, value) = (parts.next().unwrap(), parts.next().unwrap());
            assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            assert!(!name.is_empty());
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }
    assert!(families >= 20, "only {families} families in:\n{text}");

    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.split_ascii_whitespace().next() == Some(name))
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .split_ascii_whitespace()
            .nth(1)
            .unwrap()
            .parse::<f64>()
            .unwrap() as u64
    };
    // Server family: 32 pairs + 1 source + 1 topk.
    assert_eq!(metric("sling_server_requests_total"), 34);
    assert_eq!(metric("sling_server_request_ns_count"), 34);
    // Cache family: the repeated hot pair must have hit.
    assert!(
        metric("sling_cache_hits_total") > 0,
        "no cache hits:\n{text}"
    );
    // Kernel-stage histograms: pair traffic exercises fetch+merge, the
    // source query exercises propagation.
    assert!(metric("sling_query_stage_entry_fetch_ns_count") > 0);
    assert!(metric("sling_query_stage_merge_ns_count") > 0);
    assert!(metric("sling_query_stage_propagate_ns_count") > 0);
    // Process-wide kernel + lifecycle families are registered.
    assert!(text.contains("sling_kernel_merge_linear_total"));
    assert!(text.contains("sling_lifecycle_promotions_total"));
    assert!(text.contains("sling_index_epoch"));

    // Slow-query log: threshold 1 µs admits essentially everything, the
    // ring is bounded, and records are structured one-liners.
    assert!(metric("sling_slow_queries_total") > 0);
    let slow = client.slow_queries().unwrap();
    assert!(!slow.is_empty(), "slow log empty despite 1 µs threshold");
    for line in slow.lines() {
        assert!(line.starts_with("slow verb="), "bad record {line:?}");
        assert!(line.contains(" total_us="), "bad record {line:?}");
        assert!(line.contains(" generation=static "), "bad record {line:?}");
    }

    // STATS must agree with the registry on the served count (same
    // underlying handles).
    let stats = client.stats_line().unwrap();
    assert!(stats.contains("served=34"), "{stats}");

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn slow_query_log_disabled_at_zero_threshold() {
    let (g, idx) = setup();
    let engine = Arc::new(SharedEngine::from(idx));
    let handle = serve(
        engine,
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 1,
            slow_query_us: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    for i in 0..8u32 {
        client.pair(i % 4, (i * 3 + 1) % 7).unwrap();
    }
    assert_eq!(client.slow_queries().unwrap(), "");
    client.shutdown().unwrap();
    handle.join();
}
