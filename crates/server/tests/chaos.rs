//! Chaos suite: a live loopback server under seeded fault schedules.
//!
//! Every test drives real sockets against a real server while the
//! `sling_core::faults` registry injects IO errors, short reads/writes,
//! and corruption on deterministic schedules, and asserts the
//! resilience contract from the crate docs: no panics, retrying clients
//! converge on bit-identical answers, overload sheds bounded fractions
//! instead of collapsing, corrupt generations roll back automatically,
//! and every failure mode is visible in `METRICS`.
//!
//! The fault registry is process-global, so tests that arm it serialize
//! on [`chaos_lock`] and disarm through a drop guard (panic-safe).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sling_core::lifecycle::GenerationStore;
use sling_core::obs::CLIENT;
use sling_core::{faults, MmapHpArena, SharedEngine, SlingConfig, SlingError, SlingIndex};
use sling_graph::generators::barabasi_albert;
use sling_graph::{DiGraph, NodeId};
use sling_server::{
    serve, serve_reloadable, Client, ClientConfig, Listener, ReloadableEngine, RetryingClient,
    ServerConfig, ServerHandle,
};

/// Serializes fault-arming tests: the registry is process-global.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms the fault registry when dropped, so a panicking test cannot
/// leak its schedule into the next one.
struct FaultGuard;

impl FaultGuard {
    fn install(spec: &str) -> FaultGuard {
        faults::install_from_spec(spec).unwrap();
        FaultGuard
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn fixture() -> DiGraph {
    barabasi_albert(120, 3, 41).unwrap()
}

fn build(g: &DiGraph, seed: u64) -> SlingIndex {
    let config = SlingConfig::from_epsilon(0.6, 0.1)
        .with_seed(seed)
        .with_enhancement(true);
    SlingIndex::build(g, &config).unwrap()
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sling_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start_pinned(
    g: DiGraph,
    idx: SlingIndex,
    config: ServerConfig,
) -> (ServerHandle, std::net::SocketAddr) {
    let handle = serve(
        Arc::new(SharedEngine::from(idx)),
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        config,
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    (handle, addr)
}

/// Extract one un-labeled sample value from a Prometheus text
/// exposition.
fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| l.strip_prefix(name)?.trim().parse().ok())
}

/// Extract `key=N` from a `STATS` line.
fn stat_value(stats: &str, key: &str) -> Option<u64> {
    stats
        .split_ascii_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}="))?.parse().ok())
}

/// Tentpole end-to-end: 8 retrying client threads complete every
/// request with bit-identical answers while seeded faults kill reads,
/// kill writes, and stall writes underneath them — and the retries,
/// reconnects, and injected faults are all visible in `METRICS`.
#[test]
fn retrying_clients_survive_seeded_connection_faults_bit_identically() {
    let _lock = chaos_lock();
    let g = fixture();
    let idx = build(&g, 7);
    let n = g.num_nodes() as u32;
    let hot: Vec<(u32, u32)> = (0..24u32).map(|i| (i % n, (i * 7 + 1) % n)).collect();
    let want: Vec<f64> = hot
        .iter()
        .map(|&(u, v)| idx.single_pair(&g, NodeId(u), NodeId(v)))
        .collect();
    let (handle, addr) = start_pinned(
        g,
        idx,
        ServerConfig {
            workers: 2,
            cache_capacity: 1024,
            cache_shards: 4,
            ..ServerConfig::default()
        },
    );

    let faults_before = faults::injected_total();
    let retries_before = CLIENT.retries.load(Ordering::Relaxed);
    let guard = FaultGuard::install(
        "server.read:error:every=23;\
         server.write:error:every=31;\
         server.write:delay:delay_us=1500:every=37",
    );

    std::thread::scope(|s| {
        for t in 0..8usize {
            let (hot, want) = (&hot, &want);
            s.spawn(move || {
                let config = ClientConfig {
                    max_retries: 12,
                    backoff_base: Duration::from_millis(1),
                    backoff_max: Duration::from_millis(20),
                    jitter_seed: 0xC0FFEE + t as u64,
                    read_timeout: Some(Duration::from_secs(10)),
                    ..ClientConfig::default()
                };
                let mut client = RetryingClient::connect_tcp(addr, config).unwrap();
                for i in 0..40usize {
                    let k = (i * 3 + t) % hot.len();
                    let (u, v) = hot[k];
                    let got = client
                        .pair(u, v)
                        .unwrap_or_else(|e| panic!("thread {t} request {i} gave up: {e}"));
                    assert_eq!(
                        got.to_bits(),
                        want[k].to_bits(),
                        "thread {t}: pair ({u},{v}) answered {got}, want {}",
                        want[k]
                    );
                }
            });
        }
    });

    let faults_fired = faults::injected_total() - faults_before;
    let retries_made = CLIENT.retries.load(Ordering::Relaxed) - retries_before;
    assert!(faults_fired > 0, "schedule never fired");
    assert!(retries_made > 0, "clients never had to retry");

    // Disarm, then scrape: every counter the chaos ran up must be
    // visible in the server's own exposition.
    drop(guard);
    let mut control = Client::connect_tcp(addr).unwrap();
    let exposition = control.metrics().unwrap();
    assert!(metric_value(&exposition, "sling_faults_injected_total").unwrap() > 0.0);
    assert!(metric_value(&exposition, "sling_retries_total").unwrap() > 0.0);
    assert!(metric_value(&exposition, "sling_client_reconnects_total").unwrap() > 0.0);
    control.shutdown().unwrap();
    handle.join();
}

/// A pipelined burst against a tight pending-bytes high-water mark:
/// some requests are answered, the rest shed with `ERR overloaded` —
/// never dropped, never a panic — and the shed count lands in `STATS`
/// and `METRICS`.
#[test]
fn burst_sheds_bounded_with_err_overloaded() {
    let _lock = chaos_lock();
    let g = fixture();
    let idx = build(&g, 7);
    let (handle, addr) = start_pinned(
        g,
        idx,
        ServerConfig {
            workers: 1,
            cache_capacity: 64,
            cache_shards: 1,
            shed_pending_bytes: 16 * 1024,
            ..ServerConfig::default()
        },
    );

    const BURST: usize = 500;
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut pipeline = String::new();
    for i in 0..BURST {
        pipeline.push_str(&format!("SOURCE {}\n", i % 120));
    }
    raw.write_all(pipeline.as_bytes()).unwrap();
    let mut reader = BufReader::new(raw);
    let (mut served, mut shed) = (0usize, 0usize);
    let mut line = String::new();
    for _ in 0..BURST {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection died mid-burst"
        );
        if line.starts_with("OK ") {
            served += 1;
        } else if line.trim_end() == "ERR overloaded" {
            shed += 1;
        } else {
            panic!("unexpected response {line:?}");
        }
    }
    assert_eq!(served + shed, BURST);
    assert!(served > 0, "everything shed: admission control too eager");
    assert!(shed > 0, "nothing shed despite a {BURST}-deep burst");

    let mut control = Client::connect_tcp(addr).unwrap();
    let stats = control.stats_line().unwrap();
    assert_eq!(stat_value(&stats, "shed"), Some(shed as u64), "{stats}");
    let exposition = control.metrics().unwrap();
    assert_eq!(
        metric_value(&exposition, "sling_requests_shed_total"),
        Some(shed as f64)
    );
    control.shutdown().unwrap();
    handle.join();
}

/// A pipelined burst against a small per-request deadline budget: the
/// head of the pipeline is answered, requests that sat buffered past
/// the budget answer `ERR deadline` instead of burning engine time.
#[test]
fn stale_pipelined_requests_answer_err_deadline() {
    let _lock = chaos_lock();
    let g = fixture();
    let idx = build(&g, 7);
    let (handle, addr) = start_pinned(
        g,
        idx,
        ServerConfig {
            workers: 1,
            cache_capacity: 64,
            cache_shards: 1,
            deadline_us: 1_000,
            ..ServerConfig::default()
        },
    );

    const BURST: usize = 800;
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut pipeline = String::new();
    for i in 0..BURST {
        pipeline.push_str(&format!("SOURCE {}\n", i % 120));
    }
    raw.write_all(pipeline.as_bytes()).unwrap();
    let mut reader = BufReader::new(raw);
    let (mut served, mut expired) = (0usize, 0usize);
    let mut line = String::new();
    for _ in 0..BURST {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection died mid-burst"
        );
        if line.starts_with("OK ") {
            served += 1;
        } else if line.trim_end() == "ERR deadline" {
            expired += 1;
        } else {
            panic!("unexpected response {line:?}");
        }
    }
    assert_eq!(served + expired, BURST);
    assert!(
        served > 0,
        "even the head of the pipeline missed its budget"
    );
    assert!(expired > 0, "no request expired despite a 1 ms budget");

    let mut control = Client::connect_tcp(addr).unwrap();
    let stats = control.stats_line().unwrap();
    assert_eq!(
        stat_value(&stats, "deadline_exceeded"),
        Some(expired as u64),
        "{stats}"
    );
    control.shutdown().unwrap();
    handle.join();
}

fn mmap_opener(g: &DiGraph, p: &Path) -> Result<SharedEngine<MmapHpArena>, SlingError> {
    SharedEngine::open_mmap(g, p)
}

/// A generation that starts corrupting *after* promotion: runtime
/// `CorruptIndex` errors cross the threshold, the server quarantines it
/// and rolls back to the newest verified prior generation on its own,
/// plain `RELOAD` refuses to re-promote the quarantined generation, and
/// `RELOAD FORCE` lifts the quarantine. Zero panics, zero dropped
/// connections, every transition visible in `STATS`.
#[test]
fn corrupt_generation_rolls_back_and_quarantines() {
    let _lock = chaos_lock();
    let g = fixture();
    let idx_a = build(&g, 7);
    let idx_b = build(&g, 8);
    let (u, v) = (0u32, 1u32);
    let score_a = idx_a.single_pair(&g, NodeId(u), NodeId(v));
    let score_b = idx_b.single_pair(&g, NodeId(u), NodeId(v));
    assert_ne!(
        score_a.to_bits(),
        score_b.to_bits(),
        "fixture pair must distinguish"
    );

    let root = tmp_root("rollback");
    let store = GenerationStore::open(&root).unwrap();
    let gen1 = store.publish_index(&idx_a, Some(&g)).unwrap();
    store.promote(gen1).unwrap();
    let gen2 = store.publish_index(&idx_b, Some(&g)).unwrap();
    store.promote(gen2).unwrap();

    let reloadable = ReloadableEngine::watching_store(store.clone(), None, mmap_opener).unwrap();
    let handle = serve_reloadable(
        Arc::new(reloadable),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 1,
            cache_capacity: 64,
            cache_shards: 1,
            rollback_error_threshold: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();

    // Healthy: serving gen-0002 (the promoted CURRENT).
    assert_eq!(client.pair(u, v).unwrap().to_bits(), score_b.to_bits());
    let stats = client.stats_line().unwrap();
    assert!(
        stats.contains(&format!("index_generation={}", gen2.dir_name())),
        "{stats}"
    );

    // The index starts rotting: exactly three validations corrupt, so
    // three distinct uncached queries fail, hitting the threshold on
    // the third — which must quarantine gen-0002 and roll back.
    let guard = FaultGuard::install("mmap.validate:corrupt:times=3");
    let mut corrupt_errors = 0;
    for (cu, cv) in [(2u32, 3u32), (4, 5), (6, 7)] {
        let err = client.pair(cu, cv).unwrap_err();
        assert!(err.to_string().contains("injected corruption"), "{err}");
        corrupt_errors += 1;
    }
    assert_eq!(corrupt_errors, 3);
    drop(guard);

    // Rolled back: same connection, no interruption, now answering
    // bit-identical to the prior generation.
    assert_eq!(client.pair(u, v).unwrap().to_bits(), score_a.to_bits());
    let stats = client.stats_line().unwrap();
    assert!(
        stats.contains(&format!("index_generation={}", gen1.dir_name())),
        "{stats}"
    );
    assert_eq!(stat_value(&stats, "rollbacks"), Some(1), "{stats}");
    assert_eq!(stat_value(&stats, "quarantined"), Some(1), "{stats}");
    let exposition = client.metrics().unwrap();
    assert_eq!(
        metric_value(&exposition, "sling_rollbacks_total"),
        Some(1.0)
    );

    // CURRENT still points at the quarantined generation; a plain
    // RELOAD must refuse to walk back into it.
    let (serving, swapped) = client.reload().unwrap();
    assert!(
        !swapped,
        "plain RELOAD re-promoted a quarantined generation"
    );
    assert_eq!(serving, gen1.dir_name());

    // RELOAD FORCE lifts the quarantine; the re-verified on-disk bytes
    // are pristine (the corruption was injected at validation), so the
    // server swaps forward again and serves gen-0002 cleanly.
    let (serving, swapped) = client.reload_with(true).unwrap();
    assert!(swapped, "RELOAD FORCE did not lift the quarantine");
    assert_eq!(serving, gen2.dir_name());
    assert_eq!(client.pair(u, v).unwrap().to_bits(), score_b.to_bits());

    client.shutdown().unwrap();
    let report = handle.join();
    assert!(report.total_served() > 0);
    std::fs::remove_dir_all(&root).ok();
}

/// Transient acceptor faults: connects keep succeeding (the pending
/// connection stays in the backlog while the acceptor backs off with
/// jitter), and the error count is exported.
#[test]
fn accept_faults_back_off_and_are_counted() {
    let _lock = chaos_lock();
    let g = fixture();
    let idx = build(&g, 7);
    let (handle, addr) = start_pinned(
        g,
        idx,
        ServerConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 1,
            ..ServerConfig::default()
        },
    );

    let guard = FaultGuard::install("server.accept:error:every=2:times=8");
    for i in 0..6 {
        let mut client = Client::connect_tcp(addr)
            .unwrap_or_else(|e| panic!("connect {i} failed under accept faults: {e}"));
        client.ping().unwrap();
        client.quit().ok();
    }
    drop(guard);

    let mut control = Client::connect_tcp(addr).unwrap();
    let exposition = control.metrics().unwrap();
    assert!(
        metric_value(&exposition, "sling_accept_errors_total").unwrap() >= 1.0,
        "injected accept errors were not counted"
    );
    control.shutdown().unwrap();
    handle.join();
}

/// Drain-grace interaction with a slow writer: a connection still owed
/// a large response at `SHUTDOWN` — with every write stalled to one
/// byte by the fault schedule — is either fully served or closed when
/// the grace expires. The server must join promptly either way; a
/// leaked connection would hang the join and fail the watchdog.
#[test]
fn slow_writer_is_served_or_closed_within_drain_grace() {
    let _lock = chaos_lock();
    let g = fixture();
    let idx = build(&g, 7);
    let (handle, addr) = start_pinned(
        g,
        idx,
        ServerConfig {
            workers: 1,
            cache_capacity: 16,
            cache_shards: 1,
            ..ServerConfig::default()
        },
    );

    // ~10k-pair batch => a ~200 KiB response; at one byte per
    // readiness turn it cannot finish inside the 250 ms drain grace.
    let _guard = FaultGuard::install("server.write:short_read:every=1");
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut request = String::from("BATCH");
    for i in 0..10_000u32 {
        request.push_str(&format!(" {},{}", i % 120, (i * 7 + 1) % 120));
    }
    request.push('\n');
    slow.write_all(request.as_bytes()).unwrap();
    // Let the server compute the response and start trickling it out.
    std::thread::sleep(Duration::from_millis(100));

    let mut control = Client::connect_tcp(addr).unwrap();
    control.shutdown().unwrap();
    let shutdown_at = Instant::now();

    // Watchdog join: a leaked slow-writer connection would hang this.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let report = handle.join();
        tx.send(report).ok();
    });
    let report = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server never finished draining: slow-writer connection leaked");
    assert!(
        shutdown_at.elapsed() < Duration::from_secs(8),
        "drain took {:?}, grace is 250 ms",
        shutdown_at.elapsed()
    );
    assert!(report.total_served() > 0);

    // The slow connection saw a clean prefix of its response (partial
    // write), then a close — either an orderly EOF or a reset (the
    // kernel sends RST when a socket with unread data is dropped, and
    // may discard buffered bytes with it). Never garbage, never a hang.
    let mut got = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match slow.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => break,
            Err(e) => panic!("slow connection died uncleanly: {e}"),
        }
    }
    if !got.is_empty() {
        assert!(
            got.starts_with(b"OK "),
            "response prefix is garbage: {:?}",
            &got[..8.min(got.len())]
        );
    }
}
