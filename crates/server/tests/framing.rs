//! Protocol-framing tests for the readiness loop: responses must be
//! **bit-identical** no matter how request bytes are fragmented across
//! reads (the epoll loop frames lines incrementally from whatever
//! arrives), and malformed or oversized lines must answer `ERR` without
//! desyncing the requests that follow them on the same connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use sling_core::{SharedEngine, SlingConfig, SlingIndex};
use sling_graph::generators::barabasi_albert;
use sling_graph::DiGraph;
use sling_server::{serve, Client, Listener, ServerConfig};

const NODES: u32 = 120;

fn fixture() -> (DiGraph, SlingIndex) {
    let g = barabasi_albert(NODES as usize, 3, 41).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.1)
        .with_seed(7)
        .with_enhancement(true);
    let idx = SlingIndex::build(&g, &config).unwrap();
    (g, idx)
}

/// One shared server for the fragmentation tests; it serves for the
/// whole test process (each case only opens a fresh connection).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let (g, idx) = fixture();
        let engine: Arc<SharedEngine<_>> = Arc::new(idx.into_shared_engine());
        let handle = serve(
            engine,
            Arc::new(g),
            Listener::bind_tcp("127.0.0.1:0").unwrap(),
            ServerConfig {
                workers: 2,
                cache_capacity: 512,
                cache_shards: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.local_addr().unwrap();
        std::mem::forget(handle);
        addr
    })
}

/// Map a generated `(kind, a, b)` triple to a request line (no
/// trailing newline). Kinds 4–6 are deliberately out-of-range or
/// malformed so error responses are exercised mid-stream too.
fn request_line(kind: u8, a: u32, b: u32) -> String {
    match kind % 7 {
        0 => format!("PAIR {} {}", a % NODES, b % NODES),
        1 => format!("SOURCE {}", a % NODES),
        2 => format!("TOPK {} {}", a % NODES, 1 + b % 8),
        3 => format!(
            "BATCH {},{} {},{}",
            a % NODES,
            b % NODES,
            b % NODES,
            a % NODES
        ),
        4 => "PING".to_string(),
        5 => format!("PAIR {a} {b}"),
        _ => format!("FROB {a} {b}"),
    }
}

/// Write `payload` split at the given chunk sizes (with occasional
/// pauses so the server really observes separate reads), then collect
/// `responses` newline-terminated reply lines.
fn send_in_chunks(
    addr: SocketAddr,
    payload: &[u8],
    splits: &[usize],
    responses: usize,
) -> Vec<String> {
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_nodelay(true).unwrap();
    let mut off = 0;
    for (i, &len) in splits.iter().enumerate() {
        if off >= payload.len() {
            break;
        }
        let end = (off + len.max(1)).min(payload.len());
        sock.write_all(&payload[off..end]).unwrap();
        off = end;
        if i % 3 == 2 {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    if off < payload.len() {
        sock.write_all(&payload[off..]).unwrap();
    }
    let mut reader = BufReader::new(sock);
    (0..responses)
        .map(|_| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.ends_with('\n'), "truncated response: {line:?}");
            line
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn random_fragmentation_is_bit_identical_to_whole_line(
        reqs in proptest::collection::vec((0u8..7, 0u32..400, 0u32..400), 1..12),
        splits in proptest::collection::vec(1usize..40, 1..64),
    ) {
        let addr = server_addr();
        let lines: Vec<String> = reqs.iter().map(|&(k, a, b)| request_line(k, a, b)).collect();
        let payload: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.bytes().chain([b'\n']))
            .collect();
        let whole = send_in_chunks(addr, &payload, &[payload.len()], lines.len());
        let fragmented = send_in_chunks(addr, &payload, &splits, lines.len());
        prop_assert_eq!(whole, fragmented);
    }
}

#[test]
fn byte_at_a_time_delivery_is_bit_identical_to_whole_line() {
    let addr = server_addr();
    let payload = b"PAIR 3 77\nTOPK 3 5\nPING\nSOURCE 9\nPAIR 500 1\nNOPE\nPAIR 77 3\n";
    let whole = send_in_chunks(addr, payload, &[payload.len()], 7);
    let trickled = send_in_chunks(addr, payload, &vec![1; payload.len()], 7);
    assert_eq!(whole, trickled);
    assert!(whole[0].starts_with("OK "));
    assert!(whole[4].starts_with("ERR "));
    assert!(whole[5].starts_with("ERR "));
    // Symmetric pair after the errors: same score, stream still in sync.
    assert_eq!(whole[0], whole[6]);
}

#[test]
fn oversized_line_errors_and_resyncs() {
    let addr = server_addr();
    let reference = send_in_chunks(addr, b"PAIR 3 7\n", &[9], 1);

    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(b"PING\n").unwrap();
    // One line of > 1 MiB: rejected as soon as the server sees the
    // overflow, discarded through its terminating newline.
    sock.write_all(&vec![b'x'; (1 << 20) + 16]).unwrap();
    sock.write_all(b"\nPAIR 3 7\nPING\n").unwrap();
    let mut reader = BufReader::new(sock);
    let mut lines = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        lines.push(line);
    }
    assert_eq!(lines[0], "OK pong\n");
    assert_eq!(lines[1], "ERR request line too long\n");
    assert_eq!(lines[2], reference[0]);
    assert_eq!(lines[3], "OK pong\n");
}

#[test]
fn invalid_utf8_errors_without_desyncing() {
    let addr = server_addr();
    let reference = send_in_chunks(addr, b"PAIR 3 7\n", &[9], 1);

    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(b"PAIR \xff\xfe 3\nPING\nPAIR 3 7\n")
        .unwrap();
    let mut reader = BufReader::new(sock);
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        lines.push(line);
    }
    assert!(lines[0].starts_with("ERR "), "got {:?}", lines[0]);
    assert_eq!(lines[1], "OK pong\n");
    assert_eq!(lines[2], reference[0]);
}

#[test]
fn connection_cap_rejects_with_err_busy_and_frees_on_close() {
    let (g, idx) = fixture();
    let engine: Arc<SharedEngine<_>> = Arc::new(idx.into_shared_engine());
    let handle = serve(
        engine,
        Arc::new(g),
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServerConfig {
            workers: 1,
            cache_capacity: 64,
            cache_shards: 2,
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().unwrap();

    let mut c1 = Client::connect_tcp(addr).unwrap();
    c1.ping().unwrap();
    let mut c2 = Client::connect_tcp(addr).unwrap();
    c2.ping().unwrap();

    // Past the cap: the acceptor answers `ERR busy` and closes without
    // ever registering the socket with a worker.
    let sock = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(sock);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "ERR busy");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "rejected socket stayed open: {rest:?}");

    // Closing an in-cap connection frees its slot once the worker
    // observes the EOF.
    drop(c1);
    let mut freed = None;
    for _ in 0..500 {
        if let Ok(mut c) = Client::connect_tcp(addr) {
            if c.ping().is_ok() {
                freed = Some(c);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut c3 = freed.expect("slot never freed after closing a connection");

    let stats = c3.stats_line().unwrap();
    for key in [
        "open_connections=",
        "idle_connections=",
        "rejected_connections=",
        "evloop_wakeups=",
        "evloop_turns=",
    ] {
        assert!(stats.contains(key), "missing {key} in STATS: {stats}");
    }
    let rejected: u64 = stats
        .split_ascii_whitespace()
        .find_map(|kv| kv.strip_prefix("rejected_connections="))
        .unwrap()
        .parse()
        .unwrap();
    assert!(rejected >= 1, "rejection not counted: {stats}");

    drop(c2);
    drop(c3);
    let report = handle.shutdown();
    assert!(report.rejected_connections >= 1);
}
