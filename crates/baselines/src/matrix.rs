//! Dense score matrices and the sparse transition operator `P`.
//!
//! `P` is the column-stochastic reverse-walk matrix of Eq. (5):
//! `P(i, j) = 1/|I(v_j)|` if `v_i ∈ I(v_j)`, else 0 — so `P·e_j` is the
//! uniform distribution over `I(v_j)`, one step of a reverse random walk.
//! Columns of dangling nodes are zero (the walk dies), matching the √c-walk
//! semantics used across the workspace.

use sling_graph::{DiGraph, NodeId};

/// Row-major dense `n × n` matrix of SimRank scores.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Mutable element accessor.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Largest absolute element-wise difference.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// `out += P · x`: one reverse-walk step — every node `j` spreads `x[j]`
/// uniformly over its in-neighbors. `O(m)`.
pub fn apply_p(graph: &DiGraph, x: &[f64], out: &mut [f64]) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for j in graph.nodes() {
        let xj = x[j.index()];
        if xj == 0.0 {
            continue;
        }
        let inn = graph.in_neighbors(j);
        if inn.is_empty() {
            continue;
        }
        let share = xj / inn.len() as f64;
        for &i in inn {
            out[i.index()] += share;
        }
    }
}

/// `out = Pᵀ · x`: `out[j] = (1/|I(j)|) Σ_{i ∈ I(j)} x[i]`. `O(m)`.
pub fn apply_p_transpose(graph: &DiGraph, x: &[f64], out: &mut [f64]) {
    for j in graph.nodes() {
        let inn = graph.in_neighbors(j);
        out[j.index()] = if inn.is_empty() {
            0.0
        } else {
            inn.iter().map(|&i| x[i.index()]).sum::<f64>() / inn.len() as f64
        };
    }
}

/// Exact reverse-walk occupancy distributions from `v`:
/// `out[ℓ] = P^ℓ e_v` for `ℓ = 0..=max_step`. Used by the linearization
/// method's exact-coefficient mode and by tests.
pub fn walk_distributions(graph: &DiGraph, v: NodeId, max_step: usize) -> Vec<Vec<f64>> {
    let n = graph.num_nodes();
    let mut out = Vec::with_capacity(max_step + 1);
    let mut cur = vec![0.0; n];
    cur[v.index()] = 1.0;
    out.push(cur.clone());
    let mut next = vec![0.0; n];
    for _ in 0..max_step {
        apply_p(graph, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
        out.push(cur.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{cycle_graph, star_graph};

    #[test]
    fn dense_matrix_basics() {
        let mut m = DenseMatrix::identity(3);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        m.set(0, 2, 0.5);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.5]);
        let z = DenseMatrix::zeros(3);
        assert_eq!(m.max_abs_diff(&z), 1.0);
    }

    #[test]
    fn apply_p_spreads_over_in_neighbors() {
        // Cycle: I(v) = {v-1}; P e_v = e_{v-1}.
        let g = cycle_graph(4);
        let mut x = vec![0.0; 4];
        x[2] = 1.0;
        let mut out = vec![0.0; 4];
        apply_p(&g, &x, &mut out);
        assert_eq!(out, vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn apply_p_kills_dangling_mass() {
        // Star: I(leaf) = {} — mass on a leaf dies.
        let g = star_graph(3);
        let x = vec![0.0, 1.0, 0.0];
        let mut out = vec![0.0; 3];
        apply_p(&g, &x, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
        // Mass on the hub spreads to its leaves.
        let x = vec![1.0, 0.0, 0.0];
        apply_p(&g, &x, &mut out);
        assert_eq!(out, vec![0.0, 0.5, 0.5]);
    }

    #[test]
    fn transpose_is_adjoint() {
        // <P x, y> == <x, Pᵀ y> for arbitrary vectors.
        let g = star_graph(4);
        let x = vec![0.3, 0.1, 0.4, 0.2];
        let y = vec![0.7, 0.2, 0.5, 0.9];
        let mut px = vec![0.0; 4];
        apply_p(&g, &x, &mut px);
        let mut pty = vec![0.0; 4];
        apply_p_transpose(&g, &y, &mut pty);
        let lhs: f64 = px.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&pty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn walk_distributions_sum_to_at_most_one() {
        let g = star_graph(5);
        let dists = walk_distributions(&g, sling_graph::NodeId(0), 3);
        assert_eq!(dists.len(), 4);
        assert_eq!(dists[0][0], 1.0);
        for d in &dists {
            let mass: f64 = d.iter().sum();
            assert!(mass <= 1.0 + 1e-12);
        }
        // Step 1: uniform over the 4 leaves; step 2: dead (leaves dangling).
        assert!((dists[1][1] - 0.25).abs() < 1e-12);
        assert!(dists[2].iter().all(|&v| v == 0.0));
    }
}
