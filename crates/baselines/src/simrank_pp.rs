//! SimRank++ (Antonellis et al., PVLDB 2008), surveyed in §8.
//!
//! SimRank++ extends SimRank with an *evidence factor* that counters a
//! known artifact: plain SimRank can score pairs with a single shared
//! in-neighbor higher than pairs with many, because averaging dilutes
//! each term. The evidence of a pair grows with the number of common
//! in-neighbors:
//!
//! ```text
//! evidence(u, v) = Σ_{i=1}^{|I(u) ∩ I(v)|} 2^{-i}  =  1 − 2^{-|I(u) ∩ I(v)|}
//! ```
//!
//! and the SimRank++ score is `evidence(u, v) · s(u, v)`. (The full
//! SimRank++ also reweights edges of *weighted* click graphs; this
//! workspace's graphs are unweighted, matching the SLING paper's model,
//! so the evidence factor is the applicable part — the substitution is
//! recorded in `DESIGN.md`.)

use sling_graph::{DiGraph, NodeId};

use crate::matrix::DenseMatrix;
use crate::power::power_simrank;

/// `|I(u) ∩ I(v)|` by sorted-merge over the (sorted) in-neighbor lists.
pub fn common_in_neighbors(graph: &DiGraph, u: NodeId, v: NodeId) -> usize {
    let (a, b) = (graph.in_neighbors(u), graph.in_neighbors(v));
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// The evidence factor `1 − 2^{-|I(u) ∩ I(v)|}` (0 when the pair shares
/// no in-neighbor, approaching 1 geometrically).
pub fn evidence(graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
    let common = common_in_neighbors(graph, u, v);
    if common >= 64 {
        return 1.0;
    }
    1.0 - 0.5f64.powi(common as i32)
}

/// All-pairs SimRank++ scores: `evidence ⊙ SimRank`, with the diagonal
/// kept at 1 (a node is fully similar to itself regardless of evidence).
pub fn simrank_pp(graph: &DiGraph, c: f64, iterations: usize) -> DenseMatrix {
    let n = graph.num_nodes();
    let mut s = power_simrank(graph, c, iterations);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let e = evidence(graph, NodeId::from_index(i), NodeId::from_index(j));
            s.set(i, j, e * s.get(i, j));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{complete_graph, cycle_graph};
    use sling_graph::GraphBuilder;

    const C: f64 = 0.6;

    /// Two "query" nodes pointing at overlapping "ad" nodes, the classic
    /// SimRank++ motivating shape: ads 2,3 are both clicked from query 0
    /// and query 1; ad 4 only from query 1.
    fn click_graph() -> DiGraph {
        let mut b = GraphBuilder::with_nodes(5);
        for (u, v) in [(0u32, 2u32), (0, 3), (1, 2), (1, 3), (1, 4)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn common_neighbor_counting() {
        let g = click_graph();
        // I(2) = {0,1}, I(3) = {0,1}, I(4) = {1}.
        assert_eq!(common_in_neighbors(&g, NodeId(2), NodeId(3)), 2);
        assert_eq!(common_in_neighbors(&g, NodeId(2), NodeId(4)), 1);
        assert_eq!(common_in_neighbors(&g, NodeId(0), NodeId(1)), 0);
    }

    #[test]
    fn evidence_values() {
        let g = click_graph();
        assert_eq!(evidence(&g, NodeId(2), NodeId(3)), 0.75);
        assert_eq!(evidence(&g, NodeId(2), NodeId(4)), 0.5);
        assert_eq!(evidence(&g, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn evidence_saturates() {
        let g = complete_graph(70);
        // 68 common in-neighbors (everyone but the two nodes themselves).
        assert_eq!(evidence(&g, NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn more_shared_evidence_never_hurts_ranking() {
        // The motivating SimRank++ property: with equal SimRank, the pair
        // with more common in-neighbors must rank at least as high.
        let g = click_graph();
        let pp = simrank_pp(&g, C, 20);
        let plain = power_simrank(&g, C, 20);
        // Plain SimRank already distinguishes these, but SimRank++ must
        // amplify the 2-witness pair relative to the 1-witness pair.
        let ratio_pp = pp.get(2, 3) / pp.get(2, 4);
        let ratio_plain = plain.get(2, 3) / plain.get(2, 4);
        assert!(ratio_pp >= ratio_plain, "{ratio_pp} < {ratio_plain}");
    }

    #[test]
    fn diagonal_unchanged_and_bounded() {
        let g = click_graph();
        let pp = simrank_pp(&g, C, 15);
        for i in 0..5 {
            assert_eq!(pp.get(i, i), 1.0);
            for j in 0..5 {
                assert!((0.0..=1.0).contains(&pp.get(i, j)));
                assert!((pp.get(i, j) - pp.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_evidence_zeroes_score() {
        // On a directed cycle no two distinct nodes share an in-neighbor.
        let g = cycle_graph(5);
        let pp = simrank_pp(&g, C, 10);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert_eq!(pp.get(i, j), 0.0);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Weighted SimRank++ (the full Antonellis et al. model)
// ---------------------------------------------------------------------------

use sling_graph::WDiGraph;

/// Spread of a node: `e^{-Var({w(x, i) : x ∈ I(i)})}` — 1 when all edges
/// into `i` carry the same weight, decaying as the weights disagree.
/// SimRank++ uses it to damp similarity transported through neighbors
/// whose edge weights are erratic (noisy click counts).
pub fn spread(wg: &WDiGraph, i: sling_graph::NodeId) -> f64 {
    let weights = wg.in_edges(i).1;
    if weights.len() <= 1 {
        return 1.0;
    }
    let n = weights.len() as f64;
    let mean = weights.iter().sum::<f64>() / n;
    let var = weights
        .iter()
        .map(|&w| (w - mean) * (w - mean))
        .sum::<f64>()
        / n;
    (-var).exp()
}

/// All-pairs weighted SimRank++:
///
/// ```text
/// s(a, b) = evidence(a, b) · c · Σ_{i ∈ I(a)} Σ_{j ∈ I(b)} W(a, i) W(b, j) s(i, j)
/// W(a, i) = spread(i) · w(i, a) / Σ_{i' ∈ I(a)} w(i', a)
/// ```
///
/// by dense power iteration with the diagonal pinned to 1 (the evidence
/// factor is applied once after convergence, as in the original paper).
/// With unit weights every spread is 1 and `W(a, i) = 1/|I(a)|`, so this
/// reduces exactly to [`simrank_pp`].
pub fn weighted_simrank_pp(wg: &WDiGraph, c: f64, iterations: usize) -> DenseMatrix {
    assert!(c > 0.0 && c < 1.0, "decay factor must lie in (0,1)");
    let n = wg.num_nodes();
    // Precompute W(a, i) per in-edge of a.
    let spreads: Vec<f64> = (0..n).map(|i| spread(wg, NodeId::from_index(i))).collect();
    let factors: Vec<Vec<f64>> = (0..n)
        .map(|a| {
            let node = NodeId::from_index(a);
            let (sources, weights) = wg.in_edges(node);
            let total: f64 = weights.iter().sum();
            sources
                .iter()
                .zip(weights)
                .map(|(&i, &w)| spreads[i.index()] * w / total)
                .collect()
        })
        .collect();

    let mut s = DenseMatrix::identity(n);
    let mut next = DenseMatrix::zeros(n);
    for _ in 0..iterations {
        for a in 0..n {
            let (ia, fa) = (wg.in_edges(NodeId::from_index(a)).0, &factors[a]);
            for b in 0..n {
                if a == b {
                    next.set(a, b, 1.0);
                    continue;
                }
                let (ib, fb) = (wg.in_edges(NodeId::from_index(b)).0, &factors[b]);
                let mut sum = 0.0;
                for (x, &i) in ia.iter().enumerate() {
                    let wa = fa[x];
                    if wa == 0.0 {
                        continue;
                    }
                    for (y, &j) in ib.iter().enumerate() {
                        sum += wa * fb[y] * s.get(i.index(), j.index());
                    }
                }
                next.set(a, b, c * sum);
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    // Evidence factor over the unweighted structure.
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let e = evidence_weighted_structure(wg, NodeId::from_index(a), NodeId::from_index(b));
            s.set(a, b, e * s.get(a, b));
        }
    }
    s
}

/// `1 − 2^{-|I(u) ∩ I(v)|}` over a weighted graph's structure.
fn evidence_weighted_structure(wg: &WDiGraph, u: NodeId, v: NodeId) -> f64 {
    let (a, b) = (wg.in_edges(u).0, wg.in_edges(v).0);
    let (mut i, mut j, mut common) = (0, 0, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    if common >= 64 {
        1.0
    } else {
        1.0 - 0.5f64.powi(common as i32)
    }
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use sling_graph::generators::barabasi_albert;
    use sling_graph::{NodeId, WGraphBuilder};

    const C: f64 = 0.6;

    #[test]
    fn unit_weights_reduce_to_unweighted_simrank_pp() {
        let g = barabasi_albert(30, 2, 4).unwrap();
        let wg = WDiGraph::from_digraph(&g);
        let weighted = weighted_simrank_pp(&wg, C, 15);
        let plain = simrank_pp(&g, C, 15);
        for i in 0..30 {
            for j in 0..30 {
                assert!(
                    (weighted.get(i, j) - plain.get(i, j)).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    weighted.get(i, j),
                    plain.get(i, j)
                );
            }
        }
    }

    #[test]
    fn spread_values() {
        let mut b = WGraphBuilder::with_nodes(3);
        b.add_edge(0u32, 2u32, 1.0);
        b.add_edge(1u32, 2u32, 3.0);
        let wg = b.build().unwrap();
        // Weights {1, 3}: mean 2, population variance 1 => spread e^{-1}.
        assert!((spread(&wg, NodeId(2)) - (-1.0f64).exp()).abs() < 1e-12);
        // Single in-edge or none: spread 1.
        assert_eq!(spread(&wg, NodeId(0)), 1.0);
    }

    #[test]
    fn erratic_weights_damp_similarity() {
        // a, b share in-neighbor x; x's own in-weights are either uniform
        // or erratic. Uniform must yield the higher s(a, b).
        let build = |w1: f64, w2: f64| {
            let mut b = WGraphBuilder::with_nodes(5);
            b.add_edge(0u32, 3u32, 1.0); // x -> a
            b.add_edge(0u32, 4u32, 1.0); // x -> b
            b.add_edge(1u32, 0u32, w1); // y -> x
            b.add_edge(2u32, 0u32, w2); // z -> x
            b.build().unwrap()
        };
        let uniform = weighted_simrank_pp(&build(1.0, 1.0), C, 10);
        let erratic = weighted_simrank_pp(&build(0.1, 1.9), C, 10);
        assert!(
            uniform.get(3, 4) > erratic.get(3, 4),
            "uniform {} vs erratic {}",
            uniform.get(3, 4),
            erratic.get(3, 4)
        );
        // Both remain symmetric and in range.
        for m in [&uniform, &erratic] {
            for i in 0..5 {
                for j in 0..5 {
                    assert!((0.0..=1.0).contains(&m.get(i, j)));
                    assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn weight_magnitude_shifts_ranking() {
        // b clicks i heavily, c clicks i lightly; similarity to a (who
        // also clicks i) should favor the heavier co-clicker after
        // normalization. Give each rater a second, private in-edge so the
        // normalized weight of the shared neighbor differs.
        let mut builder = WGraphBuilder::with_nodes(6);
        builder.add_edge(0u32, 1u32, 1.0); // i -> a
        builder.add_edge(0u32, 2u32, 9.0); // i -> b (strong)
        builder.add_edge(0u32, 3u32, 1.0); // i -> c (weak)
        builder.add_edge(4u32, 2u32, 1.0); // noise -> b
        builder.add_edge(5u32, 3u32, 9.0); // noise -> c
        let wg = builder.build().unwrap();
        let s = weighted_simrank_pp(&wg, C, 10);
        assert!(
            s.get(1, 2) > s.get(1, 3),
            "heavy co-click {} should beat light {}",
            s.get(1, 2),
            s.get(1, 3)
        );
    }
}
