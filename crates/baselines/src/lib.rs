//! # sling-baselines
//!
//! The competing SimRank methods the SLING paper evaluates against
//! (§3 and §7), plus the accuracy metrics of its Figures 5–7:
//!
//! * [`power`] — the Jeh–Widom power method (§3.1): exact all-pairs
//!   SimRank in `O(n·m)` time per iteration and `O(n²)` space. The
//!   ground-truth oracle for every accuracy experiment.
//! * [`monte_carlo`] — the Fogaras–Rácz Monte Carlo index (§3.2):
//!   truncated reverse random walks stored per node.
//! * [`mc_sqrt`] — the "revised Monte Carlo" of §4.1: the same index
//!   built from √c-walks, which need no truncation.
//! * [`linearize`] — Maehara et al.'s linearization (§3.3, Appendix A):
//!   a sampled diagonal-correction system solved by Gauss–Seidel, with
//!   `O(mT)` single-pair and single-source queries.
//! * [`coupled`] — the Fogaras–Rácz *coupling* optimization of MC
//!   (zero-storage walks derived from shared hash functions).
//! * [`variants`] — the §8 SimRank variants (P-Rank, PSimRank), the
//!   paper's stated future-work direction.
//! * [`matrix`] — the shared dense-matrix / sparse-operator substrate.
//! * [`metrics`] — max error, S1/S2/S3 grouped errors, top-k precision.

pub mod coupled;
pub mod implicit_d;
pub mod linearize;
pub mod matrix;
pub mod mc_sqrt;
pub mod metrics;
pub mod monte_carlo;
pub mod naive;
pub mod power;
pub mod rolesim;
pub mod simrank_pp;
pub mod variants;

pub use coupled::CoupledMc;
pub use implicit_d::ImplicitD;
pub use linearize::Linearize;
pub use matrix::DenseMatrix;
pub use mc_sqrt::McSqrtIndex;
pub use metrics::{grouped_errors, max_error, top_k_pairs, top_k_precision, GroupedErrors};
pub use monte_carlo::McIndex;
pub use naive::naive_simrank;
pub use power::{iterations_for_error, power_simrank};
pub use rolesim::rolesim;
pub use simrank_pp::{evidence, simrank_pp, spread, weighted_simrank_pp};
pub use variants::{p_rank, PSimRank};
