//! Accuracy metrics for the paper's Figures 5–7.

use crate::matrix::DenseMatrix;

/// Maximum absolute all-pairs error (Figure 5's metric).
pub fn max_error(truth: &DenseMatrix, est: &DenseMatrix) -> f64 {
    truth.max_abs_diff(est)
}

/// Average absolute errors grouped by the magnitude of the ground-truth
/// score (Figure 6): S1 = `[0.1, 1]`, S2 = `[0.01, 0.1)`, S3 = `< 0.01`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GroupedErrors {
    /// Mean error over pairs with truth in `[0.1, 1]`.
    pub s1: f64,
    /// Mean error over pairs with truth in `[0.01, 0.1)`.
    pub s2: f64,
    /// Mean error over pairs with truth `< 0.01`.
    pub s3: f64,
    /// Pair counts per group.
    pub counts: [usize; 3],
}

/// Compute [`GroupedErrors`]. `include_diagonal = false` matches the
/// harness default (diagonal pairs are trivially `s = 1` and the paper's
/// top-k protocol also excludes identical pairs).
pub fn grouped_errors(
    truth: &DenseMatrix,
    est: &DenseMatrix,
    include_diagonal: bool,
) -> GroupedErrors {
    assert_eq!(truth.n(), est.n());
    let n = truth.n();
    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for i in 0..n {
        for j in 0..n {
            if i == j && !include_diagonal {
                continue;
            }
            let t = truth.get(i, j);
            let err = (t - est.get(i, j)).abs();
            let g = if t >= 0.1 {
                0
            } else if t >= 0.01 {
                1
            } else {
                2
            };
            sums[g] += err;
            counts[g] += 1;
        }
    }
    let avg = |g: usize| {
        if counts[g] == 0 {
            0.0
        } else {
            sums[g] / counts[g] as f64
        }
    };
    GroupedErrors {
        s1: avg(0),
        s2: avg(1),
        s3: avg(2),
        counts,
    }
}

/// The `k` unordered node pairs `(i < j)` with the highest scores,
/// identical-node pairs excluded (the paper's Figure 7 protocol).
/// Ties break toward lexicographically smaller pairs for determinism.
pub fn top_k_pairs(m: &DenseMatrix, k: usize) -> Vec<(u32, u32)> {
    let n = m.n();
    let mut pairs: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let s = m.get(i, j);
            if s > 0.0 {
                pairs.push((s, i as u32, j as u32));
            }
        }
    }
    let k = k.min(pairs.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &(f64, u32, u32), b: &(f64, u32, u32)| {
        b.0.partial_cmp(&a.0)
            .unwrap()
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    };
    if k < pairs.len() {
        pairs.select_nth_unstable_by(k - 1, cmp);
        pairs.truncate(k);
    }
    pairs.sort_unstable_by(cmp);
    pairs.into_iter().map(|(_, i, j)| (i, j)).collect()
}

/// Fraction of the estimated top-k pairs that appear in the ground-truth
/// top-k (Figure 7's precision metric).
pub fn top_k_precision(truth: &DenseMatrix, est: &DenseMatrix, k: usize) -> f64 {
    let t: std::collections::HashSet<(u32, u32)> = top_k_pairs(truth, k).into_iter().collect();
    if t.is_empty() {
        return 1.0;
    }
    let e = top_k_pairs(est, k);
    let hits = e.iter().filter(|p| t.contains(p)).count();
    hits as f64 / t.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(vals: &[&[f64]]) -> DenseMatrix {
        let n = vals.len();
        let mut m = DenseMatrix::zeros(n);
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    #[test]
    fn max_error_is_max_abs_diff() {
        let a = matrix(&[&[1.0, 0.2], &[0.2, 1.0]]);
        let b = matrix(&[&[1.0, 0.25], &[0.15, 1.0]]);
        assert!((max_error(&a, &b) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn grouped_errors_bucket_correctly() {
        // truth: one S1 pair (0.5), one S2 pair (0.05), one S3 pair (0.001)
        let truth = matrix(&[&[1.0, 0.5, 0.05], &[0.5, 1.0, 0.001], &[0.05, 0.001, 1.0]]);
        let mut est = truth.clone();
        est.set(0, 1, 0.4); // S1 err 0.1 (both orientations)
        est.set(1, 0, 0.4);
        est.set(0, 2, 0.06); // S2 err 0.01
        est.set(2, 0, 0.06);
        let g = grouped_errors(&truth, &est, false);
        assert_eq!(g.counts, [2, 2, 2]);
        assert!((g.s1 - 0.1).abs() < 1e-12);
        assert!((g.s2 - 0.01).abs() < 1e-12);
        assert!(g.s3.abs() < 1e-12);
        // Diagonal inclusion adds 3 exact S1 pairs.
        let g2 = grouped_errors(&truth, &est, true);
        assert_eq!(g2.counts[0], 5);
        assert!(g2.s1 < g.s1);
    }

    #[test]
    fn top_k_pairs_excludes_diagonal_and_sorts() {
        let m = matrix(&[&[1.0, 0.9, 0.1], &[0.9, 1.0, 0.5], &[0.1, 0.5, 1.0]]);
        let top = top_k_pairs(&m, 2);
        assert_eq!(top, vec![(0, 1), (1, 2)]);
        let all = top_k_pairs(&m, 100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn precision_full_and_partial() {
        let truth = matrix(&[&[1.0, 0.9, 0.1], &[0.9, 1.0, 0.5], &[0.1, 0.5, 1.0]]);
        assert_eq!(top_k_precision(&truth, &truth, 2), 1.0);
        // An estimate that swaps the order of the top pairs still has
        // perfect set precision at k=2, but not at k=1.
        let mut est = truth.clone();
        est.set(0, 1, 0.4);
        est.set(1, 0, 0.4);
        assert_eq!(top_k_precision(&truth, &est, 2), 1.0);
        assert_eq!(top_k_precision(&truth, &est, 1), 0.0);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let z = DenseMatrix::zeros(3);
        assert!(top_k_pairs(&z, 5).is_empty());
        assert_eq!(top_k_precision(&z, &z, 5), 1.0);
    }
}
