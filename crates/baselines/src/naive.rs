//! The original Jeh–Widom all-pairs algorithm (§3.1's first citation).
//!
//! Evaluates Eq. (1) directly each iteration:
//!
//! ```text
//! S(i, j) ← c / (|I(i)|·|I(j)|) · Σ_{k ∈ I(i), ℓ ∈ I(j)} S(k, ℓ)
//! ```
//!
//! costing `O(Σ_{i,j} |I(i)|·|I(j)|) = O((Σ_i |I(i)|)²) = O(m²)` per
//! iteration — the `O(m² log 1/ε)` total the paper quotes — versus the
//! `O(n·m)` per iteration of the optimized [`crate::power`] formulation.
//! Kept as (a) a faithful reproduction of the paper's historical baseline
//! and (b) an independent oracle the optimized power method is tested
//! against: the two must agree to floating-point round-off at every
//! iteration count.

use sling_graph::{DiGraph, NodeId};

use crate::matrix::DenseMatrix;

/// Run `iterations` of the direct Eq. (1) iteration from `S⁽⁰⁾ = I`.
pub fn naive_simrank(graph: &DiGraph, c: f64, iterations: usize) -> DenseMatrix {
    assert!(c > 0.0 && c < 1.0, "decay factor must lie in (0,1)");
    let n = graph.num_nodes();
    let mut s = DenseMatrix::identity(n);
    let mut next = DenseMatrix::zeros(n);
    for _ in 0..iterations {
        for i in 0..n {
            let in_i = graph.in_neighbors(NodeId::from_index(i));
            for j in 0..n {
                let value = if i == j {
                    1.0
                } else {
                    let in_j = graph.in_neighbors(NodeId::from_index(j));
                    if in_i.is_empty() || in_j.is_empty() {
                        0.0
                    } else {
                        let mut sum = 0.0;
                        for &k in in_i {
                            for &l in in_j {
                                sum += s.get(k.index(), l.index());
                            }
                        }
                        c * sum / (in_i.len() * in_j.len()) as f64
                    }
                };
                next.set(i, j, value);
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{iterations_for_error, power_simrank};
    use sling_graph::generators::{
        barabasi_albert, complete_graph, cycle_graph, star_graph, two_cliques_bridge,
    };

    const C: f64 = 0.6;

    #[test]
    fn agrees_with_optimized_power_method_exactly() {
        for g in [
            cycle_graph(5),
            star_graph(5),
            complete_graph(4),
            two_cliques_bridge(3),
            barabasi_albert(25, 2, 2).unwrap(),
        ] {
            for iters in [1, 3, 8] {
                let a = naive_simrank(&g, C, iters);
                let b = power_simrank(&g, C, iters);
                assert!(
                    a.max_abs_diff(&b) < 1e-10,
                    "diverged at {iters} iters: {}",
                    a.max_abs_diff(&b)
                );
            }
        }
    }

    #[test]
    fn converges_to_closed_form_on_complete_graph() {
        // Fixed point on K_n: s = c(n-2) / ((1-c)(n-1)² + c(n-2)).
        let n = 5;
        let g = complete_graph(n);
        let iters = iterations_for_error(C, 1e-6);
        let s = naive_simrank(&g, C, iters);
        let nf = (n - 1) as f64;
        let expect = C * (nf - 1.0) / ((1.0 - C) * nf * nf + C * (nf - 1.0));
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { expect };
                assert!((s.get(i, j) - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn symmetric_and_bounded() {
        let g = barabasi_albert(20, 2, 6).unwrap();
        let s = naive_simrank(&g, C, 10);
        for i in 0..20 {
            assert_eq!(s.get(i, i), 1.0);
            for j in 0..20 {
                let v = s.get(i, j);
                assert!((0.0..=1.0).contains(&v));
                assert!((v - s.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = cycle_graph(4);
        let s = naive_simrank(&g, C, 0);
        assert!(s.max_abs_diff(&DenseMatrix::identity(4)) == 0.0);
    }
}
