//! The linearization method of Maehara et al. (§3.3, Appendix A).
//!
//! Preprocessing estimates the diagonal correction matrix `D` from the
//! truncated linear system (Eq. 19)
//!
//! ```text
//! Σ_{ℓ=0}^{T} Σ_i c^ℓ (p̃⁽ℓ⁾_{k,i})² D(i,i) = 1      for all k,
//! ```
//!
//! with the reverse-walk probabilities `p̃` estimated from `R` sampled
//! walks per node, and solves it with `L` Gauss–Seidel sweeps. Queries
//! then evaluate the truncated Eq. (10) series in `O(mT)`.
//!
//! As the paper's Appendix A details (and our Figure 8 unit test
//! demonstrates), the coefficient matrix need not be diagonally dominant,
//! Gauss–Seidel need not converge, and the sampled `p̃` carry unanalyzed
//! error — so this method offers **no worst-case accuracy guarantee**.
//! It is reproduced here exactly because the paper's evaluation hinges on
//! that contrast.

use rand::RngExt;
use sling_graph::{DiGraph, FxHashMap, NodeId};

use crate::matrix::{apply_p, apply_p_transpose, walk_distributions, DenseMatrix};
use crate::mc_sqrt::stream_rng;

/// Parameters of the linearization method. Paper defaults (§7.1):
/// `T = 11`, `R = 100`, `L = 3`.
#[derive(Clone, Debug)]
pub struct LinearizeConfig {
    /// Decay factor `c`.
    pub c: f64,
    /// Series truncation `T`.
    pub t: usize,
    /// Reverse walks per node `R` used to estimate `p̃`.
    pub walks: usize,
    /// Gauss–Seidel sweeps `L`.
    pub sweeps: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Use exact walk distributions instead of sampling (feasible only on
    /// small graphs; used by tests and the Figure 8 analysis).
    pub exact_coefficients: bool,
}

impl LinearizeConfig {
    /// The paper's recommended setting.
    pub fn paper_defaults(c: f64) -> Self {
        LinearizeConfig {
            c,
            t: 11,
            walks: 100,
            sweeps: 3,
            seed: 0x11e4,
            exact_coefficients: false,
        }
    }
}

/// The linearization index: just the estimated diagonal `D̃` (`O(n)`
/// space — the method's key advantage in Figure 4).
#[derive(Clone, Debug)]
pub struct Linearize {
    c: f64,
    t: usize,
    d: Vec<f64>,
    num_nodes: usize,
}

impl Linearize {
    /// Estimate `D̃` (Appendix A pipeline).
    pub fn build(graph: &DiGraph, config: &LinearizeConfig) -> Self {
        assert!(config.c > 0.0 && config.c < 1.0);
        let n = graph.num_nodes();
        // Sparse coefficient rows M(k, ·) = Σ_ℓ c^ℓ p̃(ℓ)_{k,·}².
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
        for k in graph.nodes() {
            acc.clear();
            if config.exact_coefficients {
                let dists = walk_distributions(graph, k, config.t);
                for (l, dist) in dists.iter().enumerate() {
                    let cl = config.c.powi(l as i32);
                    for (i, &p) in dist.iter().enumerate() {
                        if p > 0.0 {
                            *acc.entry(i as u32).or_insert(0.0) += cl * p * p;
                        }
                    }
                }
            } else {
                // Empirical p̃ from R truncated reverse walks: count visits
                // per (step, node), square the frequencies.
                let mut counts: Vec<FxHashMap<u32, u32>> = vec![FxHashMap::default(); config.t + 1];
                for w in 0..config.walks {
                    let mut rng =
                        stream_rng(config.seed, (k.0 as u64) * config.walks as u64 + w as u64);
                    let mut cur = k;
                    *counts[0].entry(cur.0).or_insert(0) += 1;
                    for step in 1..=config.t {
                        let inn = graph.in_neighbors(cur);
                        if inn.is_empty() {
                            break;
                        }
                        cur = inn[rng.random_range(0..inn.len())];
                        *counts[step].entry(cur.0).or_insert(0) += 1;
                    }
                }
                let r = config.walks as f64;
                for (l, level) in counts.iter().enumerate() {
                    let cl = config.c.powi(l as i32);
                    for (&i, &cnt) in level {
                        let p = cnt as f64 / r;
                        *acc.entry(i).or_insert(0.0) += cl * p * p;
                    }
                }
            }
            let mut row: Vec<(u32, f64)> = acc.iter().map(|(&i, &v)| (i, v)).collect();
            row.sort_unstable_by_key(|&(i, _)| i);
            rows.push(row);
        }

        // Gauss–Seidel on M · diag = 1.
        let mut d = vec![1.0 - config.c; n];
        for _ in 0..config.sweeps {
            for k in 0..n {
                let mut off = 0.0;
                let mut diag = 1.0; // p(0)_{k,k} = 1 contributes exactly 1
                for &(i, m) in &rows[k] {
                    if i as usize == k {
                        diag = m;
                    } else {
                        off += m * d[i as usize];
                    }
                }
                if diag > 0.0 {
                    d[k] = (1.0 - off) / diag;
                }
            }
        }
        Linearize {
            c: config.c,
            t: config.t,
            d,
            num_nodes: n,
        }
    }

    /// The estimated diagonal `D̃`.
    pub fn diagonal(&self) -> &[f64] {
        &self.d
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Index bytes: the diagonal only.
    pub fn resident_bytes(&self) -> usize {
        self.d.len() * 8
    }

    /// Single-pair query: truncated Eq. (10), `O(mT)`.
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
        let n = self.num_nodes;
        let mut x = vec![0.0; n];
        x[u.index()] = 1.0;
        let mut y = vec![0.0; n];
        y[v.index()] = 1.0;
        let mut xn = vec![0.0; n];
        let mut yn = vec![0.0; n];
        let mut s = 0.0;
        for l in 0..=self.t {
            let cl = self.c.powi(l as i32);
            let dot: f64 = x
                .iter()
                .zip(&y)
                .zip(&self.d)
                .map(|((&a, &b), &dk)| a * dk * b)
                .sum();
            s += cl * dot;
            if l < self.t {
                apply_p(graph, &x, &mut xn);
                std::mem::swap(&mut x, &mut xn);
                apply_p(graph, &y, &mut yn);
                std::mem::swap(&mut y, &mut yn);
            }
        }
        s
    }

    /// Single-source query via the Horner recursion
    /// `r_ℓ = D x_ℓ + c Pᵀ r_{ℓ+1}` over the stored distributions
    /// `x_ℓ = P^ℓ e_u`; total `O(mT)` after `O(nT)` buffering.
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Vec<f64> {
        let n = self.num_nodes;
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(self.t + 1);
        let mut x = vec![0.0; n];
        x[u.index()] = 1.0;
        xs.push(x.clone());
        let mut next = vec![0.0; n];
        for _ in 0..self.t {
            apply_p(graph, &x, &mut next);
            std::mem::swap(&mut x, &mut next);
            xs.push(x.clone());
        }
        let mut r = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        for l in (0..=self.t).rev() {
            // r = D x_l + c Pᵀ r
            apply_p_transpose(graph, &r, &mut tmp);
            for i in 0..n {
                r[i] = self.d[i] * xs[l][i] + self.c * tmp[i];
            }
        }
        r
    }
}

/// Exact coefficient matrix `M` of the (truncated) linear system — dense,
/// for small-graph analysis such as the paper's Figure 8.
pub fn coefficient_matrix(graph: &DiGraph, c: f64, t: usize) -> DenseMatrix {
    let n = graph.num_nodes();
    let mut m = DenseMatrix::zeros(n);
    for k in graph.nodes() {
        let dists = walk_distributions(graph, k, t);
        for (l, dist) in dists.iter().enumerate() {
            let cl = c.powi(l as i32);
            for (i, &p) in dist.iter().enumerate() {
                if p > 0.0 {
                    let cur = m.get(k.index(), i);
                    m.set(k.index(), i, cur + cl * p * p);
                }
            }
        }
    }
    m
}

/// Row diagonal dominance: `|M(i,i)| ≥ Σ_{j≠i} |M(i,j)|` for every row —
/// the condition under which Gauss–Seidel is guaranteed to converge.
pub fn is_diagonally_dominant(m: &DenseMatrix) -> bool {
    let n = m.n();
    (0..n).all(|i| {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
        m.get(i, i).abs() >= off
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    fn exact_cfg() -> LinearizeConfig {
        LinearizeConfig {
            exact_coefficients: true,
            t: 25,
            sweeps: 30,
            ..LinearizeConfig::paper_defaults(C)
        }
    }

    #[test]
    fn exact_mode_recovers_simrank_on_well_conditioned_graphs() {
        for g in [complete_graph(5), two_cliques_bridge(4)] {
            let lin = Linearize::build(&g, &exact_cfg());
            let truth = power_simrank(&g, C, 80);
            let n = g.num_nodes();
            for i in 0..n {
                for j in 0..n {
                    let est = lin.single_pair(&g, NodeId(i as u32), NodeId(j as u32));
                    assert!(
                        (est - truth.get(i, j)).abs() < 0.01,
                        "({i},{j}) est {est} truth {}",
                        truth.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_mode_is_close_but_unguaranteed() {
        let g = two_cliques_bridge(4);
        let lin = Linearize::build(&g, &LinearizeConfig::paper_defaults(C));
        let truth = power_simrank(&g, C, 60);
        // Paper-default sampling should land in the right ballpark on an
        // easy graph (no formal bound — that's the method's weakness).
        let est = lin.single_pair(&g, NodeId(0), NodeId(1));
        assert!((est - truth.get(0, 1)).abs() < 0.1);
    }

    #[test]
    fn single_source_matches_pairwise_queries() {
        let g = two_cliques_bridge(4);
        let lin = Linearize::build(&g, &exact_cfg());
        for u in [0u32, 3, 7] {
            let row = lin.single_source(&g, NodeId(u));
            for v in 0..g.num_nodes() as u32 {
                let pair = lin.single_pair(&g, NodeId(u), NodeId(v));
                assert!(
                    (row[v as usize] - pair).abs() < 1e-10,
                    "({u},{v}): row {} pair {pair}",
                    row[v as usize]
                );
            }
        }
    }

    #[test]
    fn figure8_cycle_not_diagonally_dominant() {
        // The paper's Figure 8 adversarial case: a 4-cycle at c = 0.6.
        // M(k, k-ℓ mod 4) = c^ℓ / (1 - c⁴): off-diagonal mass
        // (c + c² + c³)/(1-c⁴) ≈ 1.351 exceeds the diagonal 1/(1-c⁴)·1
        // ≈ 1.149.
        let g = cycle_graph(4);
        let m = coefficient_matrix(&g, C, 400);
        let diag = 1.0 / (1.0 - C.powi(4));
        assert!((m.get(0, 0) - diag).abs() < 1e-6);
        assert!((m.get(0, 3) - C * diag).abs() < 1e-6, "{}", m.get(0, 3));
        assert!(!is_diagonally_dominant(&m));
        // A complete graph, by contrast, is fine.
        let m2 = coefficient_matrix(&complete_graph(5), C, 60);
        assert!(is_diagonally_dominant(&m2));
    }

    #[test]
    fn diagonal_stays_finite_even_on_the_adversarial_cycle() {
        // Gauss-Seidel may converge slowly or oscillate; the implementation
        // must still terminate and produce finite values.
        let g = cycle_graph(4);
        let lin = Linearize::build(&g, &exact_cfg());
        assert!(lin.diagonal().iter().all(|d| d.is_finite()));
    }

    #[test]
    fn resident_bytes_is_linear_in_n() {
        let g = two_cliques_bridge(6);
        let lin = Linearize::build(&g, &LinearizeConfig::paper_defaults(C));
        assert_eq!(lin.resident_bytes(), g.num_nodes() * 8);
    }
}
