//! The "revised Monte Carlo" method of §4.1: the Fogaras–Rácz index
//! rebuilt on √c-walks.
//!
//! Because a √c-walk halts on its own (expected length `1/(1−√c)`), no
//! truncation is needed and the `log(1/ε)` walk-length factor disappears
//! from every bound — the paper presents this as the stepping stone
//! between classic MC and SLING. A pair of stored walks "meets" if they
//! share a node at the same step index; the meeting *indicator* (not
//! `c^τ`) estimates `s(u, v)` directly by Lemma 3.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sling_graph::{DiGraph, NodeId};

/// Deterministic per-(seed, stream) RNG shared by the MC baselines.
pub(crate) fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

/// Index of `n_w` complete √c-walks per node, stored contiguously with a
/// per-walk offset table (walks have variable length).
#[derive(Clone, Debug)]
pub struct McSqrtIndex {
    walks_per_node: usize,
    /// Offsets into `steps`; walk `w` of node `v` is
    /// `steps[offsets[v*n_w + w] .. offsets[v*n_w + w + 1]]`.
    offsets: Vec<u64>,
    steps: Vec<u32>,
    num_nodes: usize,
}

impl McSqrtIndex {
    /// Sample and store the walks.
    pub fn build(graph: &DiGraph, c: f64, walks_per_node: usize, seed: u64) -> Self {
        assert!(c > 0.0 && c < 1.0);
        assert!(walks_per_node > 0);
        let sqrt_c = c.sqrt();
        let n = graph.num_nodes();
        let mut offsets = Vec::with_capacity(n * walks_per_node + 1);
        let mut steps: Vec<u32> = Vec::new();
        offsets.push(0);
        for v in graph.nodes() {
            for w in 0..walks_per_node {
                let mut rng = stream_rng(seed, (v.0 as u64) * walks_per_node as u64 + w as u64);
                let mut cur = v;
                steps.push(cur.0);
                loop {
                    if rng.random::<f64>() >= sqrt_c {
                        break;
                    }
                    let inn = graph.in_neighbors(cur);
                    if inn.is_empty() {
                        break;
                    }
                    cur = inn[rng.random_range(0..inn.len())];
                    steps.push(cur.0);
                }
                offsets.push(steps.len() as u64);
            }
        }
        McSqrtIndex {
            walks_per_node,
            offsets,
            steps,
            num_nodes: n,
        }
    }

    /// Number of nodes indexed.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Index bytes.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.steps.len() * 4
    }

    /// Average stored walk length (diagnostic; ≈ `1/(1−√c)`).
    pub fn avg_walk_length(&self) -> f64 {
        self.steps.len() as f64 / (self.num_nodes * self.walks_per_node) as f64
    }

    #[inline]
    fn walk(&self, v: NodeId, w: usize) -> &[u32] {
        let idx = v.index() * self.walks_per_node + w;
        &self.steps[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// Single-pair estimate: fraction of walk pairs that meet (Lemma 3).
    pub fn single_pair(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut hits = 0usize;
        for w in 0..self.walks_per_node {
            let wu = self.walk(u, w);
            let wv = self.walk(v, w);
            let len = wu.len().min(wv.len());
            if wu[..len].iter().zip(&wv[..len]).any(|(a, b)| a == b) {
                hits += 1;
            }
        }
        hits as f64 / self.walks_per_node as f64
    }

    /// Single-source query: `n` single-pair evaluations.
    pub fn single_source(&self, u: NodeId) -> Vec<f64> {
        (0..self.num_nodes as u32)
            .map(|v| self.single_pair(u, NodeId(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    #[test]
    fn walk_lengths_concentrate_around_expectation() {
        let g = complete_graph(8);
        let idx = McSqrtIndex::build(&g, C, 200, 3);
        let expected = 1.0 / (1.0 - C.sqrt());
        assert!(
            (idx.avg_walk_length() - expected).abs() < 0.3,
            "avg {} expected {expected}",
            idx.avg_walk_length()
        );
    }

    #[test]
    fn accuracy_against_ground_truth() {
        let g = two_cliques_bridge(4);
        let truth = power_simrank(&g, C, 60);
        let idx = McSqrtIndex::build(&g, C, 5000, 17);
        let n = g.num_nodes();
        for i in 0..n {
            for j in 0..n {
                let est = idx.single_pair(NodeId(i as u32), NodeId(j as u32));
                assert!(
                    (est - truth.get(i, j)).abs() <= 0.04,
                    "({i},{j}) est {est} truth {}",
                    truth.get(i, j)
                );
            }
        }
    }

    #[test]
    fn no_truncation_bias_on_cycle() {
        let g = cycle_graph(5);
        let idx = McSqrtIndex::build(&g, C, 300, 5);
        assert_eq!(idx.single_pair(NodeId(0), NodeId(2)), 0.0);
        assert_eq!(idx.single_pair(NodeId(1), NodeId(1)), 1.0);
    }

    #[test]
    fn deterministic_and_single_source_consistent() {
        let g = two_cliques_bridge(3);
        let a = McSqrtIndex::build(&g, C, 64, 9);
        let b = McSqrtIndex::build(&g, C, 64, 9);
        assert_eq!(a.steps, b.steps);
        let row = a.single_source(NodeId(0));
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(row[v as usize], a.single_pair(NodeId(0), NodeId(v)));
        }
    }
}
