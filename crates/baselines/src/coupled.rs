//! The Fogaras–Rácz *coupling* optimization of the Monte Carlo method
//! (mentioned in §3.2 of the SLING paper as the trick that makes classic
//! MC practical).
//!
//! Instead of storing `n·n_w` independent walks, the coupled scheme
//! derives every walk from shared per-`(walk index, step)` random
//! functions `σ_{w,ℓ}(v) = a uniform in-neighbor of v`. Any two walks
//! evolve independently *until they meet* (before meeting, σ is evaluated
//! at distinct arguments, which are independent uniform draws) and merge
//! permanently afterwards — so the pairwise first-meeting distribution,
//! and hence `E[c^τ] = s(u, v)`, is unchanged, while the "index" shrinks
//! to a single seed: σ is recomputed on demand by hashing
//! `(seed, w, ℓ, v)`. Preprocessing becomes free and space `O(1)`,
//! trading query time `O(n_w · t)` per pair.

use sling_graph::{DiGraph, NodeId};

/// Zero-storage coupled Monte Carlo estimator.
#[derive(Clone, Copy, Debug)]
pub struct CoupledMc {
    c: f64,
    walks: usize,
    truncation: usize,
    seed: u64,
}

#[inline]
fn mix(seed: u64, w: u64, step: u64, v: u64) -> u64 {
    // SplitMix64-style avalanche over the tuple.
    let mut z = seed
        ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ step.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ v.wrapping_mul(0x1656_67b1_9e37_79f9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CoupledMc {
    /// New estimator; nothing is precomputed.
    pub fn new(c: f64, walks: usize, truncation: usize, seed: u64) -> Self {
        assert!(c > 0.0 && c < 1.0);
        assert!(walks > 0 && truncation > 0);
        CoupledMc {
            c,
            walks,
            truncation,
            seed,
        }
    }

    /// The shared random function σ_{w,ℓ}: one coupled reverse-walk step.
    #[inline]
    fn sigma(&self, graph: &DiGraph, w: usize, step: usize, v: NodeId) -> Option<NodeId> {
        let inn = graph.in_neighbors(v);
        if inn.is_empty() {
            return None;
        }
        let h = mix(self.seed, w as u64, step as u64, v.0 as u64);
        Some(inn[(h % inn.len() as u64) as usize])
    }

    /// Single-pair estimate `(1/n_w) Σ_w c^{τ_w}` with walks derived from
    /// the shared random functions.
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut total = 0.0;
        for w in 0..self.walks {
            let (mut a, mut b) = (u, v);
            for step in 0..self.truncation {
                match (self.sigma(graph, w, step, a), self.sigma(graph, w, step, b)) {
                    (Some(x), Some(y)) => {
                        if x == y {
                            total += self.c.powi(step as i32 + 1);
                            break;
                        }
                        a = x;
                        b = y;
                    }
                    _ => break,
                }
            }
        }
        total / self.walks as f64
    }

    /// Single-source estimate: one coupled evolution of *all* n walk
    /// frontiers per walk index. Because walks merge permanently, each
    /// step costs at most one σ evaluation per distinct frontier node —
    /// the storage/work saving the coupling was invented for.
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Vec<f64> {
        let n = graph.num_nodes();
        let mut scores = vec![0.0; n];
        scores[u.index()] = 1.0;
        // pos[v] = current node of v's walk (usize::MAX = dead).
        let mut pos: Vec<u32> = Vec::with_capacity(n);
        for w in 0..self.walks {
            pos.clear();
            pos.extend(0..n as u32);
            let mut u_pos = u.0;
            let mut resolved = vec![false; n];
            resolved[u.index()] = true;
            for step in 0..self.truncation {
                u_pos = match self.sigma(graph, w, step, NodeId(u_pos)) {
                    Some(x) => x.0,
                    // u's walk died: no pair can meet afterwards.
                    None => break,
                };
                let weight = self.c.powi(step as i32 + 1);
                for v in 0..n {
                    if resolved[v] {
                        continue;
                    }
                    let cur = pos[v];
                    if cur == u32::MAX {
                        continue;
                    }
                    match self.sigma(graph, w, step, NodeId(cur)) {
                        Some(x) => {
                            pos[v] = x.0;
                            if x.0 == u_pos {
                                scores[v] += weight / self.walks as f64;
                                resolved[v] = true;
                            }
                        }
                        None => pos[v] = u32::MAX,
                    }
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    #[test]
    fn zero_preprocessing_and_deterministic() {
        let g = two_cliques_bridge(4);
        let a = CoupledMc::new(C, 200, 10, 9);
        let b = CoupledMc::new(C, 200, 10, 9);
        assert_eq!(
            a.single_pair(&g, NodeId(0), NodeId(1)),
            b.single_pair(&g, NodeId(0), NodeId(1))
        );
        assert_eq!(std::mem::size_of::<CoupledMc>(), 32); // the whole "index"
    }

    #[test]
    fn unbiased_on_toy_graphs() {
        for g in [complete_graph(5), two_cliques_bridge(4)] {
            let truth = power_simrank(&g, C, 60);
            let est = CoupledMc::new(C, 6000, 14, 3);
            for (u, v) in [(0u32, 1u32), (1, 3), (2, 4)] {
                let s = est.single_pair(&g, NodeId(u), NodeId(v));
                let t = truth.get(u as usize, v as usize);
                assert!((s - t).abs() <= 0.05, "({u},{v}): est {s} truth {t}");
            }
        }
    }

    #[test]
    fn cycle_never_meets() {
        let g = cycle_graph(6);
        let est = CoupledMc::new(C, 100, 20, 1);
        assert_eq!(est.single_pair(&g, NodeId(0), NodeId(3)), 0.0);
        assert_eq!(est.single_pair(&g, NodeId(2), NodeId(2)), 1.0);
    }

    #[test]
    fn single_source_matches_pairwise() {
        let g = two_cliques_bridge(3);
        let est = CoupledMc::new(C, 500, 10, 7);
        let row = est.single_source(&g, NodeId(1));
        for v in 0..g.num_nodes() as u32 {
            let pair = est.single_pair(&g, NodeId(1), NodeId(v));
            assert!(
                (row[v as usize] - pair).abs() < 1e-12,
                "node {v}: row {} pair {pair}",
                row[v as usize]
            );
        }
    }

    #[test]
    fn merged_walks_stay_merged() {
        // Once two coupled walks meet, sigma evaluates identically at the
        // shared position forever: c^tau counts only the FIRST meeting,
        // and estimates never exceed what independent walks could give on
        // a graph where meeting implies staying together.
        let g = complete_graph(4);
        let est = CoupledMc::new(C, 2000, 12, 5);
        let s = est.single_pair(&g, NodeId(0), NodeId(1));
        assert!(s > 0.0 && s < 1.0);
    }
}
