//! Implicit-D linearization (Yu & McCann-style), §3.3 of the paper.
//!
//! Maehara et al.'s linearization pre-computes an *approximate* diagonal
//! correction matrix `D̃` with no error guarantee (Appendix A). The paper
//! notes that Yu and McCann partially fix this with a variant that "does
//! not pre-compute the diagonal correction matrix D, but implicitly
//! derives D during query processing", restoring the ε worst-case
//! guarantee at the cost of `O(mn log 1/ε)` single-pair queries.
//!
//! This module implements that idea through the paper's own machinery.
//! Every query is a bilinear form `aᵀ S b` which Lemma 2 expands as
//!
//! ```text
//! aᵀ S b = Σ_ℓ c^ℓ (P^ℓ a)ᵀ D (P^ℓ b)
//! ```
//!
//! needing `d_k` only where the propagated supports overlap. Each `d_k`
//! is in turn derived *on demand* from Eq. (14),
//!
//! ```text
//! d_k = 1 − c/|I(k)| − (c/|I(k)|²) Σ_{i≠j ∈ I(k)} s(i, j),
//! ```
//!
//! whose sum is itself one aggregated bilinear form `1_{I(k)}ᵀ S 1_{I(k)}`
//! — not `|I(k)|²` separate queries. The recursion's weight decays by `c`
//! per level, so it is truncated at a depth budget: exhausted budgets fall
//! back to the optimistic bound `d_k ≈ 1 − c/|I(k)|` (error at most `c`,
//! incurred only at weight `≤ c^T`). Computed `d_k` values are memoized
//! together with the budget they were computed at, and recomputed only
//! when a later query needs more precision.
//!
//! The result is deterministic, needs no index and no Gauss–Seidel solve
//! (so Figure 8's divergence case cannot occur), and empirically lands
//! well within ε of the power-method ground truth (see tests). Worst-case
//! cost is `O(m · T)` per bilinear form and at most `n` memoized forms —
//! the `O(mn log 1/ε)` the paper cites.

use sling_graph::{DiGraph, NodeId};

/// Depth budget sufficient for additive error `eps`: the smallest `T`
/// with `(T + 2)² · c^{T+1} / (1 − c) ≤ eps` (a conservative bound on the
/// combined truncation + fallback error; see module docs).
pub fn depth_for_error(c: f64, eps: f64) -> u32 {
    assert!(c > 0.0 && c < 1.0 && eps > 0.0 && eps < 1.0);
    let mut t = 1u32;
    while ((t + 2) as f64).powi(2) * c.powi(t as i32 + 1) / (1.0 - c) > eps {
        t += 1;
        if t > 500 {
            break; // eps pathologically small; cap the budget
        }
    }
    t
}

/// Index-free SimRank oracle with implicit on-demand correction factors.
pub struct ImplicitD<'g> {
    graph: &'g DiGraph,
    c: f64,
    budget: i32,
    /// Per-node memo: `(value, budget_it_was_computed_at)`.
    memo: std::cell::RefCell<Vec<(f64, i32)>>,
}

impl<'g> ImplicitD<'g> {
    /// Oracle for decay `c` and additive error target `eps`.
    pub fn new(graph: &'g DiGraph, c: f64, eps: f64) -> Self {
        let budget = depth_for_error(c, eps) as i32;
        ImplicitD {
            graph,
            c,
            budget,
            memo: std::cell::RefCell::new(vec![(0.0, i32::MIN); graph.num_nodes()]),
        }
    }

    /// The recursion depth budget in use.
    pub fn budget(&self) -> i32 {
        self.budget
    }

    /// `s(u, v)` with the oracle's error target.
    pub fn single_pair(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut a = vec![0.0; self.graph.num_nodes()];
        let mut b = vec![0.0; self.graph.num_nodes()];
        a[u.index()] = 1.0;
        b[v.index()] = 1.0;
        self.bilinear(a, b, self.budget).clamp(0.0, 1.0)
    }

    /// `s(u, v)` for every `v` (diagonal pinned to 1).
    pub fn single_source(&self, u: NodeId) -> Vec<f64> {
        let n = self.graph.num_nodes();
        let t = self.budget.max(0) as usize;
        // Forward pass: x_ℓ = P^ℓ e_u for ℓ = 0..=T.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(t + 1);
        let mut x = vec![0.0; n];
        x[u.index()] = 1.0;
        xs.push(x.clone());
        for _ in 0..t {
            x = self.propagate_p(&x);
            xs.push(x.clone());
        }
        // Horner backward pass: acc = (d ⊙ x_T); acc = (d ⊙ x_ℓ) + c·Pᵀacc.
        let mut acc = vec![0.0; n];
        for l in (0..=t).rev() {
            let db = self.budget - l as i32 - 1;
            let mut term = self.propagate_pt(&acc);
            for (k, dst) in term.iter_mut().enumerate() {
                *dst *= self.c;
                let xv = xs[l][k];
                if xv != 0.0 {
                    *dst += xv * self.d(k as u32, db);
                }
            }
            acc = term;
        }
        for s in acc.iter_mut() {
            *s = s.clamp(0.0, 1.0);
        }
        acc[u.index()] = 1.0;
        acc
    }

    /// One multiplication by `P`: `x'(i) = Σ_{j ∈ out(i)} x(j) / |I(j)|`.
    fn propagate_p(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let vj = NodeId::from_index(j);
            let indeg = self.graph.in_degree(vj);
            if indeg == 0 {
                continue;
            }
            let share = xj / indeg as f64;
            for &i in self.graph.in_neighbors(vj) {
                out[i.index()] += share;
            }
        }
        out
    }

    /// One multiplication by `Pᵀ`: `x'(j) = (1/|I(j)|) Σ_{i ∈ I(j)} x(i)`.
    fn propagate_pt(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        for j in 0..x.len() {
            let vj = NodeId::from_index(j);
            let inn = self.graph.in_neighbors(vj);
            if inn.is_empty() {
                continue;
            }
            let sum: f64 = inn.iter().map(|&i| x[i.index()]).sum();
            out[j] = sum / inn.len() as f64;
        }
        out
    }

    /// `aᵀ S b` via the Lemma-2 expansion with the given depth budget.
    /// Consumes its argument vectors as propagation workspaces.
    fn bilinear(&self, mut a: Vec<f64>, mut b: Vec<f64>, budget: i32) -> f64 {
        let mut total = 0.0;
        let mut weight = 1.0;
        let steps = budget.max(0);
        for l in 0..=steps {
            let mut dot = 0.0;
            for (k, (&ak, &bk)) in a.iter().zip(b.iter()).enumerate() {
                if ak != 0.0 && bk != 0.0 {
                    dot += ak * bk * self.d(k as u32, budget - l - 1);
                }
            }
            total += weight * dot;
            if l == steps {
                break;
            }
            weight *= self.c;
            a = self.propagate_p(&a);
            b = self.propagate_p(&b);
            if weight < 1e-15 {
                break;
            }
        }
        total
    }

    /// Correction factor `d_k`, derived on demand with the given budget.
    fn d(&self, k: u32, budget: i32) -> f64 {
        let indeg = self.graph.in_degree(NodeId(k));
        if indeg == 0 {
            return 1.0; // a √c-walk from k halts immediately; never meets
        }
        let optimistic = 1.0 - self.c / indeg as f64;
        if budget <= 0 {
            return optimistic;
        }
        {
            let memo = self.memo.borrow();
            let (value, at) = memo[k as usize];
            if at >= budget {
                return value;
            }
        }
        // Σ_{i,j ∈ I(k)} s(i, j) as one aggregated bilinear form; subtract
        // the |I(k)| exact diagonal terms (s(i, i) = 1).
        let mut z = vec![0.0; self.graph.num_nodes()];
        for &i in self.graph.in_neighbors(NodeId(k)) {
            z[i.index()] = 1.0;
        }
        let gross = self.bilinear(z.clone(), z, budget - 1);
        let mu = ((gross - indeg as f64) / (indeg * indeg) as f64).max(0.0);
        let value = (optimistic - self.c * mu).clamp(1.0 - self.c, 1.0);
        self.memo.borrow_mut()[k as usize] = (value, budget);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_simrank;
    use sling_graph::generators::{
        barabasi_albert, complete_graph, cycle_graph, star_graph, two_cliques_bridge,
    };

    const C: f64 = 0.6;

    #[test]
    fn depth_budget_monotone_in_eps() {
        assert!(depth_for_error(C, 0.1) <= depth_for_error(C, 0.01));
        assert!(depth_for_error(C, 0.01) <= depth_for_error(C, 0.001));
        assert!(depth_for_error(0.8, 0.05) >= depth_for_error(0.4, 0.05));
    }

    #[test]
    fn single_pair_within_eps_of_ground_truth() {
        let eps = 0.025;
        for g in [
            cycle_graph(6),
            star_graph(6),
            complete_graph(5),
            two_cliques_bridge(4),
            barabasi_albert(40, 2, 3).unwrap(),
        ] {
            let truth = power_simrank(&g, C, 50);
            let oracle = ImplicitD::new(&g, C, eps);
            for u in g.nodes() {
                for v in g.nodes() {
                    let got = oracle.single_pair(u, v);
                    let want = truth.get(u.index(), v.index());
                    assert!(
                        (got - want).abs() <= eps,
                        "({u:?},{v:?}): got {got}, want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_source_matches_single_pair() {
        // The two paths may evaluate a memoized d_k at different budgets
        // (both within the error target), so they agree closely but not
        // bit-for-bit.
        let g = two_cliques_bridge(4);
        let oracle = ImplicitD::new(&g, C, 0.025);
        for u in g.nodes() {
            let ss = oracle.single_source(u);
            for v in g.nodes() {
                let sp = oracle.single_pair(u, v);
                assert!(
                    (ss[v.index()] - sp).abs() < 1e-3,
                    "({u:?},{v:?}): ss {} vs sp {}",
                    ss[v.index()],
                    sp
                );
            }
        }
    }

    #[test]
    fn figure8_cycle_poses_no_convergence_problem() {
        // The 4-cycle of Figure 8 breaks Gauss–Seidel diagonal dominance
        // in the linearization method; the implicit-D expansion has no
        // linear solve, so it must stay accurate here.
        let g = cycle_graph(4);
        let truth = power_simrank(&g, C, 50);
        let oracle = ImplicitD::new(&g, C, 0.01);
        for u in g.nodes() {
            for v in g.nodes() {
                let got = oracle.single_pair(u, v);
                assert!((got - truth.get(u.index(), v.index())).abs() <= 0.01);
            }
        }
    }

    #[test]
    fn memo_makes_repeat_queries_consistent() {
        let g = barabasi_albert(30, 2, 8).unwrap();
        let oracle = ImplicitD::new(&g, C, 0.05);
        let first = oracle.single_pair(NodeId(3), NodeId(9));
        let second = oracle.single_pair(NodeId(3), NodeId(9));
        assert_eq!(first, second);
        // A fresh oracle (cold memo) agrees too: memoization is a pure
        // cache, not a semantic change beyond budget reuse.
        let cold = ImplicitD::new(&g, C, 0.05);
        assert!((cold.single_pair(NodeId(3), NodeId(9)) - first).abs() <= 0.05);
    }

    #[test]
    fn dangling_nodes_have_dk_one() {
        // Node 0 of the in-star has in-degree n-1; leaves are dangling-in.
        let g = star_graph(5);
        let oracle = ImplicitD::new(&g, C, 0.05);
        assert_eq!(oracle.d(1, oracle.budget()), 1.0);
        // Leaves are pairwise similar through the shared hub:
        // s(leaf_i, leaf_j) = 0 (leaves have no in-neighbors)...
        assert_eq!(oracle.single_pair(NodeId(1), NodeId(2)), 0.0);
        // ...but the hub is dissimilar to each leaf.
        assert_eq!(oracle.single_pair(NodeId(0), NodeId(1)), 0.0);
    }
}
