//! SimRank variants surveyed in §8 of the SLING paper, implemented as
//! extension features (the paper's stated future work is to "extend
//! SLING to handle other similarity measures"):
//!
//! * [`p_rank`] — P-Rank (Zhao et al., CIKM 2009): blends in-neighbor
//!   and out-neighbor similarity with a weight λ; SimRank is the λ = 1
//!   special case.
//! * [`PSimRank`] — PSimRank (Fogaras & Rácz, WWW 2005): reverse walks
//!   are *coupled through a shared random priority order*, so that walks
//!   from nodes with overlapping in-neighborhoods meet with probability
//!   `|I(u) ∩ I(v)| / |I(u) ∪ I(v)|` per step, rewarding local overlap
//!   more strongly than SimRank's independent walks.

use sling_graph::{DiGraph, NodeId};

use crate::matrix::DenseMatrix;

/// All-pairs P-Rank by power iteration (dense `O(n²)`; small graphs).
///
/// ```text
/// s(u,v) = λ · c/(|I(u)||I(v)|) Σ s(I(u), I(v))
///        + (1-λ) · c/(|O(u)||O(v)|) Σ s(O(u), O(v)),   s(v,v) = 1
/// ```
///
/// `lambda = 1` reduces to SimRank; `lambda = 0` to "reverse SimRank".
pub fn p_rank(graph: &DiGraph, c: f64, lambda: f64, iterations: usize) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&lambda), "lambda must lie in [0,1]");
    assert!(c > 0.0 && c < 1.0);
    let n = graph.num_nodes();
    let mut s = DenseMatrix::identity(n);
    let mut next = DenseMatrix::zeros(n);
    for _ in 0..iterations {
        for i in 0..n {
            let vi = NodeId::from_index(i);
            for j in 0..n {
                if i == j {
                    next.set(i, j, 1.0);
                    continue;
                }
                let vj = NodeId::from_index(j);
                let mut val = 0.0;
                let (ii, ij) = (graph.in_neighbors(vi), graph.in_neighbors(vj));
                if lambda > 0.0 && !ii.is_empty() && !ij.is_empty() {
                    let mut sum = 0.0;
                    for &a in ii {
                        for &b in ij {
                            sum += s.get(a.index(), b.index());
                        }
                    }
                    val += lambda * c * sum / (ii.len() * ij.len()) as f64;
                }
                let (oi, oj) = (graph.out_neighbors(vi), graph.out_neighbors(vj));
                if lambda < 1.0 && !oi.is_empty() && !oj.is_empty() {
                    let mut sum = 0.0;
                    for &a in oi {
                        for &b in oj {
                            sum += s.get(a.index(), b.index());
                        }
                    }
                    val += (1.0 - lambda) * c * sum / (oi.len() * oj.len()) as f64;
                }
                next.set(i, j, val);
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

/// Monte-Carlo PSimRank estimator.
///
/// Coupling: at each step every walk moves to the in-neighbor with the
/// smallest value of a shared random priority function over nodes (one
/// fresh function per `(walk, step)`). Marginally each move is uniform;
/// jointly, two walks pick the *same* next node exactly when the minimum
/// over `I(a) ∪ I(b)` lies in `I(a) ∩ I(b)` — probability
/// `|∩| / |∪|`, the PSimRank coupling.
#[derive(Clone, Copy, Debug)]
pub struct PSimRank {
    c: f64,
    walks: usize,
    truncation: usize,
    seed: u64,
}

#[inline]
fn priority(seed: u64, w: u64, step: u64, v: u64) -> u64 {
    let mut z = seed
        ^ w.wrapping_mul(0xa076_1d64_78bd_642f)
        ^ step.wrapping_mul(0xe703_7ed1_a0b4_28db)
        ^ v.wrapping_mul(0x8ebc_6af0_9c88_c6e3);
    z = (z ^ (z >> 32)).wrapping_mul(0xd6e8_feb8_6659_fd93);
    z ^ (z >> 32)
}

impl PSimRank {
    /// New estimator (zero preprocessing, like [`crate::CoupledMc`]).
    pub fn new(c: f64, walks: usize, truncation: usize, seed: u64) -> Self {
        assert!(c > 0.0 && c < 1.0);
        assert!(walks > 0 && truncation > 0);
        PSimRank {
            c,
            walks,
            truncation,
            seed,
        }
    }

    #[inline]
    fn step(&self, graph: &DiGraph, w: usize, step: usize, v: NodeId) -> Option<NodeId> {
        graph
            .in_neighbors(v)
            .iter()
            .min_by_key(|x| priority(self.seed, w as u64, step as u64, x.0 as u64))
            .copied()
    }

    /// Estimate the PSimRank score of `(u, v)` as `(1/n_w) Σ c^{τ_w}`.
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut total = 0.0;
        for w in 0..self.walks {
            let (mut a, mut b) = (u, v);
            for step in 0..self.truncation {
                match (self.step(graph, w, step, a), self.step(graph, w, step, b)) {
                    (Some(x), Some(y)) => {
                        if x == y {
                            total += self.c.powi(step as i32 + 1);
                            break;
                        }
                        a = x;
                        b = y;
                    }
                    _ => break,
                }
            }
        }
        total / self.walks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, two_cliques_bridge};
    use sling_graph::{DiGraph, GraphBuilder};

    const C: f64 = 0.6;

    #[test]
    fn p_rank_with_lambda_one_is_simrank() {
        let g = two_cliques_bridge(4);
        let pr = p_rank(&g, C, 1.0, 40);
        let sr = power_simrank(&g, C, 40);
        assert!(pr.max_abs_diff(&sr) < 1e-12);
    }

    #[test]
    fn p_rank_blends_directions() {
        // Directed diamond: 0 -> {1,2} -> 3. Nodes 1 and 2 have identical
        // in-neighborhoods AND identical out-neighborhoods, so every
        // lambda gives them high similarity; nodes 0 and 3 share neither.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g = b.build().unwrap();
        for lambda in [0.0, 0.5, 1.0] {
            let s = p_rank(&g, C, lambda, 40);
            assert!(s.get(1, 2) >= C - 1e-9, "lambda {lambda}: {}", s.get(1, 2));
            assert!(s.get(0, 3) <= s.get(1, 2));
        }
        // lambda = 0 judges purely by out-neighbors: 0 and 3 share none.
        let s = p_rank(&g, C, 0.0, 40);
        assert_eq!(s.get(0, 3), 0.0);
    }

    #[test]
    fn p_rank_symmetry_and_bounds() {
        let g = two_cliques_bridge(3);
        let s = p_rank(&g, C, 0.4, 30);
        let n = g.num_nodes();
        for i in 0..n {
            for j in 0..n {
                assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-12);
                assert!((-1e-12..=1.0 + 1e-12).contains(&s.get(i, j)));
            }
        }
    }

    /// Shared-in-neighborhood pair: PSimRank couples the walks so they
    /// meet at step 1 with probability |∩|/|∪| = 1, giving exactly c.
    #[test]
    fn psimrank_identical_in_neighborhoods_score_c() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (0, 2)]); // I(1) = I(2) = {0}
        let g = b.build().unwrap();
        let ps = PSimRank::new(C, 500, 8, 3);
        let s = ps.single_pair(&g, NodeId(1), NodeId(2));
        assert!((s - C).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn psimrank_dominates_simrank_on_overlapping_neighborhoods() {
        // The coupling can only increase meeting probability relative to
        // independent walks when in-neighborhoods overlap.
        let g = complete_graph(5);
        let truth = power_simrank(&g, C, 60);
        let ps = PSimRank::new(C, 8000, 12, 11);
        let s = ps.single_pair(&g, NodeId(0), NodeId(1));
        assert!(
            s > truth.get(0, 1),
            "PSimRank {s} should exceed SimRank {}",
            truth.get(0, 1)
        );
    }

    #[test]
    fn psimrank_degenerate_cases() {
        let g: DiGraph = cycle_graph(5);
        let ps = PSimRank::new(C, 200, 10, 1);
        // Disjoint single in-neighbors: |∩|/|∪| = 0 at every step on a
        // cycle, and the deterministic positions never collide.
        assert_eq!(ps.single_pair(&g, NodeId(0), NodeId(2)), 0.0);
        assert_eq!(ps.single_pair(&g, NodeId(3), NodeId(3)), 1.0);
    }

    #[test]
    fn psimrank_marginals_are_uniform() {
        // Each individual coupled walk must still be a uniform reverse
        // walk: over many (w, step) pairs the chosen in-neighbor of a
        // fixed node is uniform.
        let g = complete_graph(4); // I(0) = {1, 2, 3}
        let ps = PSimRank::new(C, 1, 1, 99);
        let mut counts = [0usize; 4];
        for w in 0..30_000 {
            let nxt = ps.step(&g, w, 0, NodeId(0)).unwrap();
            counts[nxt.index()] += 1;
        }
        assert_eq!(counts[0], 0);
        for &cnt in &counts[1..] {
            let frac = cnt as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frac {frac}");
        }
    }
}
