//! The Fogaras–Rácz Monte Carlo method (§3.2).
//!
//! Preprocessing stores, for every node, `n_w` reverse random walks
//! truncated at `t` steps (a reverse random walk moves to a uniform
//! in-neighbor at every step — no stopping probability — so truncation is
//! *required* for bounded cost, unlike √c-walks). A single-pair query
//! pairs up the walks of `u` and `v` and averages `c^τ` over the first
//! meeting steps τ (Eq. 2); truncation adds at most `c^{t+1}` bias
//! (Eq. 4).

use rand::RngExt;
use sling_graph::{DiGraph, NodeId};

/// Sentinel for "walk already dead at this step" (dangling node hit).
const DEAD: u32 = u32::MAX;

/// The Monte Carlo index: `n · n_w` truncated walks, flattened.
#[derive(Clone, Debug)]
pub struct McIndex {
    c: f64,
    walks_per_node: usize,
    truncation: usize,
    /// `walks[(v * walks_per_node + w) * (truncation + 1) + step]`.
    walks: Vec<u32>,
    num_nodes: usize,
}

/// Walk count from the paper's analysis (§3.2):
/// `n_w ≥ 14/(3ε²) · (ln(2/δ) + 2 ln n)` for ε accuracy on all pairs.
pub fn theory_walks(eps: f64, delta: f64, n: usize) -> usize {
    let n = n.max(2) as f64;
    (14.0 / (3.0 * eps * eps) * ((2.0 / delta).ln() + 2.0 * n.ln())).ceil() as usize
}

/// Truncation step from Eq. (4): `c^{t+1} ≤ ε/2` keeps the bias within
/// half the budget.
pub fn theory_truncation(c: f64, eps: f64) -> usize {
    ((eps / 2.0).ln() / c.ln()).ceil().max(1.0) as usize
}

impl McIndex {
    /// Build with explicit knob values. The paper's experiments use
    /// practical values far below [`theory_walks`] (the coupling trick it
    /// cites only reduces constants); our harness does the same and
    /// reports both settings.
    pub fn build(
        graph: &DiGraph,
        c: f64,
        walks_per_node: usize,
        truncation: usize,
        seed: u64,
    ) -> Self {
        assert!(c > 0.0 && c < 1.0);
        assert!(walks_per_node > 0 && truncation > 0);
        let n = graph.num_nodes();
        let stride = truncation + 1;
        let mut walks = vec![DEAD; n * walks_per_node * stride];
        for v in graph.nodes() {
            for w in 0..walks_per_node {
                let mut rng = crate::mc_sqrt::stream_rng(
                    seed,
                    (v.0 as u64) * walks_per_node as u64 + w as u64,
                );
                let base = (v.index() * walks_per_node + w) * stride;
                walks[base] = v.0;
                let mut cur = v;
                for step in 1..=truncation {
                    let inn = graph.in_neighbors(cur);
                    if inn.is_empty() {
                        break; // remaining steps stay DEAD
                    }
                    cur = inn[rng.random_range(0..inn.len())];
                    walks[base + step] = cur.0;
                }
            }
        }
        McIndex {
            c,
            walks_per_node,
            truncation,
            walks,
            num_nodes: n,
        }
    }

    /// Number of nodes indexed.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Index bytes (the Figure 4 space metric).
    pub fn resident_bytes(&self) -> usize {
        self.walks.len() * 4
    }

    #[inline]
    fn walk(&self, v: NodeId, w: usize) -> &[u32] {
        let stride = self.truncation + 1;
        let base = (v.index() * self.walks_per_node + w) * stride;
        &self.walks[base..base + stride]
    }

    /// Single-pair estimate `ŝ(u, v) = (1/n_w) Σ_w c^{τ_w}`.
    pub fn single_pair(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut total = 0.0;
        for w in 0..self.walks_per_node {
            let wu = self.walk(u, w);
            let wv = self.walk(v, w);
            for step in 1..=self.truncation {
                let (a, b) = (wu[step], wv[step]);
                if a == DEAD || b == DEAD {
                    break;
                }
                if a == b {
                    total += self.c.powi(step as i32);
                    break;
                }
            }
        }
        total / self.walks_per_node as f64
    }

    /// Single-source query: `n` single-pair evaluations.
    pub fn single_source(&self, u: NodeId) -> Vec<f64> {
        (0..self.num_nodes as u32)
            .map(|v| self.single_pair(u, NodeId(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    #[test]
    fn diagonal_is_one_and_cycle_is_zero() {
        let g = cycle_graph(6);
        let idx = McIndex::build(&g, C, 50, 8, 3);
        assert_eq!(idx.single_pair(NodeId(2), NodeId(2)), 1.0);
        // Walks on a cycle preserve separation: never meet.
        assert_eq!(idx.single_pair(NodeId(0), NodeId(3)), 0.0);
    }

    #[test]
    fn star_leaves_never_meet() {
        let g = star_graph(5);
        let idx = McIndex::build(&g, C, 40, 6, 1);
        assert_eq!(idx.single_pair(NodeId(1), NodeId(2)), 0.0);
    }

    #[test]
    fn accuracy_on_toy_graphs_with_generous_walks() {
        for g in [complete_graph(5), two_cliques_bridge(4)] {
            let truth = power_simrank(&g, C, 60);
            let idx = McIndex::build(&g, C, 4000, theory_truncation(C, 0.05), 7);
            let n = g.num_nodes();
            for i in 0..n {
                for j in 0..n {
                    let est = idx.single_pair(NodeId(i as u32), NodeId(j as u32));
                    let err = (est - truth.get(i, j)).abs();
                    assert!(
                        err <= 0.05,
                        "({i},{j}): est {est} truth {}",
                        truth.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_biases_downward_on_high_scores() {
        // With t = 1 only step-1 meetings count; estimates must
        // underestimate relative to a deep truncation.
        let g = complete_graph(5);
        let shallow = McIndex::build(&g, C, 3000, 1, 5);
        let deep = McIndex::build(&g, C, 3000, 12, 5);
        let s1 = shallow.single_pair(NodeId(0), NodeId(1));
        let s2 = deep.single_pair(NodeId(0), NodeId(1));
        assert!(s1 < s2, "shallow {s1} deep {s2}");
    }

    #[test]
    fn theory_formulas_are_sane() {
        assert!(theory_walks(0.025, 0.01, 10_000) > 100_000);
        let t = theory_truncation(0.6, 0.025);
        assert!(0.6f64.powi(t as i32 + 1) <= 0.0125 + 1e-12);
    }

    #[test]
    fn single_source_matches_pairwise() {
        let g = two_cliques_bridge(3);
        let idx = McIndex::build(&g, C, 100, 6, 11);
        let row = idx.single_source(NodeId(1));
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(row[v as usize], idx.single_pair(NodeId(1), NodeId(v)));
        }
    }

    #[test]
    fn deterministic_in_seed_and_space_accounting() {
        let g = two_cliques_bridge(3);
        let a = McIndex::build(&g, C, 20, 5, 9);
        let b = McIndex::build(&g, C, 20, 5, 9);
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.resident_bytes(), 6 * 20 * 6 * 4);
    }
}
