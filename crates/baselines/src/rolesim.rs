//! RoleSim (Jin et al., KDD 2011), surveyed in §8.
//!
//! RoleSim measures *role* (automorphic) equivalence rather than
//! SimRank's meeting probability. Its iteration replaces SimRank's
//! average over all neighbor pairs with a **maximal matching** between
//! the two neighborhoods:
//!
//! ```text
//! r(u, v) = (1 − β) · max_{M ∈ matchings(N(u), N(v))} Σ_{(x,y) ∈ M} r(x, y)
//!                    / max(|N(u)|, |N(v)|)  +  β
//! ```
//!
//! starting from `r⁽⁰⁾ ≡ 1`. The admissibility proof in the original
//! paper requires the true maximum-weight matching; like the authors'
//! own implementation, this module uses the standard greedy 1/2-
//! approximation for the matching step (exact on the ≤2-neighbor cases
//! the tests pin down), which preserves the defining invariants checked
//! below: symmetry, range `[β, 1]`, and automorphically equivalent nodes
//! scoring exactly 1. Neighborhoods are in-neighborhoods, matching this
//! workspace's SimRank orientation.

use sling_graph::{DiGraph, NodeId};

use crate::matrix::DenseMatrix;

/// Greedy maximal-weight matching value between the two neighbor lists
/// under the current score matrix: repeatedly take the highest-scoring
/// unmatched pair (deterministic tie-breaking by index).
fn greedy_matching_value(s: &DenseMatrix, a: &[NodeId], b: &[NodeId]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(a.len() * b.len());
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            edges.push((s.get(x.index(), y.index()), i, j));
        }
    }
    edges.sort_unstable_by(|p, q| {
        q.0.partial_cmp(&p.0)
            .expect("scores are finite")
            .then(p.1.cmp(&q.1))
            .then(p.2.cmp(&q.2))
    });
    let mut used_a = vec![false; a.len()];
    let mut used_b = vec![false; b.len()];
    let mut total = 0.0;
    let mut matched = 0;
    let cap = a.len().min(b.len());
    for (w, i, j) in edges {
        if matched == cap {
            break;
        }
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            total += w;
            matched += 1;
        }
    }
    total
}

/// All-pairs RoleSim with damping `beta ∈ (0, 1)`, `iterations` sweeps.
pub fn rolesim(graph: &DiGraph, beta: f64, iterations: usize) -> DenseMatrix {
    assert!(beta > 0.0 && beta < 1.0, "beta must lie in (0,1)");
    let n = graph.num_nodes();
    // r⁽⁰⁾ ≡ 1 (the "all nodes same role" prior the iteration refines).
    let mut s = DenseMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            s.set(i, j, 1.0);
        }
    }
    let mut next = DenseMatrix::zeros(n);
    for _ in 0..iterations {
        for i in 0..n {
            let ni = graph.in_neighbors(NodeId::from_index(i));
            for j in 0..n {
                if i == j {
                    next.set(i, j, 1.0);
                    continue;
                }
                let nj = graph.in_neighbors(NodeId::from_index(j));
                let denom = ni.len().max(nj.len());
                let core = if denom == 0 {
                    // Both neighborhoods empty: identical (empty) roles.
                    1.0
                } else {
                    greedy_matching_value(&s, ni, nj) / denom as f64
                };
                next.set(i, j, (1.0 - beta) * core + beta);
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{binary_in_tree, complete_graph, cycle_graph, star_graph};
    use sling_graph::GraphBuilder;

    const BETA: f64 = 0.15;

    #[test]
    fn automorphic_nodes_score_one() {
        // All nodes of a directed cycle are automorphically equivalent.
        let g = cycle_graph(6);
        let r = rolesim(&g, BETA, 12);
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (r.get(i, j) - 1.0).abs() < 1e-12,
                    "({i},{j}) = {}",
                    r.get(i, j)
                );
            }
        }
    }

    #[test]
    fn complete_graph_all_equivalent() {
        let g = complete_graph(5);
        let r = rolesim(&g, BETA, 10);
        for i in 0..5 {
            for j in 0..5 {
                assert!((r.get(i, j) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn symmetry_and_range() {
        let g = binary_in_tree(3);
        let r = rolesim(&g, BETA, 10);
        let n = g.num_nodes();
        for i in 0..n {
            assert_eq!(r.get(i, i), 1.0);
            for j in 0..n {
                let v = r.get(i, j);
                assert!((BETA - 1e-12..=1.0 + 1e-12).contains(&v), "({i},{j}) = {v}");
                assert!((v - r.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn siblings_in_tree_are_equivalent() {
        // In the complete binary tree, the two children of the root play
        // identical roles; a child and a leaf do not.
        let g = binary_in_tree(2); // 7 nodes: 0; 1,2; 3..6
        let r = rolesim(&g, BETA, 15);
        assert!(
            (r.get(1, 2) - 1.0).abs() < 1e-9,
            "siblings: {}",
            r.get(1, 2)
        );
        assert!(
            (r.get(3, 4) - 1.0).abs() < 1e-9,
            "leaf pair: {}",
            r.get(3, 4)
        );
        assert!(r.get(1, 3) < 1.0, "internal vs leaf must differ");
    }

    #[test]
    fn hub_differs_from_leaves_in_star() {
        let g = star_graph(6);
        let r = rolesim(&g, BETA, 10);
        // Leaves (no in-neighbors) are mutually equivalent.
        assert!((r.get(1, 2) - 1.0).abs() < 1e-9);
        // Hub (5 in-neighbors) vs a leaf: matching value 0 => score beta.
        assert!((r.get(0, 1) - BETA).abs() < 1e-9);
    }

    #[test]
    fn rolesim_vs_simrank_on_disjoint_twins() {
        // Two disjoint 2-cycles: (0,1) and (2,3). SimRank gives s(0,2)=0
        // (walks can never meet across components) while RoleSim
        // recognizes the identical *roles*.
        let mut b = GraphBuilder::with_nodes(4);
        for (u, v) in [(0u32, 1u32), (1, 0), (2, 3), (3, 2)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let r = rolesim(&g, BETA, 10);
        assert!((r.get(0, 2) - 1.0).abs() < 1e-9);
        let s = crate::power::power_simrank(&g, 0.6, 20);
        assert_eq!(s.get(0, 2), 0.0);
    }

    #[test]
    fn rejects_bad_beta() {
        let g = cycle_graph(3);
        let result = std::panic::catch_unwind(|| rolesim(&g, 0.0, 1));
        assert!(result.is_err());
    }
}
