//! The power method (§3.1) — exact all-pairs SimRank, the ground-truth
//! oracle for Figures 5–7.
//!
//! Iterates `S ← (c·Pᵀ S P) ∨ I` from `S⁽⁰⁾ = I`. Each iteration is two
//! sparse-times-dense products costing `O(n·m)` — far better than the
//! naive `O(m²)` of evaluating Eq. (1) directly — and Lemma 1 gives the
//! iteration count for a target error: `t ≥ log_c(ε(1−c)) − 1`.

use sling_graph::DiGraph;

use crate::matrix::DenseMatrix;

/// Iterations needed for worst-case error `eps` at decay `c` (Lemma 1).
pub fn iterations_for_error(c: f64, eps: f64) -> usize {
    assert!(c > 0.0 && c < 1.0 && eps > 0.0 && eps < 1.0);
    ((eps * (1.0 - c)).ln() / c.ln() - 1.0).ceil().max(1.0) as usize
}

/// Run `iterations` of the power method and return the score matrix.
///
/// Memory: two dense `n × n` buffers. Intended for ground-truth
/// computation on small graphs (the paper does the same, capping Figure
/// 5–7 at its four smallest datasets).
pub fn power_simrank(graph: &DiGraph, c: f64, iterations: usize) -> DenseMatrix {
    let n = graph.num_nodes();
    let mut s = DenseMatrix::identity(n);
    let mut tmp = DenseMatrix::zeros(n); // T = S · P
    let mut next = DenseMatrix::zeros(n);

    for _ in 0..iterations {
        // T(i, j) = (S P)(i, j) = (1/|I(j)|) Σ_{k ∈ I(j)} S(i, k).
        // Row-local formulation: row T(i,·) accumulates S(i,k)/|I(j)| for
        // every out-edge k -> j... equivalently spread S(i,k) to columns j
        // with k ∈ I(j), i.e. j ∈ out(k).
        for i in 0..n {
            let srow = s.row(i);
            let trow = tmp.row_mut(i);
            trow.iter_mut().for_each(|v| *v = 0.0);
            for (k, &sik) in srow.iter().enumerate() {
                if sik == 0.0 {
                    continue;
                }
                for &j in graph.out_neighbors(sling_graph::NodeId::from_index(k)) {
                    trow[j.index()] += sik / graph.in_degree(j) as f64;
                }
            }
        }
        // next(i, ·) = c · (1/|I(i)|) Σ_{k ∈ I(i)} T(k, ·); diagonal ∨ 1.
        for i in 0..n {
            let inn = graph.in_neighbors(sling_graph::NodeId::from_index(i));
            // Accumulate into a fresh row without aliasing `tmp`.
            let row = next.row_mut(i);
            row.iter_mut().for_each(|v| *v = 0.0);
            if !inn.is_empty() {
                let scale = c / inn.len() as f64;
                for &k in inn {
                    let trow = tmp.row(k.index());
                    for (dst, &t) in row.iter_mut().zip(trow) {
                        *dst += scale * t;
                    }
                }
            }
            row[i] = 1.0;
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};
    use sling_graph::{DiGraph, GraphBuilder};

    const C: f64 = 0.6;

    /// Direct (slow) evaluation of one Eq. (1) iteration, used to verify
    /// the optimized sparse formulation.
    fn naive_iteration(graph: &DiGraph, c: f64, s: &DenseMatrix) -> DenseMatrix {
        let n = graph.num_nodes();
        let mut out = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    out.set(i, j, 1.0);
                    continue;
                }
                let ii = graph.in_neighbors(sling_graph::NodeId::from_index(i));
                let jj = graph.in_neighbors(sling_graph::NodeId::from_index(j));
                if ii.is_empty() || jj.is_empty() {
                    continue;
                }
                let mut sum = 0.0;
                for &a in ii {
                    for &b in jj {
                        sum += s.get(a.index(), b.index());
                    }
                }
                out.set(i, j, c * sum / (ii.len() * jj.len()) as f64);
            }
        }
        out
    }

    #[test]
    fn sparse_iteration_matches_naive() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 1), (0, 3), (4, 2)]);
        let g = b.build().unwrap();
        let mut s = DenseMatrix::identity(g.num_nodes());
        for _ in 0..3 {
            let fast = power_simrank(&g, C, 1);
            let _ = fast; // one-iteration comparison below drives both
            let slow = naive_iteration(&g, C, &s);
            // Drive the optimized path one step from the same state: easiest
            // is re-running power_simrank from scratch each loop.
            s = slow;
        }
        let fast3 = power_simrank(&g, C, 3);
        assert!(fast3.max_abs_diff(&s) < 1e-12);
    }

    #[test]
    fn matches_complete_graph_closed_form() {
        let n = 6;
        let s = power_simrank(&complete_graph(n), C, 60);
        let closed =
            C * (n - 2) as f64 / ((1.0 - C) * ((n - 1) * (n - 1)) as f64 + C * (n - 2) as f64);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { closed };
                assert!((s.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cycle_and_star_degenerate_scores() {
        let s = power_simrank(&cycle_graph(5), C, 40);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(s.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
        let s = power_simrank(&star_graph(4), C, 40);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(s.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn lemma1_iteration_count() {
        // c = 0.6, eps = 0.025: t >= log_0.6(0.01) - 1 = 9.01 - 1 -> 9.
        let t = iterations_for_error(0.6, 0.025);
        assert!((8..=10).contains(&t), "t = {t}");
        // Error after t iterations is at most c^(t+1)/(1-c) (Lemma 1
        // contrapositive): verify convergence empirically.
        let g = two_cliques_bridge(4);
        let approx = power_simrank(&g, 0.6, t);
        let exact = power_simrank(&g, 0.6, 80);
        assert!(approx.max_abs_diff(&exact) <= 0.025);
    }

    #[test]
    fn scores_symmetric_and_monotone_in_iterations() {
        let g = two_cliques_bridge(4);
        let s1 = power_simrank(&g, C, 5);
        let s2 = power_simrank(&g, C, 25);
        let n = g.num_nodes();
        for i in 0..n {
            for j in 0..n {
                assert!((s2.get(i, j) - s2.get(j, i)).abs() < 1e-12);
                // Power-method scores increase monotonically to the fixed
                // point (S^(0) = I underestimates).
                assert!(s2.get(i, j) + 1e-12 >= s1.get(i, j));
            }
        }
    }
}
