//! The generation `MANIFEST`: a small, checksummed text record of what a
//! generation directory contains.
//!
//! One manifest accompanies every published index generation (see the
//! [`crate::lifecycle`] module docs for the directory layout). It records
//! enough to *validate* a generation without opening the index — format
//! version, build configuration (ε, c, seed), the source-graph
//! fingerprint `(n, m)`, and the byte size plus FNV-1a checksum of each
//! payload file — and it is itself checksummed, so a torn or bit-rotted
//! manifest is detected before anything trusts it.
//!
//! ## Wire format
//!
//! UTF-8 text, one `key value` pair per line:
//!
//! ```text
//! SLNGMANIFEST1
//! format SLNGIDX1
//! nodes 2000
//! edges 7988
//! epsilon 0.1
//! c 0.6
//! seed 3
//! index_bytes 1404548
//! index_fnv1a 4b1f0a6cc41d9f03
//! graph_bytes 64072          (only when a graph snapshot is co-located)
//! graph_fnv1a 91cd24f07a7e11a2
//! checksum 7a31cc0f39b05e84
//! ```
//!
//! The final `checksum` line is the FNV-1a hash of every preceding byte
//! of the file; floats are written with Rust's shortest round-trip `{}`
//! formatting, so parsing recovers the bit-identical value. Unknown keys
//! are rejected — a manifest is tiny and fully owned by this module, so
//! leniency would only mask corruption.

use crate::error::SlingError;
use crate::format::FormatVersion;

/// Magic first line of a manifest file.
const MAGIC: &str = "SLNGMANIFEST1";

/// File name of the manifest inside a generation directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Incremental 64-bit FNV-1a state — the checksum used for manifests
/// and generation payload files. Not cryptographic; it detects the
/// corruption classes that matter operationally (truncation, torn
/// writes, bit rot), costs one pass, and needs no dependency. The
/// incremental form lets payload files be digested through a fixed
/// buffer instead of reading them whole.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Fresh hasher (FNV-1a offset basis).
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot 64-bit FNV-1a over a byte slice (see [`Fnv1a`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Size and checksum of one payload file recorded in a manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileDigest {
    /// File length in bytes.
    pub bytes: u64,
    /// FNV-1a hash of the file contents.
    pub fnv1a: u64,
}

impl FileDigest {
    /// Digest of an in-memory byte image.
    pub fn of(bytes: &[u8]) -> FileDigest {
        FileDigest {
            bytes: bytes.len() as u64,
            fnv1a: fnv1a(bytes),
        }
    }
}

/// Parsed, checksum-verified generation manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// On-disk format generation of the index file.
    pub format: FormatVersion,
    /// Source-graph fingerprint: node count.
    pub num_nodes: usize,
    /// Source-graph fingerprint: edge count.
    pub num_edges: usize,
    /// Additive error budget the index was built with.
    pub epsilon: f64,
    /// SimRank decay constant the index was built with.
    pub c: f64,
    /// Build seed (generations built from the same graph and seed are
    /// byte-identical).
    pub seed: u64,
    /// Digest of `index.slng`.
    pub index: FileDigest,
    /// Digest of the co-located `graph.bin` snapshot, when one exists.
    pub graph: Option<FileDigest>,
}

fn corrupt(what: impl Into<String>) -> SlingError {
    SlingError::CorruptIndex(format!("manifest: {}", what.into()))
}

impl Manifest {
    /// Serialize to the checksummed text format.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "format {}", self.format);
        let _ = writeln!(out, "nodes {}", self.num_nodes);
        let _ = writeln!(out, "edges {}", self.num_edges);
        let _ = writeln!(out, "epsilon {}", self.epsilon);
        let _ = writeln!(out, "c {}", self.c);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "index_bytes {}", self.index.bytes);
        let _ = writeln!(out, "index_fnv1a {:016x}", self.index.fnv1a);
        if let Some(graph) = &self.graph {
            let _ = writeln!(out, "graph_bytes {}", graph.bytes);
            let _ = writeln!(out, "graph_fnv1a {:016x}", graph.fnv1a);
        }
        let _ = writeln!(out, "checksum {:016x}", fnv1a(out.as_bytes()));
        out
    }

    /// Parse and checksum-verify a manifest image.
    pub fn parse(text: &str) -> Result<Manifest, SlingError> {
        // The checksum line covers every byte before it, including the
        // newline that ends the last data line.
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| corrupt("missing checksum line"))?;
        let claimed = text[body_end..]
            .trim_end()
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt("malformed checksum line"))?;
        let actual = fnv1a(&text.as_bytes()[..body_end]);
        if claimed != actual {
            return Err(corrupt(format!(
                "checksum mismatch: recorded {claimed:016x}, computed {actual:016x}"
            )));
        }

        let mut lines = text[..body_end].lines();
        if lines.next() != Some(MAGIC) {
            return Err(corrupt("bad magic"));
        }
        let mut format = None;
        let mut nodes = None;
        let mut edges = None;
        let mut epsilon = None;
        let mut c = None;
        let mut seed = None;
        let mut index_bytes = None;
        let mut index_fnv = None;
        let mut graph_bytes = None;
        let mut graph_fnv = None;
        for line in lines {
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(format!("malformed line {line:?}")))?;
            let dup = match key {
                "format" => format
                    .replace(match value {
                        "SLNGIDX1" => FormatVersion::V1,
                        "SLNGIDX2" => FormatVersion::V2,
                        other => return Err(corrupt(format!("unknown format {other:?}"))),
                    })
                    .is_some(),
                "nodes" => nodes.replace(parse_num::<usize>(key, value)?).is_some(),
                "edges" => edges.replace(parse_num::<usize>(key, value)?).is_some(),
                "epsilon" => epsilon.replace(parse_num::<f64>(key, value)?).is_some(),
                "c" => c.replace(parse_num::<f64>(key, value)?).is_some(),
                "seed" => seed.replace(parse_num::<u64>(key, value)?).is_some(),
                "index_bytes" => index_bytes.replace(parse_num::<u64>(key, value)?).is_some(),
                "index_fnv1a" => index_fnv.replace(parse_hex(key, value)?).is_some(),
                "graph_bytes" => graph_bytes.replace(parse_num::<u64>(key, value)?).is_some(),
                "graph_fnv1a" => graph_fnv.replace(parse_hex(key, value)?).is_some(),
                other => return Err(corrupt(format!("unknown key {other:?}"))),
            };
            if dup {
                return Err(corrupt(format!("duplicate key {key:?}")));
            }
        }
        let graph = match (graph_bytes, graph_fnv) {
            (None, None) => None,
            (Some(bytes), Some(fnv1a)) => Some(FileDigest { bytes, fnv1a }),
            _ => return Err(corrupt("graph_bytes and graph_fnv1a must appear together")),
        };
        let missing = |what: &str| corrupt(format!("missing key {what:?}"));
        Ok(Manifest {
            format: format.ok_or_else(|| missing("format"))?,
            num_nodes: nodes.ok_or_else(|| missing("nodes"))?,
            num_edges: edges.ok_or_else(|| missing("edges"))?,
            epsilon: epsilon.ok_or_else(|| missing("epsilon"))?,
            c: c.ok_or_else(|| missing("c"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            index: FileDigest {
                bytes: index_bytes.ok_or_else(|| missing("index_bytes"))?,
                fnv1a: index_fnv.ok_or_else(|| missing("index_fnv1a"))?,
            },
            graph,
        })
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, SlingError> {
    value
        .parse()
        .map_err(|_| corrupt(format!("cannot parse {key} value {value:?}")))
}

fn parse_hex(key: &str, value: &str) -> Result<u64, SlingError> {
    u64::from_str_radix(value, 16)
        .map_err(|_| corrupt(format!("cannot parse {key} value {value:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(graph: bool) -> Manifest {
        Manifest {
            format: FormatVersion::V2,
            num_nodes: 2000,
            num_edges: 7988,
            epsilon: 0.1,
            c: 0.6,
            seed: 3,
            index: FileDigest {
                bytes: 1_404_548,
                fnv1a: 0x4b1f_0a6c_c41d_9f03,
            },
            graph: graph.then_some(FileDigest {
                bytes: 64_072,
                fnv1a: 0x91cd_24f0_7a7e_11a2,
            }),
        }
    }

    #[test]
    fn round_trips_with_and_without_graph_snapshot() {
        for graph in [false, true] {
            let m = sample(graph);
            let text = m.encode();
            assert_eq!(Manifest::parse(&text).unwrap(), m);
        }
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        let mut m = sample(false);
        m.epsilon = 0.1 + 0.2; // not representable as a short decimal
        m.c = 1.0 / 3.0;
        let back = Manifest::parse(&m.encode()).unwrap();
        assert_eq!(back.epsilon.to_bits(), m.epsilon.to_bits());
        assert_eq!(back.c.to_bits(), m.c.to_bits());
    }

    #[test]
    fn detects_any_single_byte_flip() {
        let text = sample(true).encode();
        let bytes = text.as_bytes();
        // Every byte except the final newline (whitespace after the
        // checksum hex carries no information, so a flip there is
        // harmless by construction).
        for i in 0..bytes.len() - 1 {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x01;
            let Ok(s) = std::str::from_utf8(&bad) else {
                continue;
            };
            assert!(
                Manifest::parse(s).is_err(),
                "flip at byte {i} went undetected: {s:?}"
            );
        }
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        let text = sample(false).encode();
        for cut in [0, 5, text.len() / 2, text.len() - 2] {
            assert!(Manifest::parse(&text[..cut]).is_err(), "cut {cut}");
        }
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("not a manifest\n").is_err());
        // Unknown key, with a recomputed checksum so only the key is bad.
        let mut forged = String::from("SLNGMANIFEST1\nfrobnicate 1\n");
        forged.push_str(&format!("checksum {:016x}\n", fnv1a(forged.as_bytes())));
        let err = Manifest::parse(&forged).unwrap_err();
        assert!(err.to_string().contains("unknown key"), "{err}");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
