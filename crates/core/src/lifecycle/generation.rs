//! The [`GenerationStore`]: versioned generation directories, atomic
//! promotion of the `CURRENT` pointer, retention GC, and the hot-key
//! warm-up log.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sling_graph::{binfmt, DiGraph, NodeId};

use crate::error::SlingError;
use crate::format::decode_meta;
use crate::index::{QueryWorkspace, SlingIndex};
use crate::lifecycle::manifest::{FileDigest, Manifest, MANIFEST_FILE};
use crate::obs::{self, KernelCounters};
use crate::store::{HpStore, SharedEngine};
use crate::workload::trace::{
    encode_record, parse_record, TraceKey, TraceOutcome, TraceRecord, TraceVerb,
};

/// Name of the promotion pointer file in the store root.
pub const CURRENT_FILE: &str = "CURRENT";

/// Name of the temporary pointer written during promotion; a crash
/// between write and rename leaves it behind, harmlessly.
const CURRENT_TMP: &str = "CURRENT.tmp";

/// Index payload file inside a generation directory.
pub const INDEX_FILE: &str = "index.slng";

/// Optional graph snapshot inside a generation directory.
pub const GRAPH_FILE: &str = "graph.bin";

/// Replayable hot-key log in the store root, used to prime a freshly
/// opened generation's caches before it goes live. New writes are
/// checksummed `SLNGTRACE` record lines (see [`crate::workload`]);
/// legacy bare `<u> <v>` lines still parse.
pub const HOT_KEY_LOG: &str = "hotkeys.log";

/// Hot keys replayed per warm-up, however long the log has grown.
const WARMUP_KEY_CAP: usize = 4096;

/// Identifier of one index generation (`gen-0007` on disk).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenId(pub u32);

impl GenId {
    /// Directory name of this generation (`gen-NNNN`, zero-padded).
    pub fn dir_name(&self) -> String {
        format!("gen-{:04}", self.0)
    }

    /// Parse a directory name back into an id. Anything that is not
    /// exactly `gen-<digits>` — partial publishes (`gen-0007.partial-*`),
    /// the pointer files, stray junk — is `None`, which is how the store
    /// ignores debris a crash may have left behind.
    pub fn parse(name: &str) -> Option<GenId> {
        let digits = name.strip_prefix("gen-")?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok().map(GenId)
    }
}

impl std::fmt::Display for GenId {
    /// Displays as the on-disk directory name, so logs, errors, and the
    /// `CURRENT` pointer all use one spelling.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.dir_name())
    }
}

/// A directory of immutable, versioned index generations with an
/// atomically-swappable `CURRENT` pointer — the operational model behind
/// zero-downtime reindexing (see the [`crate::lifecycle`] module docs
/// for the layout and crash-safety argument).
///
/// Publishing, promotion, **and GC** assume a **single writer** (the
/// indexing pipeline); any number of readers (serving processes on this
/// or other hosts mapping the same directory) may list, validate, and
/// open generations concurrently. In particular, do not run
/// [`GenerationStore::gc`] from a separate process concurrently with a
/// publish or promote: the debris sweep cannot distinguish a crashed
/// publish's leftovers from another writer's in-flight staging files.
#[derive(Clone, Debug)]
pub struct GenerationStore {
    root: PathBuf,
}

fn corrupt(what: impl Into<String>) -> SlingError {
    SlingError::CorruptIndex(what.into())
}

/// Write `bytes` to `path` and fsync the file, so a later directory
/// rename cannot expose a file whose contents are still in flight.
fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), SlingError> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Fsync a directory so a rename journaled inside it is durable. Best
/// effort on filesystems that refuse directory handles.
fn sync_dir(path: &Path) {
    if let Ok(d) = File::open(path) {
        let _ = d.sync_all();
    }
}

/// Digest a file with a fixed-size streaming read: same result as
/// [`FileDigest::of`] on the whole image, `O(64 KiB)` memory however
/// large the payload.
fn digest_file(path: &Path) -> Result<FileDigest, SlingError> {
    use std::io::Read as _;
    let mut f = File::open(path)?;
    let mut buf = [0u8; 64 * 1024];
    let mut bytes = 0u64;
    let mut h = crate::lifecycle::manifest::Fnv1a::new();
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        bytes += n as u64;
        h.update(&buf[..n]);
    }
    Ok(FileDigest {
        bytes,
        fnv1a: h.finish(),
    })
}

impl GenerationStore {
    /// Open (creating if needed) a generation store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<GenerationStore, SlingError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(GenerationStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All published generations, ascending. Partial publishes, pointer
    /// files, and stray entries are ignored.
    pub fn list(&self) -> Result<Vec<GenId>, SlingError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(GenId::parse) {
                if entry.file_type()?.is_dir() {
                    out.push(id);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The promoted generation, or `None` when nothing has been promoted
    /// yet. Reads only the pointer file — pair with
    /// [`GenerationStore::manifest`] / [`GenerationStore::verify`] to
    /// check the generation it names.
    pub fn current(&self) -> Result<Option<GenId>, SlingError> {
        let raw = match fs::read_to_string(self.root.join(CURRENT_FILE)) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let name = raw.trim();
        GenId::parse(name)
            .map(Some)
            .ok_or_else(|| corrupt(format!("CURRENT names an invalid generation {name:?}")))
    }

    /// Directory of one generation.
    pub fn generation_dir(&self, gen: GenId) -> PathBuf {
        self.root.join(gen.dir_name())
    }

    /// Path of a generation's index file.
    pub fn index_path(&self, gen: GenId) -> PathBuf {
        self.generation_dir(gen).join(INDEX_FILE)
    }

    /// Path of a generation's graph snapshot, if one was published.
    pub fn graph_path(&self, gen: GenId) -> Option<PathBuf> {
        let path = self.generation_dir(gen).join(GRAPH_FILE);
        path.exists().then_some(path)
    }

    /// Parse and checksum-verify a generation's manifest, and check the
    /// recorded payload *sizes* against the files on disk. Cheap —
    /// `O(manifest)`, no payload read; [`GenerationStore::verify`] adds
    /// the full payload checksum.
    pub fn manifest(&self, gen: GenId) -> Result<Manifest, SlingError> {
        let dir = self.generation_dir(gen);
        let text = fs::read_to_string(dir.join(MANIFEST_FILE))
            .map_err(|e| corrupt(format!("{gen}: cannot read manifest: {e}")))?;
        let manifest = Manifest::parse(&text).map_err(|e| corrupt(format!("{gen}: {e}")))?;
        let index_len = fs::metadata(dir.join(INDEX_FILE))?.len();
        if index_len != manifest.index.bytes {
            return Err(corrupt(format!(
                "{gen}: index file holds {index_len} bytes, manifest records {}",
                manifest.index.bytes
            )));
        }
        match (&manifest.graph, dir.join(GRAPH_FILE).exists()) {
            (Some(digest), true) => {
                let len = fs::metadata(dir.join(GRAPH_FILE))?.len();
                if len != digest.bytes {
                    return Err(corrupt(format!(
                        "{gen}: graph snapshot holds {len} bytes, manifest records {}",
                        digest.bytes
                    )));
                }
            }
            (None, false) => {}
            (Some(_), false) => {
                return Err(corrupt(format!(
                    "{gen}: manifest records a graph snapshot but none exists"
                )))
            }
            (None, true) => {
                return Err(corrupt(format!(
                    "{gen}: graph snapshot exists but the manifest does not record it"
                )))
            }
        }
        Ok(manifest)
    }

    /// Fully verify a generation: manifest checksum, payload sizes, and
    /// the FNV-1a checksum of every payload file. This is the gate
    /// [`GenerationStore::promote`] runs — a generation that cannot pass
    /// it must never become `CURRENT`. Payloads are checksummed
    /// streaming (fixed 64 KiB buffer), so verifying a multi-GB index on
    /// a serving host never doubles resident memory.
    pub fn verify(&self, gen: GenId) -> Result<Manifest, SlingError> {
        let manifest = self.manifest(gen)?;
        if digest_file(&self.index_path(gen))? != manifest.index {
            return Err(corrupt(format!("{gen}: index payload checksum mismatch")));
        }
        if let Some(digest) = &manifest.graph {
            if &digest_file(&self.generation_dir(gen).join(GRAPH_FILE))? != digest {
                return Err(corrupt(format!("{gen}: graph snapshot checksum mismatch")));
            }
        }
        Ok(manifest)
    }

    /// Next unused generation id (1-based; ids are never reused, so a
    /// GC'd generation's number stays retired).
    fn next_id(&self) -> Result<GenId, SlingError> {
        let highest = self
            .list()?
            .last()
            .copied()
            .max(self.current()?)
            .map_or(0, |g| g.0);
        Ok(GenId(highest + 1))
    }

    /// Publish a serialized index image (either format generation) as a
    /// new, un-promoted generation, optionally co-locating a graph
    /// snapshot. The write is crash-safe: everything lands in a
    /// `.partial-` staging directory, is fsynced, and only then renamed
    /// to its final `gen-NNNN` name — a crash mid-publish leaves debris
    /// that [`GenerationStore::list`] ignores and
    /// [`GenerationStore::gc`] removes, never a half-valid generation.
    pub fn publish_bytes(
        &self,
        index_bytes: &[u8],
        graph_bytes: Option<&[u8]>,
    ) -> Result<GenId, SlingError> {
        // Validate the image and pull the manifest fields out of its
        // metadata prefix before anything touches disk.
        let meta = decode_meta(index_bytes)?;
        if let Some(gb) = graph_bytes {
            let graph = binfmt::from_bytes(gb)
                .map_err(|e| corrupt(format!("graph snapshot does not decode: {e}")))?;
            if graph.num_nodes() != meta.num_nodes || graph.num_edges() != meta.num_edges {
                return Err(SlingError::GraphMismatch {
                    expected_nodes: meta.num_nodes,
                    found_nodes: graph.num_nodes(),
                });
            }
        }
        let manifest = Manifest {
            format: meta.version,
            num_nodes: meta.num_nodes,
            num_edges: meta.num_edges,
            epsilon: meta.config.epsilon,
            c: meta.config.c,
            seed: meta.config.seed,
            index: FileDigest::of(index_bytes),
            graph: graph_bytes.map(FileDigest::of),
        };

        let id = self.next_id()?;
        let staging = self
            .root
            .join(format!("{}.partial-{}", id.dir_name(), std::process::id()));
        // A same-named staging dir can only be our own crashed debris.
        if staging.exists() {
            fs::remove_dir_all(&staging)?;
        }
        fs::create_dir_all(&staging)?;
        write_synced(&staging.join(INDEX_FILE), index_bytes)?;
        if let Some(gb) = graph_bytes {
            write_synced(&staging.join(GRAPH_FILE), gb)?;
        }
        write_synced(&staging.join(MANIFEST_FILE), manifest.encode().as_bytes())?;
        sync_dir(&staging);
        let final_dir = self.generation_dir(id);
        // Fault point: fail *before* the rename, so an injected publish
        // crash exercises the debris-tolerant recovery path (staging
        // dirs ignored by list, removed by gc) — exactly the state a
        // real mid-publish crash leaves.
        crate::faults::check_io(crate::faults::point::LIFECYCLE_PUBLISH)?;
        fs::rename(&staging, &final_dir)?;
        sync_dir(&self.root);
        KernelCounters::bump(&obs::LIFECYCLE.publishes);
        Ok(id)
    }

    /// Publish an in-memory index (and optionally its graph) as a new
    /// generation. `SLNGIDX1` layout; use
    /// [`GenerationStore::publish_bytes`] with
    /// [`SlingIndex::to_bytes_v2`] output for a compressed generation.
    pub fn publish_index(
        &self,
        index: &SlingIndex,
        graph: Option<&DiGraph>,
    ) -> Result<GenId, SlingError> {
        let graph_bytes = graph.map(binfmt::to_bytes);
        self.publish_bytes(&index.to_bytes(), graph_bytes.as_deref())
    }

    /// Atomically promote `gen` to `CURRENT` after fully verifying it
    /// (manifest checksum + payload checksums).
    ///
    /// The swap is write-temp + fsync + rename: readers observe either
    /// the old pointer or the new one, never a torn file, and a crash at
    /// any instant leaves `CURRENT` pointing at a valid generation (the
    /// stray `CURRENT.tmp` is overwritten by the next promotion and
    /// removed by GC).
    pub fn promote(&self, gen: GenId) -> Result<(), SlingError> {
        self.verify(gen)?;
        // Fault point: fail after verification but before the CURRENT
        // swap — the window where a crash must leave the old pointer
        // fully intact.
        crate::faults::check_io(crate::faults::point::LIFECYCLE_PROMOTE)?;
        let tmp = self.root.join(CURRENT_TMP);
        write_synced(&tmp, format!("{}\n", gen.dir_name()).as_bytes())?;
        fs::rename(&tmp, self.root.join(CURRENT_FILE))?;
        sync_dir(&self.root);
        KernelCounters::bump(&obs::LIFECYCLE.promotions);
        Ok(())
    }

    /// Remove retired generations, keeping `CURRENT`, every generation
    /// *newer* than it (published but not yet promoted), and the
    /// `keep_retired` most recent retired ones as rollback candidates.
    /// Also sweeps crash debris: `.partial-` staging directories and a
    /// stale `CURRENT.tmp`. Returns the removed generation ids.
    ///
    /// A **writer-side** operation under the store's single-writer
    /// contract (see the type docs): run it from the indexing pipeline
    /// between publishes, never concurrently with one — a racing
    /// publish's staging directory is indistinguishable from crash
    /// debris.
    ///
    /// With nothing promoted, no generation is retired and only debris
    /// is swept.
    pub fn gc(&self, keep_retired: usize) -> Result<Vec<GenId>, SlingError> {
        // Debris sweep first: it can never name live data.
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.contains(".partial-") && entry.file_type()?.is_dir() {
                fs::remove_dir_all(entry.path())?;
            } else if name == CURRENT_TMP {
                fs::remove_file(entry.path())?;
            }
        }
        let Some(current) = self.current()? else {
            return Ok(Vec::new());
        };
        let mut retired: Vec<GenId> = self.list()?.into_iter().filter(|&g| g < current).collect();
        // Newest retired generations are the rollback candidates.
        let cut = retired.len().saturating_sub(keep_retired);
        retired.truncate(cut);
        for &gen in &retired {
            fs::remove_dir_all(self.generation_dir(gen))?;
        }
        if !retired.is_empty() {
            sync_dir(&self.root);
        }
        KernelCounters::bump_by(&obs::LIFECYCLE.gc_removed, retired.len() as u64);
        Ok(retired)
    }

    /// Append canonicalized pairs to the replayable hot-key log, so the
    /// *next* generation can be primed before going live. The log is
    /// **operator- or pipeline-fed**: the serving stack only *reads* it
    /// (nothing automatic writes it) — populate it from a traffic
    /// capture ([`GenerationStore::append_hot_trace`]), from
    /// [`DynamicSling`]-side knowledge of hot entities, or by hand (it
    /// is plain text, and legacy `echo "3 77" >> <root>/hotkeys.log`
    /// lines still parse). New writes use checksummed `SLNGTRACE`
    /// record lines, so the log carries real traffic *frequency*, not
    /// just distinct pairs. An absent or stale log only means a colder
    /// first request after a swap.
    ///
    /// [`DynamicSling`]: crate::dynamic::DynamicSling
    pub fn append_hot_keys(&self, pairs: &[(u32, u32)]) -> Result<(), SlingError> {
        let records: Vec<TraceRecord> = pairs
            .iter()
            .map(|&(u, v)| TraceRecord {
                t_us: 0,
                verb: TraceVerb::Pair,
                key: TraceKey::Pair(u.min(v), u.max(v)),
                outcome: TraceOutcome::Ok,
                latency_us: 0,
                epoch: 0,
            })
            .collect();
        self.append_hot_trace(&records)
    }

    /// Append captured traffic records to the hot-key log — the
    /// workload-capture path: feed it (a slice of) a `SLNGTRACE`
    /// capture and the next warm-up replays the traffic's own key
    /// frequencies. Records are appended as bare checksummed record
    /// lines (no header — the log is an append-forever mixed file, and
    /// [`GenerationStore::read_hot_keys`] parses each line on its own).
    pub fn append_hot_trace(&self, records: &[TraceRecord]) -> Result<(), SlingError> {
        let mut text = String::with_capacity(records.len() * 32);
        for rec in records {
            // Per-line delta base 0: the log aggregates keys, so
            // per-record absolute time is not reconstructed.
            let flat = TraceRecord { t_us: 0, ..*rec };
            encode_record(&flat, 0, &mut text);
        }
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(HOT_KEY_LOG))?;
        f.write_all(text.as_bytes())?;
        Ok(())
    }

    /// Read the hot keys from the log, ranked by how warm-up should
    /// replay them: by observed frequency (descending), ties broken
    /// newest-first, capped so warm-up stays bounded however long the
    /// log grows. Both line dialects count — checksummed `SLNGTRACE`
    /// records (any verb; node-addressed keys degrade to their identity
    /// pair) and legacy bare `<u> <v>` lines. Malformed or
    /// checksum-failing lines, non-UTF-8 bytes from a torn append, and
    /// even a failing read all degrade to fewer keys — the log is an
    /// optimization, never a correctness input, so nothing about it may
    /// block opening a generation.
    pub fn read_hot_keys(&self) -> Vec<(u32, u32)> {
        let bytes = match fs::read(self.root.join(HOT_KEY_LOG)) {
            Ok(bytes) => bytes,
            Err(_) => return Vec::new(),
        };
        let text = String::from_utf8_lossy(&bytes);
        // pair -> (count, most recent line index)
        let mut tally: std::collections::HashMap<(u32, u32), (u64, usize)> =
            std::collections::HashMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            let pair = if line.starts_with('+') {
                match parse_record(line, 0) {
                    Ok(rec) => rec.key.warm_pair(),
                    Err(_) => continue,
                }
            } else if let Some((u, v)) = line.split_once(' ') {
                match (u.parse::<u32>(), v.parse::<u32>()) {
                    (Ok(u), Ok(v)) => (u.min(v), u.max(v)),
                    _ => continue, // skips headers and malformed lines
                }
            } else {
                continue;
            };
            let slot = tally.entry(pair).or_insert((0, idx));
            slot.0 += 1;
            slot.1 = idx;
        }
        let mut ranked: Vec<((u32, u32), (u64, usize))> = tally.into_iter().collect();
        ranked.sort_unstable_by_key(|r| std::cmp::Reverse(r.1));
        ranked.truncate(WARMUP_KEY_CAP);
        ranked.into_iter().map(|(pair, _)| pair).collect()
    }

    /// Load a generation's co-located graph snapshot, verifying it
    /// against the manifest fingerprint.
    pub fn load_graph(&self, gen: GenId) -> Result<Option<DiGraph>, SlingError> {
        let manifest = self.manifest(gen)?;
        self.load_graph_with(gen, &manifest)
    }

    /// [`GenerationStore::load_graph`] against an already-validated
    /// manifest, so callers holding one (the serving reload path, which
    /// validates the manifest first anyway) do not re-read and
    /// re-checksum it.
    pub fn load_graph_with(
        &self,
        gen: GenId,
        manifest: &Manifest,
    ) -> Result<Option<DiGraph>, SlingError> {
        let Some(path) = self.graph_path(gen) else {
            return Ok(None);
        };
        let bytes = fs::read(path)?;
        let graph = binfmt::from_bytes(&bytes)
            .map_err(|e| corrupt(format!("{gen}: graph snapshot does not decode: {e}")))?;
        if graph.num_nodes() != manifest.num_nodes || graph.num_edges() != manifest.num_edges {
            return Err(SlingError::GraphMismatch {
                expected_nodes: manifest.num_nodes,
                found_nodes: graph.num_nodes(),
            });
        }
        Ok(Some(graph))
    }
}

/// Warm a freshly opened engine before it starts serving: advisory
/// prefetch (`madvise`/`fadvise` on the file-backed backends) of every
/// hot node's entry range, then a replay of the hot pairs so the §5.2
/// restore cache and the compressed backends' block caches are primed.
/// Out-of-range or failing pairs are skipped — warm-up must never block
/// a promotion. Returns the number of pairs successfully replayed.
pub fn warm_engine<S: HpStore>(
    engine: &SharedEngine<S>,
    graph: &DiGraph,
    hot_keys: &[(u32, u32)],
) -> usize {
    let n = engine.num_nodes() as u32;
    // Stage the pages first so the replay faults batched readahead
    // instead of one miss per query.
    for &(u, v) in hot_keys {
        if u < n {
            engine.store().prefetch(NodeId(u));
        }
        if v < n && v != u {
            engine.store().prefetch(NodeId(v));
        }
    }
    let mut ws = QueryWorkspace::new();
    let mut primed = 0;
    for &(u, v) in hot_keys {
        if u < n
            && v < n
            && engine
                .single_pair_with(graph, &mut ws, NodeId(u), NodeId(v))
                .is_ok()
        {
            primed += 1;
        }
    }
    KernelCounters::bump(&obs::LIFECYCLE.warmups);
    KernelCounters::bump_by(&obs::LIFECYCLE.warmup_keys, primed as u64);
    primed
}
