//! Index lifecycle: versioned generations, atomic promotion, and warm
//! restart.
//!
//! The SLING index is **immutable and file-backed** by design — exactly
//! the shape the long-running astronomy services this line of work grew
//! out of (SkyServer et al.) exploited for years of uninterrupted public
//! traffic: data releases are published as immutable versioned
//! snapshots, promoted atomically, and retired on a retention schedule.
//! This module brings that operational model to the sling stack. A
//! *generation* is one fully built index (plus, optionally, a snapshot
//! of the graph it was built from) living in its own directory; a
//! *promotion* atomically repoints the `CURRENT` pointer at a verified
//! generation; serving processes (see `sling-server`) watch the pointer
//! and hot-swap engines under live traffic, so reindexing never drops a
//! request.
//!
//! ## Directory layout
//!
//! ```text
//! <root>/
//!   CURRENT            one line, "gen-NNNN\n" — the promoted generation
//!   CURRENT.tmp        transient; promotion staging (crash debris if seen)
//!   hotkeys.log        replayable traffic lines for cache warm-up
//!                      (SLNGTRACE records; legacy "<u> <v>" still parses)
//!   gen-0001/
//!     index.slng       the index payload (SLNGIDX1 or SLNGIDX2)
//!     graph.bin        optional SLNGGRF1 graph snapshot
//!     MANIFEST         checksummed text record (see below)
//!   gen-0002/
//!     ...
//!   gen-0003.partial-<pid>/   transient; publish staging (crash debris)
//! ```
//!
//! Generation ids are monotone and never reused; `gen-NNNN` directory
//! names are zero-padded for lexicographic friendliness but any digit
//! count parses.
//!
//! ## MANIFEST format
//!
//! A small `key value` text file, checksummed with 64-bit FNV-1a (see
//! [`manifest`] for the field-by-field grammar):
//!
//! ```text
//! SLNGMANIFEST1
//! format SLNGIDX1 | SLNGIDX2
//! nodes <n>            edges <m>         — source-graph fingerprint
//! epsilon <ε>          c <c>   seed <s>  — build configuration
//! index_bytes <len>    index_fnv1a <hex> — payload digest
//! graph_bytes <len>    graph_fnv1a <hex> — optional snapshot digest
//! checksum <hex>                         — FNV-1a of all preceding bytes
//! ```
//!
//! ## Crash safety
//!
//! Every mutation is *stage, fsync, rename*:
//!
//! * **Publish** writes the payload into a `gen-NNNN.partial-<pid>`
//!   staging directory, fsyncs each file and the directory, then renames
//!   it to `gen-NNNN`. A crash mid-publish leaves only staging debris,
//!   which listing ignores and [`GenerationStore::gc`] sweeps.
//! * **Promote** fully verifies the target (manifest checksum *and*
//!   payload checksums), writes `CURRENT.tmp`, fsyncs, and renames it
//!   over `CURRENT`. Rename is atomic on POSIX filesystems, so at every
//!   instant — including across `kill -9` — `CURRENT` points at a valid,
//!   verified generation: the old one before the rename commits, the new
//!   one after.
//! * **GC** never touches `CURRENT`, anything newer than it, or the
//!   configured number of rollback candidates below it.
//!
//! ## Warm-up
//!
//! Before a generation goes live, [`warm_engine`] stages its pages
//! (advisory `madvise(WILLNEED)` via [`crate::store::HpStore::prefetch`]
//! on the mmap backends) and replays the store's hot-key log so the
//! §5.2 [`crate::store::RestoreCache`] and the compressed backends'
//! block caches are primed — the first post-swap requests hit warm
//! caches instead of paying cold-start latency under production
//! traffic. The log itself is operator- or pipeline-fed (checksummed
//! `SLNGTRACE` record lines, with legacy bare `<u> <v>` lines still
//! accepted; see
//! [`GenerationStore::append_hot_keys`][generation::GenerationStore::append_hot_keys]
//! and
//! [`GenerationStore::append_hot_trace`][generation::GenerationStore::append_hot_trace]):
//! the serving stack reads it but never writes it, and an absent log
//! simply skips warm-up. Keys replay in observed-frequency order, so a
//! capture fed through `append_hot_trace` warms the hottest traffic
//! first.
//!
//! ## Serving integration
//!
//! `sling-server` holds the open engine in an epoch-tagged reloadable
//! slot: in-flight requests finish on the generation they started on,
//! new requests pick up the promoted one, and the shared result cache's
//! epoch advances with the swap so a hit computed against a retired
//! index can never be served (see `ReloadableEngine` there and the
//! epoch-tagged [`crate::ShardedResultCache`] /
//! [`crate::store::RestoreCache`] here). [`crate::dynamic::DynamicSling`]
//! closes the loop: its rebuilds can publish into a [`GenerationStore`]
//! (and promote) instead of replacing the engine in place.

// Lifecycle code runs under live traffic; a panic here takes the whole
// serving process down, so fallible paths must return errors instead.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod generation;
pub mod manifest;

pub use generation::{warm_engine, GenId, GenerationStore};
pub use manifest::{fnv1a, FileDigest, Manifest};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::error::SlingError;
    use crate::index::SlingIndex;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use sling_graph::NodeId;
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sling_lifecycle_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cfg(seed: u64) -> SlingConfig {
        SlingConfig::from_epsilon(0.6, 0.1).with_seed(seed)
    }

    #[test]
    fn publish_list_promote_current_roundtrip() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg(7)).unwrap();
        let root = tmp_root("roundtrip");
        let store = GenerationStore::open(&root).unwrap();
        assert_eq!(store.list().unwrap(), vec![]);
        assert_eq!(store.current().unwrap(), None);

        let g1 = store.publish_index(&idx, Some(&g)).unwrap();
        assert_eq!(g1, GenId(1));
        assert_eq!(store.list().unwrap(), vec![GenId(1)]);
        // Published but not yet promoted.
        assert_eq!(store.current().unwrap(), None);

        let manifest = store.manifest(g1).unwrap();
        assert_eq!(manifest.num_nodes, g.num_nodes());
        assert_eq!(manifest.num_edges, g.num_edges());
        assert_eq!(manifest.seed, 7);
        assert!(manifest.graph.is_some());

        store.promote(g1).unwrap();
        assert_eq!(store.current().unwrap(), Some(GenId(1)));

        // The promoted generation opens and answers like the original.
        let loaded = SlingIndex::load(&g, store.index_path(g1)).unwrap();
        assert_eq!(
            loaded.single_pair(&g, NodeId(0), NodeId(1)),
            idx.single_pair(&g, NodeId(0), NodeId(1))
        );
        // And its graph snapshot round-trips with the right fingerprint.
        let snap = store.load_graph(g1).unwrap().unwrap();
        assert_eq!(snap.num_nodes(), g.num_nodes());
        assert_eq!(snap.num_edges(), g.num_edges());

        // A second publish gets the next id; promotion swaps atomically.
        let idx2 = SlingIndex::build(&g, &cfg(8)).unwrap();
        let g2 = store.publish_index(&idx2, None).unwrap();
        assert_eq!(g2, GenId(2));
        store.promote(g2).unwrap();
        assert_eq!(store.current().unwrap(), Some(GenId(2)));
        assert!(store.load_graph(g2).unwrap().is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn promote_refuses_corrupt_payloads() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg(3)).unwrap();
        let root = tmp_root("corrupt");
        let store = GenerationStore::open(&root).unwrap();
        let gen = store.publish_index(&idx, Some(&g)).unwrap();

        // Flip one payload byte: manifest() (size-only) still passes,
        // the full verify() gate behind promote() must not.
        let path = store.index_path(gen);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.manifest(gen).is_ok());
        let err = store.promote(gen).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        assert_eq!(store.current().unwrap(), None, "corrupt gen was promoted");

        // Restore the byte; now a flipped manifest byte must fail the
        // cheap manifest() check already.
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        store.promote(gen).unwrap();
        let mpath = store
            .generation_dir(gen)
            .join(super::manifest::MANIFEST_FILE);
        let mut mtext = std::fs::read(&mpath).unwrap();
        mtext[20] ^= 0x01;
        std::fs::write(&mpath, &mtext).unwrap();
        assert!(store.manifest(gen).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn interrupted_promotion_leaves_a_valid_current() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg(3)).unwrap();
        let root = tmp_root("interrupted");
        let store = GenerationStore::open(&root).unwrap();
        let g1 = store.publish_index(&idx, None).unwrap();
        store.promote(g1).unwrap();
        let g2 = store.publish_index(&idx, None).unwrap();

        // Simulate a crash between writing CURRENT.tmp and the rename: a
        // stray tmp file (even garbage) must not affect reads, and the
        // next promotion must simply overwrite it.
        std::fs::write(root.join("CURRENT.tmp"), b"gen-9999 torn garbage").unwrap();
        assert_eq!(
            store.current().unwrap(),
            Some(g1),
            "tmp file leaked into reads"
        );
        store.promote(g2).unwrap();
        assert_eq!(store.current().unwrap(), Some(g2));
        assert!(!root.join("CURRENT.tmp").exists(), "promotion left its tmp");

        // Simulate a crash mid-publish: a partial staging dir is ignored
        // by list() and id allocation, and gc() sweeps it.
        let debris = root.join("gen-0003.partial-12345");
        std::fs::create_dir_all(&debris).unwrap();
        std::fs::write(debris.join("index.slng"), b"half written").unwrap();
        assert_eq!(store.list().unwrap(), vec![g1, g2]);
        let g3 = store.publish_index(&idx, None).unwrap();
        assert_eq!(g3, GenId(3), "debris perturbed id allocation");
        store.gc(usize::MAX).unwrap();
        assert!(!debris.exists(), "gc left publish debris behind");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn gc_retires_old_generations_but_keeps_rollback_candidates() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg(3)).unwrap();
        let root = tmp_root("gc");
        let store = GenerationStore::open(&root).unwrap();
        let ids: Vec<GenId> = (0..5)
            .map(|_| store.publish_index(&idx, None).unwrap())
            .collect();
        // Nothing promoted: nothing is retired.
        assert_eq!(store.gc(0).unwrap(), vec![]);
        assert_eq!(store.list().unwrap().len(), 5);

        store.promote(ids[3]).unwrap(); // gen-0004 current; gen-0005 pending
        let removed = store.gc(1).unwrap();
        // Retired below current: 1, 2, 3; keep the newest retired (3).
        assert_eq!(removed, vec![ids[0], ids[1]]);
        assert_eq!(store.list().unwrap(), vec![ids[2], ids[3], ids[4]]);

        // Ids are never reused after GC.
        assert_eq!(store.publish_index(&idx, None).unwrap(), GenId(6));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn publish_rejects_mismatched_graph_snapshots() {
        let g = two_cliques_bridge(4);
        let other = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg(3)).unwrap();
        let root = tmp_root("mismatch");
        let store = GenerationStore::open(&root).unwrap();
        let err = store.publish_index(&idx, Some(&other)).unwrap_err();
        assert!(matches!(err, SlingError::GraphMismatch { .. }));
        assert_eq!(store.list().unwrap(), vec![], "failed publish left debris");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn hot_key_log_roundtrips_and_warms_the_engine() {
        let g = barabasi_albert(150, 3, 31).unwrap();
        let config = cfg(13).with_enhancement(true);
        let idx = SlingIndex::build(&g, &config).unwrap();
        assert!(idx.stats().reduced_nodes > 0, "fixture must reduce nodes");
        let root = tmp_root("hotkeys");
        let store = GenerationStore::open(&root).unwrap();
        assert_eq!(store.read_hot_keys(), vec![]);
        store.append_hot_keys(&[(5, 0), (0, 1), (0, 2)]).unwrap();
        store.append_hot_keys(&[(0, 1), (9999, 3)]).unwrap();
        let keys = store.read_hot_keys();
        // Frequency-ranked ((0,1) appears twice), ties newest-first,
        // deduplicated, canonicalized.
        assert_eq!(keys, vec![(0, 1), (3, 9999), (0, 2), (0, 5)]);

        let engine = crate::store::SharedEngine::from(idx.clone());
        let primed = warm_engine(&engine, &g, &keys);
        assert_eq!(primed, 3, "out-of-range pair must be skipped, not fail");
        // Warm-up populated the restore cache: hub restores are memoized.
        assert!(engine.restore_cache().resident_bytes() > 0);
        // And of course warmed answers stay bit-identical.
        assert_eq!(
            engine.single_pair(&g, NodeId(0), NodeId(1)).unwrap(),
            idx.single_pair(&g, NodeId(0), NodeId(1))
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn hot_key_log_mixes_trace_and_legacy_lines() {
        use crate::workload::trace::{TraceKey, TraceOutcome, TraceRecord, TraceVerb};
        let root = tmp_root("hotkeys_mixed");
        let store = GenerationStore::open(&root).unwrap();
        let log = root.join("hotkeys.log");
        // Operator-fed legacy dialect plus junk that must be ignored.
        std::fs::write(&log, "7 3\nnot a pair\n").unwrap();
        // Captured traffic: node-addressed verbs degrade to identity
        // pairs, repeated pairs accumulate frequency.
        use std::io::Write as _;
        let rec = |verb, key| TraceRecord {
            t_us: 0,
            verb,
            key,
            outcome: TraceOutcome::Ok,
            latency_us: 5,
            epoch: 3,
        };
        store
            .append_hot_trace(&[
                rec(TraceVerb::Pair, TraceKey::Pair(2, 1)),
                rec(TraceVerb::Source, TraceKey::Node(9)),
                rec(TraceVerb::Pair, TraceKey::Pair(1, 2)),
            ])
            .unwrap();
        // A bit-flipped trace line fails its checksum and is skipped.
        let mut damaged = String::new();
        crate::workload::trace::encode_record(
            &rec(TraceVerb::Pair, TraceKey::Pair(4, 5)),
            0,
            &mut damaged,
        );
        let damaged = damaged.replacen("4,5", "4,6", 1);
        std::fs::OpenOptions::new()
            .append(true)
            .open(&log)
            .unwrap()
            .write_all(damaged.as_bytes())
            .unwrap();
        // Frequency first, then recency; both dialects canonicalized.
        assert_eq!(store.read_hot_keys(), vec![(1, 2), (9, 9), (3, 7)]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn gen_id_parsing_is_strict() {
        assert_eq!(GenId::parse("gen-0001"), Some(GenId(1)));
        assert_eq!(GenId::parse("gen-12345"), Some(GenId(12345)));
        assert_eq!(GenId(7).dir_name(), "gen-0007");
        assert_eq!(GenId::parse(&GenId(9999).dir_name()), Some(GenId(9999)));
        for bad in [
            "gen-",
            "gen-00x1",
            "gen-0001.partial-7",
            "CURRENT",
            "CURRENT.tmp",
            "hotkeys.log",
            "0001",
            "gen0001",
        ] {
            assert_eq!(GenId::parse(bad), None, "{bad:?} parsed");
        }
    }
}
