//! The storage-backend layer: [`HpStore`] and the [`QueryEngine`]
//! front-end.
//!
//! §5.4 of the paper observes that SLING "can efficiently process queries
//! even when its index structure does not fit in the main memory": every
//! query touches `O(1/ε)` hitting-probability entries, i.e. a constant
//! number of positioned reads. This module turns that observation into a
//! DBMS-style layering. The query algorithms (Algorithms 3, 5, 6 and the
//! §5.2/§5.3 effective-entry materialization) are written once, generic
//! over an [`HpStore`] — the read interface to the packed per-node HP
//! sets — and three backends implement it:
//!
//! * [`crate::hp::HpArena`] — the in-memory parallel-array arena;
//! * [`MmapHpArena`] — a **zero-copy memory-mapped view** of a persisted
//!   `SLNGIDX1` index file: opening validates the header and the offset
//!   table but never decodes the entry payload, so open cost is
//!   independent of index size and queries read entries straight out of
//!   the page cache;
//! * [`crate::out_of_core::DiskHpStore`] (optionally fronted by the
//!   [`crate::disk_query::BufferedDiskStore`] LRU buffer pool) — explicit
//!   positioned reads with only `O(n)` metadata resident.
//!
//! [`QueryEngine`] bundles a store with the query-side metadata (config,
//! correction factors, §5.2 reduction bitmap, §5.3 marks) and exposes the
//! full query API — single-pair, single-source, top-k, joins, batches —
//! with identical scores across backends: same entries, same merge order,
//! same floating-point arithmetic.

use std::borrow::Cow;
use std::ops::Range;
use std::path::Path;

use memmap2::{Advice, Mmap};
use sling_graph::{DiGraph, NodeId};

use crate::config::SlingConfig;
use crate::enhance::MarkArena;
use crate::error::SlingError;
use crate::format::decode_meta;
use crate::hp::{HpArena, HpEntry};
use crate::index::{BuildStats, QueryWorkspace, SlingIndex};
use crate::join::{threshold_join_core, JoinPair, JoinStrategy};
use crate::single_pair::single_pair_core;
use crate::single_source::{single_source_core, SingleSourceWorkspace};
use crate::topk::{select_top_k, single_source_truncated_core};

/// Read interface to a packed hitting-probability store.
///
/// Entry indices are *global*: node `v`'s run occupies `range(v)` of a
/// conceptual array of `total_entries()` entries sorted by
/// `(owner, step, node)`. Backends that read from untrusted bytes (mmap,
/// disk) must bound-check every decoded entry (`node < num_nodes`), so
/// the fallible methods return [`SlingError`] rather than panicking on a
/// corrupt or truncated file.
pub trait HpStore {
    /// Number of nodes covered by the store.
    fn num_nodes(&self) -> usize;

    /// Total entries across all nodes.
    fn total_entries(&self) -> usize;

    /// Global entry-index range of `H(v)`.
    fn range(&self, v: NodeId) -> Range<usize>;

    /// Materialize `H(v)` into `out` (cleared first), in `(step, node)`
    /// order.
    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError>;

    /// Random access by global entry index (used by §5.3 mark expansion).
    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError>;

    /// Whether `H(v)` stores the exact `(step, node)` key. The default
    /// binary-searches the sorted run through [`HpStore::entry_at`];
    /// backends with direct array access may override.
    fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> Result<bool, SlingError> {
        let range = checked_range(self, v)?;
        let (mut lo, mut hi) = (range.start, range.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = self.entry_at(mid)?;
            match e.key().cmp(&(step, node)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(true),
            }
        }
        Ok(false)
    }

    /// Heap-resident bytes of the store itself (excludes file-backed or
    /// page-cache pages, which is the point of the out-of-core backends).
    fn resident_bytes(&self) -> usize;

    /// Advise the backend that `H(v)` is about to be read, so out-of-core
    /// backends can stage the entry bytes *before* the scan loop instead
    /// of paying one major fault (or one positioned read) per payload
    /// section at decode time. Purely advisory — correctness never
    /// depends on it — and a no-op for memory-resident backends. Server
    /// workers call this for a query's endpoints before querying.
    fn prefetch(&self, _v: NodeId) {}
}

/// `range(v)` with the structural sanity the untrusted backends need
/// before trusting it: well-ordered and inside the entry array. A store
/// whose offset table mutates underneath it (a file overwritten after
/// open) must surface that as an error, not an out-of-bounds access.
pub(crate) fn checked_range<S: HpStore + ?Sized>(
    store: &S,
    v: NodeId,
) -> Result<Range<usize>, SlingError> {
    let range = store.range(v);
    if range.start > range.end || range.end > store.total_entries() {
        return Err(SlingError::CorruptIndex(format!(
            "entry range {range:?} of {v:?} exceeds the store ({} entries)",
            store.total_entries()
        )));
    }
    Ok(range)
}

impl HpStore for HpArena {
    #[inline]
    fn num_nodes(&self) -> usize {
        HpArena::num_nodes(self)
    }

    #[inline]
    fn total_entries(&self) -> usize {
        HpArena::total_entries(self)
    }

    #[inline]
    fn range(&self, v: NodeId) -> Range<usize> {
        HpArena::range(self, v)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        self.fill(v, out);
        Ok(())
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        Ok(HpEntry::new(
            self.steps[i],
            NodeId(self.nodes[i]),
            self.values[i],
        ))
    }

    fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> Result<bool, SlingError> {
        Ok(HpArena::contains_key(self, v, step, node))
    }

    fn resident_bytes(&self) -> usize {
        HpArena::resident_bytes(self)
    }
}

/// Reject payload values that cannot be hitting probabilities. The
/// out-of-core backends decode entries from untrusted bytes at query
/// time; letting a non-finite value through would poison downstream
/// score sorts (which rightly assume finite scores) with a panic instead
/// of an error.
pub(crate) fn check_value(i: usize, value: f64) -> Result<(), SlingError> {
    if !value.is_finite() || !(0.0..=1.0 + 1e-9).contains(&value) {
        return Err(SlingError::CorruptIndex(format!(
            "entry {i} holds a non-probability HP value {value}"
        )));
    }
    Ok(())
}

impl<S: HpStore + ?Sized> HpStore for &S {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn total_entries(&self) -> usize {
        (**self).total_entries()
    }

    fn range(&self, v: NodeId) -> Range<usize> {
        (**self).range(v)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        (**self).entries_into(v, out)
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        (**self).entry_at(i)
    }

    fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> Result<bool, SlingError> {
        (**self).contains_key(v, step, node)
    }

    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }

    fn prefetch(&self, v: NodeId) {
        (**self).prefetch(v)
    }
}

/// Borrowed view of everything a query needs: the store plus the
/// query-side metadata. `Copy`, so the generic algorithm cores pass it by
/// value. Internal glue between [`SlingIndex`], [`QueryEngine`], and the
/// per-module algorithm implementations.
pub(crate) struct EngineRef<'a, S: HpStore> {
    pub store: &'a S,
    pub config: &'a SlingConfig,
    pub d: &'a [f64],
    pub reduced: &'a [bool],
    pub marks: &'a MarkArena,
}

impl<S: HpStore> Clone for EngineRef<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: HpStore> Copy for EngineRef<'_, S> {}

impl<S: HpStore> EngineRef<'_, S> {
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.reduced.len()
    }

    pub fn check_node(&self, v: NodeId) -> Result<(), SlingError> {
        if v.index() >= self.num_nodes() {
            return Err(SlingError::NodeOutOfRange {
                node: v.0,
                n: self.num_nodes() as u32,
            });
        }
        Ok(())
    }
}

/// Zero-copy memory-mapped view of a persisted `SLNGIDX1` index file.
///
/// `open` maps the file and validates the header, metadata, and offset
/// table — it never decodes the entry payload, so the cost is independent
/// of the number of stored entries and no `HpArena` is materialized.
/// Entries are decoded on demand, one `(step, node, value)` at a time,
/// straight from the mapping; repeated queries hit the page cache. Every
/// decoded entry is bound-checked so a file corrupted *after* open still
/// surfaces as [`SlingError::CorruptIndex`], never a panic.
pub struct MmapHpArena {
    map: Mmap,
    num_nodes: usize,
    entries: usize,
    /// Byte offset of the `(n + 1)`-entry `u64` HP offset table.
    offsets_base: usize,
    steps_base: usize,
    nodes_base: usize,
    values_base: usize,
}

impl MmapHpArena {
    /// Map `path` and validate its structure (header + offset table
    /// only). Returns the arena plus the decoded query-side metadata.
    pub(crate) fn open_with_meta(
        path: impl AsRef<Path>,
    ) -> Result<(MmapHpArena, crate::format::DecodedMeta), SlingError> {
        let file = std::fs::File::open(path)?;
        // SAFETY: the standard memmap contract — the caller must not
        // truncate the index file while the arena is alive. Concurrent
        // *content* corruption is tolerated: reads are bound-checked and
        // decode errors surface as SlingError.
        let map = unsafe { Mmap::map(&file) }?;
        let meta = decode_meta(&map)?;
        let arena = MmapHpArena {
            num_nodes: meta.num_nodes,
            entries: meta.entries,
            offsets_base: meta.offsets_base,
            steps_base: meta.steps_base,
            nodes_base: meta.nodes_base,
            values_base: meta.values_base,
            map,
        };
        Ok((arena, meta))
    }

    /// Map and validate `path` without retaining the metadata. Prefer
    /// [`QueryEngine::open_mmap`], which keeps the correction factors and
    /// reduction bitmap needed to answer queries.
    pub fn open(path: impl AsRef<Path>) -> Result<MmapHpArena, SlingError> {
        Ok(Self::open_with_meta(path)?.0)
    }

    #[inline]
    fn read_u64(&self, at: usize) -> u64 {
        // In bounds by construction: decode_meta validated that every
        // section lies inside the mapping.
        u64::from_le_bytes(self.map[at..at + 8].try_into().unwrap())
    }

    #[inline]
    fn offset(&self, i: usize) -> usize {
        self.read_u64(self.offsets_base + i * 8) as usize
    }

    /// Decode entry `i`, bound-checking the node id against `n`.
    #[inline]
    fn decode_entry(&self, i: usize) -> Result<HpEntry, SlingError> {
        // Hard bound, not a debug_assert: the offset table lives in the
        // mapping and can mutate after open, and an index past `entries`
        // must surface as CorruptIndex rather than a slice panic.
        if i >= self.entries {
            return Err(SlingError::CorruptIndex(format!(
                "mmap entry index {i} past the {} stored entries",
                self.entries
            )));
        }
        let step = u16::from_le_bytes(
            self.map[self.steps_base + i * 2..self.steps_base + i * 2 + 2]
                .try_into()
                .unwrap(),
        );
        let node = u32::from_le_bytes(
            self.map[self.nodes_base + i * 4..self.nodes_base + i * 4 + 4]
                .try_into()
                .unwrap(),
        );
        if node as usize >= self.num_nodes {
            return Err(SlingError::CorruptIndex(format!(
                "mmap entry {i} references node {node} past n = {}",
                self.num_nodes
            )));
        }
        let value = f64::from_bits(self.read_u64(self.values_base + i * 8));
        check_value(i, value)?;
        Ok(HpEntry::new(step, NodeId(node), value))
    }

    /// Bytes of the underlying mapping (for space reports).
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }

    /// `madvise(WILLNEED)` the byte ranges holding `H(v)`'s three payload
    /// sections, so a cold query faults its entries in with batched
    /// readahead instead of one major fault per section. Advisory only:
    /// alignment is handled inside the mapping and failures (or a range
    /// the offset table has corrupted) are ignored — the bound-checked
    /// decode path still governs correctness.
    pub fn prefetch_entries(&self, v: NodeId) {
        if v.index() >= self.num_nodes {
            return;
        }
        let range = self.range(v);
        if range.start > range.end || range.end > self.entries || range.is_empty() {
            return;
        }
        let count = range.len();
        for (base, width) in [
            (self.steps_base, 2usize),
            (self.nodes_base, 4),
            (self.values_base, 8),
        ] {
            let _ =
                self.map
                    .advise_range(Advice::WillNeed, base + range.start * width, count * width);
        }
    }
}

impl HpStore for MmapHpArena {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.entries
    }

    #[inline]
    fn range(&self, v: NodeId) -> Range<usize> {
        let i = v.index();
        self.offset(i)..self.offset(i + 1)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        out.clear();
        let range = checked_range(self, v)?;
        out.reserve(range.len());
        for i in range {
            out.push(self.decode_entry(i)?);
        }
        Ok(())
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        self.decode_entry(i)
    }

    /// The entry payload lives in the page cache, not on this struct's
    /// heap: only the handle itself counts.
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn prefetch(&self, v: NodeId) {
        self.prefetch_entries(v);
    }
}

/// Query front-end generic over the storage backend.
///
/// Owns (or borrows) the store plus the query-side metadata and exposes
/// the full SLING query surface with `Result`-returning methods — the
/// disk-backed stores can fail mid-query, so the engine API is fallible
/// where [`SlingIndex`]'s in-memory convenience API is not. All backends
/// return **identical** scores for the same persisted index.
pub struct QueryEngine<'a, S: HpStore> {
    store: S,
    config: Cow<'a, SlingConfig>,
    d: Cow<'a, [f64]>,
    reduced: Cow<'a, [bool]>,
    marks: Cow<'a, MarkArena>,
    stats: BuildStats,
}

impl<'a, S: HpStore> QueryEngine<'a, S> {
    /// Assemble an engine from parts (used by the backend constructors).
    pub(crate) fn from_parts(
        store: S,
        config: Cow<'a, SlingConfig>,
        d: Cow<'a, [f64]>,
        reduced: Cow<'a, [bool]>,
        marks: Cow<'a, MarkArena>,
        stats: BuildStats,
    ) -> Self {
        QueryEngine {
            store,
            config,
            d,
            reduced,
            marks,
            stats,
        }
    }

    pub(crate) fn engine_ref(&self) -> EngineRef<'_, S> {
        EngineRef {
            store: &self.store,
            config: &self.config,
            d: &self.d,
            reduced: &self.reduced,
            marks: &self.marks,
        }
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Type-erased view of this engine, for callers (like the CLI) that
    /// pick the backend at runtime.
    pub fn erase(&self) -> QueryEngine<'_, &dyn HpStore> {
        QueryEngine {
            store: &self.store as &dyn HpStore,
            config: Cow::Borrowed(&self.config),
            d: Cow::Borrowed(&self.d),
            reduced: Cow::Borrowed(&self.reduced),
            marks: Cow::Borrowed(&self.marks),
            stats: self.stats,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// Build statistics recorded in the index.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Number of nodes of the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.reduced.len()
    }

    /// Heap-resident bytes: store + metadata. For the mmap backend this
    /// is `O(n)` metadata only — the entry payload stays in the page
    /// cache.
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
            + self.d.len() * 8
            + self.reduced.len()
            + self.marks.resident_bytes()
    }

    fn check_pair(&self, u: NodeId, v: NodeId) -> Result<(), SlingError> {
        let e = self.engine_ref();
        e.check_node(u)?;
        e.check_node(v)
    }

    /// Single-pair SimRank estimate `s̃(u, v)` (Algorithm 3).
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> Result<f64, SlingError> {
        let mut ws = QueryWorkspace::new();
        self.single_pair_with(graph, &mut ws, u, v)
    }

    /// Single-pair query reusing caller-provided buffers.
    pub fn single_pair_with(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        self.check_pair(u, v)?;
        single_pair_core(self.engine_ref(), graph, ws, u, v)
    }

    /// Single-source query from `u` (Algorithm 6).
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        self.single_source_with(graph, &mut ws, u, &mut out)?;
        Ok(out)
    }

    /// Single-source query into caller-provided buffers; allocation-free
    /// after warm-up on every backend.
    pub fn single_source_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) -> Result<(), SlingError> {
        self.engine_ref().check_node(u)?;
        single_source_core(self.engine_ref(), graph, ws, u, out)
    }

    /// Algorithm 6 with early termination (see
    /// [`SlingIndex::single_source_truncated`]). Returns the residual
    /// bound that was dropped.
    pub fn single_source_truncated(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        slack: f64,
        out: &mut Vec<f64>,
    ) -> Result<f64, SlingError> {
        self.engine_ref().check_node(u)?;
        single_source_truncated_core(self.engine_ref(), graph, ws, u, slack, out)
    }

    /// Top-k most similar nodes to `u` (excluding `u`), heap-selected.
    pub fn top_k(
        &self,
        graph: &DiGraph,
        u: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        let scores = self.single_source(graph, u)?;
        Ok(select_top_k(&scores, Some(u), k))
    }

    /// Early-terminating top-k: every returned score is within `slack` of
    /// the full Algorithm-6 estimate.
    pub fn top_k_approx(
        &self,
        graph: &DiGraph,
        u: NodeId,
        k: usize,
        slack: f64,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut scores = Vec::new();
        self.single_source_truncated(graph, &mut ws, u, slack, &mut scores)?;
        Ok(select_top_k(&scores, Some(u), k))
    }

    /// All unordered pairs with `s̃(u, v) ≥ tau` (see
    /// [`SlingIndex::threshold_join`]).
    pub fn threshold_join(
        &self,
        graph: &DiGraph,
        tau: f64,
        strategy: JoinStrategy,
    ) -> Result<Vec<JoinPair>, SlingError> {
        threshold_join_core(self.engine_ref(), graph, tau, strategy)
    }

    /// The `k` highest-scoring unordered pairs above `prune`.
    pub fn top_k_join(
        &self,
        graph: &DiGraph,
        k: usize,
        prune: f64,
        strategy: JoinStrategy,
    ) -> Result<Vec<JoinPair>, SlingError> {
        let mut pairs = self.threshold_join(graph, prune.max(f64::MIN_POSITIVE), strategy)?;
        pairs.truncate(k);
        Ok(pairs)
    }
}

impl<S: HpStore + Sync> QueryEngine<'_, S> {
    /// Evaluate a batch of single-pair queries on `threads` workers
    /// (results positionally aligned with `pairs`).
    pub fn batch_single_pair(
        &self,
        graph: &DiGraph,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Result<Vec<f64>, SlingError> {
        for &(u, v) in pairs {
            self.check_pair(u, v)?;
        }
        crate::batch::batch_single_pair_core(self.engine_ref(), graph, pairs, threads)
    }

    /// Evaluate single-source queries from every node in `sources` on
    /// `threads` workers.
    pub fn batch_single_source(
        &self,
        graph: &DiGraph,
        sources: &[NodeId],
        threads: usize,
    ) -> Result<Vec<Vec<f64>>, SlingError> {
        for &u in sources {
            self.engine_ref().check_node(u)?;
        }
        crate::batch::batch_single_source_core(self.engine_ref(), graph, sources, threads)
    }
}

impl QueryEngine<'static, MmapHpArena> {
    /// Open a persisted index as a zero-copy mmap engine, verifying it
    /// matches `graph`. Open cost is header + offset-table validation
    /// plus the `O(n)` query-side metadata (correction factors, reduction
    /// bitmap, marks) — the entry payload is never decoded.
    pub fn open_mmap(
        graph: &DiGraph,
        path: impl AsRef<Path>,
    ) -> Result<QueryEngine<'static, MmapHpArena>, SlingError> {
        let e = SharedEngine::open_mmap(graph, path)?;
        Ok(QueryEngine::from_parts(
            e.store,
            Cow::Owned(e.config),
            Cow::Owned(e.d),
            Cow::Owned(e.reduced),
            Cow::Owned(e.marks),
            e.stats,
        ))
    }
}

/// Owned, thread-shareable query engine: a storage backend plus all
/// query-side metadata held **by value**.
///
/// [`QueryEngine`] is lifetime-bound — fine for one-shot CLI runs, but a
/// long-lived server wants to open an index once, wrap it in an
/// [`std::sync::Arc`], and let every worker thread query it for the
/// process lifetime. `SharedEngine` is that owner: it is `Send + Sync`
/// whenever the store is (all three backends are), queries take `&self`,
/// and [`SharedEngine::view`] yields a borrowed [`QueryEngine`] over
/// `&S` exposing the full query surface (single-pair, single-source,
/// top-k, joins, batches) with the exact same scores.
///
/// Workers keep their own [`QueryWorkspace`]/[`SingleSourceWorkspace`],
/// so the hot path shares only immutable state — no locks.
pub struct SharedEngine<S: HpStore> {
    store: S,
    config: SlingConfig,
    d: Vec<f64>,
    reduced: Vec<bool>,
    marks: MarkArena,
    stats: BuildStats,
}

impl SharedEngine<MmapHpArena> {
    /// Open a persisted index as an owned zero-copy mmap engine, verifying
    /// it matches `graph`. Open cost is header + offset-table validation
    /// plus the `O(n)` query-side metadata — the entry payload stays in
    /// the page cache and is decoded on demand, bound-checked.
    pub fn open_mmap(
        graph: &DiGraph,
        path: impl AsRef<Path>,
    ) -> Result<SharedEngine<MmapHpArena>, SlingError> {
        let (arena, meta) = MmapHpArena::open_with_meta(path)?;
        if meta.num_nodes != graph.num_nodes() || meta.num_edges != graph.num_edges() {
            return Err(SlingError::GraphMismatch {
                expected_nodes: meta.num_nodes,
                found_nodes: graph.num_nodes(),
            });
        }
        Ok(SharedEngine {
            store: arena,
            config: meta.config,
            d: meta.d,
            reduced: meta.reduced,
            marks: meta.marks,
            stats: meta.stats,
        })
    }
}

impl From<SlingIndex> for SharedEngine<HpArena> {
    /// Consume an in-memory index into an owned engine over its arena.
    fn from(index: SlingIndex) -> Self {
        SharedEngine {
            store: index.hp,
            config: index.config,
            d: index.d,
            reduced: index.reduced,
            marks: index.marks,
            stats: index.stats,
        }
    }
}

impl<S: HpStore> SharedEngine<S> {
    /// Assemble an engine from parts (used by the backend constructors).
    pub(crate) fn from_owned_parts(
        store: S,
        config: SlingConfig,
        d: Vec<f64>,
        reduced: Vec<bool>,
        marks: MarkArena,
        stats: BuildStats,
    ) -> Self {
        SharedEngine {
            store,
            config,
            d,
            reduced,
            marks,
            stats,
        }
    }

    pub(crate) fn engine_ref(&self) -> EngineRef<'_, S> {
        EngineRef {
            store: &self.store,
            config: &self.config,
            d: &self.d,
            reduced: &self.reduced,
            marks: &self.marks,
        }
    }

    /// Borrowed [`QueryEngine`] view exposing the full query surface
    /// (joins, truncated single-source, batches, type erasure, ...).
    pub fn view(&self) -> QueryEngine<'_, &S> {
        QueryEngine::from_parts(
            &self.store,
            Cow::Borrowed(&self.config),
            Cow::Borrowed(&self.d[..]),
            Cow::Borrowed(&self.reduced[..]),
            Cow::Borrowed(&self.marks),
            self.stats,
        )
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// Build statistics recorded in the index.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Number of nodes of the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.reduced.len()
    }

    /// Heap-resident bytes: store + query-side metadata.
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
            + self.d.len() * 8
            + self.reduced.len()
            + self.marks.resident_bytes()
    }

    fn check_pair(&self, u: NodeId, v: NodeId) -> Result<(), SlingError> {
        let e = self.engine_ref();
        e.check_node(u)?;
        e.check_node(v)
    }

    /// Single-pair SimRank estimate `s̃(u, v)` (Algorithm 3).
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> Result<f64, SlingError> {
        let mut ws = QueryWorkspace::new();
        self.single_pair_with(graph, &mut ws, u, v)
    }

    /// Single-pair query reusing caller-provided buffers — the server
    /// workers' hot path.
    pub fn single_pair_with(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        self.check_pair(u, v)?;
        single_pair_core(self.engine_ref(), graph, ws, u, v)
    }

    /// Single-source query from `u` (Algorithm 6).
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        self.single_source_with(graph, &mut ws, u, &mut out)?;
        Ok(out)
    }

    /// Single-source query into caller-provided buffers; allocation-free
    /// after warm-up on every backend.
    pub fn single_source_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) -> Result<(), SlingError> {
        self.engine_ref().check_node(u)?;
        single_source_core(self.engine_ref(), graph, ws, u, out)
    }

    /// Top-k most similar nodes to `u` (excluding `u`), heap-selected.
    pub fn top_k(
        &self,
        graph: &DiGraph,
        u: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut scores = Vec::new();
        self.top_k_with(graph, &mut ws, &mut scores, u, k)
    }

    /// Top-k reusing caller-provided buffers (`scores` holds the full
    /// Algorithm-6 vector afterwards).
    pub fn top_k_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        scores: &mut Vec<f64>,
        u: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        self.single_source_with(graph, ws, u, scores)?;
        Ok(select_top_k(scores, Some(u), k))
    }
}

impl<S: HpStore + Sync> SharedEngine<S> {
    /// Evaluate a batch of single-pair queries on `threads` workers
    /// (results positionally aligned with `pairs`).
    pub fn batch_single_pair(
        &self,
        graph: &DiGraph,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Result<Vec<f64>, SlingError> {
        for &(u, v) in pairs {
            self.check_pair(u, v)?;
        }
        crate::batch::batch_single_pair_core(self.engine_ref(), graph, pairs, threads)
    }

    /// Evaluate single-source queries from every node in `sources` on
    /// `threads` workers.
    pub fn batch_single_source(
        &self,
        graph: &DiGraph,
        sources: &[NodeId],
        threads: usize,
    ) -> Result<Vec<Vec<f64>>, SlingError> {
        for &u in sources {
            self.engine_ref().check_node(u)?;
        }
        crate::batch::batch_single_source_core(self.engine_ref(), graph, sources, threads)
    }
}

impl SlingIndex {
    /// Borrowing query engine over the in-memory arena. Queries through
    /// it return the same scores as the [`SlingIndex`] convenience
    /// methods — and the same scores any other backend serving this index
    /// would return.
    pub fn query_engine(&self) -> QueryEngine<'_, &HpArena> {
        QueryEngine::from_parts(
            &self.hp,
            Cow::Borrowed(&self.config),
            Cow::Borrowed(&self.d),
            Cow::Borrowed(&self.reduced),
            Cow::Borrowed(&self.marks),
            self.stats,
        )
    }

    /// Consume the index into an owned, `Arc`-shareable engine over its
    /// in-memory arena (see [`SharedEngine`]).
    pub fn into_shared_engine(self) -> SharedEngine<HpArena> {
        SharedEngine::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use std::path::PathBuf;

    const C: f64 = 0.6;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sling_store_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("index.slng")
    }

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(C, 0.1)
            .with_seed(13)
            .with_enhancement(true)
    }

    #[test]
    fn arena_and_mmap_stores_agree_entrywise() {
        let g = barabasi_albert(120, 3, 5).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("entrywise");
        idx.save(&path).unwrap();
        let mmap = MmapHpArena::open(&path).unwrap();
        assert_eq!(HpStore::num_nodes(&idx.hp), mmap.num_nodes);
        assert_eq!(
            HpStore::total_entries(&idx.hp),
            HpStore::total_entries(&mmap)
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in g.nodes() {
            assert_eq!(HpStore::range(&idx.hp, v), HpStore::range(&mmap, v));
            idx.hp.entries_into(v, &mut a).unwrap();
            mmap.entries_into(v, &mut b).unwrap();
            assert_eq!(a, b, "H({v:?}) differs between arena and mmap");
            for e in &a {
                assert!(mmap.contains_key(v, e.step, e.node).unwrap());
            }
            assert!(!mmap.contains_key(v, u16::MAX, NodeId(0)).unwrap());
        }
        for i in 0..HpStore::total_entries(&mmap) {
            assert_eq!(idx.hp.entry_at(i).unwrap(), mmap.entry_at(i).unwrap());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_open_is_metadata_only() {
        let g = barabasi_albert(200, 3, 7).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("o1open");
        let mut bytes = idx.to_bytes();
        // Corrupt the *entry payload* (last 8 bytes = final HP value) with
        // a NaN. A full decode rejects this file; a metadata-only open
        // must accept it — proving open never scans the payload.
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SlingIndex::from_bytes(&g, &bytes),
            Err(SlingError::CorruptIndex(_))
        ));
        let engine = QueryEngine::open_mmap(&g, &path).unwrap();
        // And the handle holds O(n) metadata, not the O(n/eps) payload.
        assert!(engine.resident_bytes() < idx.resident_bytes());
        assert!(
            HpStore::resident_bytes(engine.store()) < 256,
            "mmap store must not materialize entries"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_from_index_matches_index_queries() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let engine = idx.query_engine();
        for u in g.nodes() {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
            for v in g.nodes() {
                assert_eq!(
                    engine.single_pair(&g, u, v).unwrap(),
                    idx.single_pair(&g, u, v)
                );
            }
        }
        assert!(engine.single_pair(&g, NodeId(0), NodeId(99)).is_err());
        assert!(engine.single_source(&g, NodeId(99)).is_err());
    }

    #[test]
    fn mmap_engine_matches_in_memory_exactly() {
        let g = barabasi_albert(150, 2, 3).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("exact");
        idx.save(&path).unwrap();
        let engine = QueryEngine::open_mmap(&g, &path).unwrap();
        for u in [NodeId(0), NodeId(17), NodeId(149)] {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
            assert_eq!(engine.top_k(&g, u, 7).unwrap(), idx.top_k_heap(&g, u, 7));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_queries_reject_out_of_range_nodes() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let engine = idx.query_engine();
        assert!(matches!(
            engine.batch_single_pair(&g, &[(NodeId(0), NodeId(9999))], 1),
            Err(SlingError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            engine.batch_single_source(&g, &[NodeId(1), NodeId(9999)], 2),
            Err(SlingError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn mmap_rejects_wrong_graph() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("wronggraph");
        idx.save(&path).unwrap();
        let other = two_cliques_bridge(5);
        assert!(matches!(
            QueryEngine::open_mmap(&other, &path),
            Err(SlingError::GraphMismatch { .. })
        ));
        assert!(matches!(
            SharedEngine::open_mmap(&other, &path),
            Err(SlingError::GraphMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_engine_view_matches_index_and_is_arc_shareable() {
        let g = barabasi_albert(120, 3, 19).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("shared");
        idx.save(&path).unwrap();
        let shared = std::sync::Arc::new(SharedEngine::open_mmap(&g, &path).unwrap());
        assert_eq!(shared.num_nodes(), g.num_nodes());
        assert_eq!(shared.stats().entries_stored, idx.stats().entries_stored);
        // Direct methods, the view, and the index agree bit-for-bit —
        // from multiple threads sharing one Arc.
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let shared = std::sync::Arc::clone(&shared);
                let (g, idx) = (&g, &idx);
                s.spawn(move || {
                    let mut ws = QueryWorkspace::new();
                    for i in 0..30u32 {
                        let (u, v) = (NodeId((t * 31 + i) % 120), NodeId((i * 7 + 1) % 120));
                        let want = idx.single_pair(g, u, v);
                        assert_eq!(shared.single_pair_with(g, &mut ws, u, v).unwrap(), want);
                        assert_eq!(shared.view().single_pair(g, u, v).unwrap(), want);
                    }
                    let u = NodeId(t % 120);
                    assert_eq!(shared.single_source(g, u).unwrap(), idx.single_source(g, u));
                    assert_eq!(shared.top_k(g, u, 5).unwrap(), idx.top_k_heap(g, u, 5));
                });
            }
        });
        // Batches go through the same shared-engine API.
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(5), NodeId(80))];
        assert_eq!(
            shared.batch_single_pair(&g, &pairs, 2).unwrap(),
            idx.batch_single_pair(&g, &pairs, 1)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_is_advisory_and_harmless_everywhere() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("prefetch");
        idx.save(&path).unwrap();
        let engine = SharedEngine::open_mmap(&g, &path).unwrap();
        for v in g.nodes() {
            // Mmap override and the in-memory default no-op.
            engine.store().prefetch(v);
            HpStore::prefetch(&idx.hp, v);
        }
        // Out-of-range ids must not panic (advisory path, no checks owed).
        engine.store().prefetch(NodeId(10_000));
        // Results unchanged after prefetching.
        assert_eq!(
            engine.single_pair(&g, NodeId(0), NodeId(1)).unwrap(),
            idx.single_pair(&g, NodeId(0), NodeId(1))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_store_shared_engine_agrees() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("diskshared");
        idx.save(&path).unwrap();
        let store = crate::out_of_core::DiskHpStore::open(&g, &path).unwrap();
        let engine = store.into_shared_engine();
        for u in g.nodes() {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
