//! The storage-backend layer: [`HpStore`] and the [`QueryEngine`]
//! front-end.
//!
//! §5.4 of the paper observes that SLING "can efficiently process queries
//! even when its index structure does not fit in the main memory": every
//! query touches `O(1/ε)` hitting-probability entries, i.e. a constant
//! number of positioned reads. This module turns that observation into a
//! DBMS-style layering. The query algorithms (Algorithms 3, 5, 6 and the
//! §5.2/§5.3 effective-entry materialization) are written once, generic
//! over an [`HpStore`] — the read interface to the packed per-node HP
//! sets — and three backends implement it:
//!
//! * [`crate::hp::HpArena`] — the in-memory parallel-array arena;
//! * [`MmapHpArena`] — a **zero-copy memory-mapped view** of a persisted
//!   `SLNGIDX1` index file: opening validates the header and the offset
//!   table but never decodes the entry payload, so open cost is
//!   independent of index size and queries read entries straight out of
//!   the page cache;
//! * [`crate::out_of_core::DiskHpStore`] (optionally fronted by the
//!   [`crate::disk_query::BufferedDiskStore`] LRU buffer pool) — explicit
//!   positioned reads with only `O(n)` metadata resident.
//!
//! [`QueryEngine`] bundles a store with the query-side metadata (config,
//! correction factors, §5.2 reduction bitmap, §5.3 marks) and exposes the
//! full query API — single-pair, single-source, top-k, joins, batches —
//! with identical scores across backends: same entries, same merge order,
//! same floating-point arithmetic.

use std::borrow::Cow;
use std::ops::Range;
use std::path::Path;

use memmap2::{Advice, Mmap};
use sling_graph::{DiGraph, NodeId};

use std::sync::Arc;

use parking_lot::Mutex;

use crate::cache::{node_hash, Admission, FrequencySketch, LruList};
use crate::codec::block::{
    max_node, values_all_probabilities, DecodedBlock, MAX_PROBABILITY, SWEEP_LANES,
};
use crate::codec::{decode_block, decode_block_with_dict, expected_block_len};
use crate::config::SlingConfig;
use crate::enhance::MarkArena;
use crate::error::SlingError;
use crate::format::{decode_meta, BlockedGeometry, PayloadGeometry};
use crate::hp::{HpArena, HpEntry};
use crate::index::{BuildStats, QueryWorkspace, SlingIndex};
use crate::join::{threshold_join_core, JoinPair, JoinStrategy};
use crate::obs::{self, KernelCounters};
use crate::single_pair::single_pair_core;
use crate::single_source::{single_source_core, SingleSourceWorkspace};
use crate::topk::{select_top_k, single_source_truncated_core};

/// Read interface to a packed hitting-probability store.
///
/// Entry indices are *global*: node `v`'s run occupies `range(v)` of a
/// conceptual array of `total_entries()` entries sorted by
/// `(owner, step, node)`. Backends that read from untrusted bytes (mmap,
/// disk) must bound-check every decoded entry (`node < num_nodes`), so
/// the fallible methods return [`SlingError`] rather than panicking on a
/// corrupt or truncated file.
pub trait HpStore {
    /// Number of nodes covered by the store.
    fn num_nodes(&self) -> usize;

    /// Total entries across all nodes.
    fn total_entries(&self) -> usize;

    /// Global entry-index range of `H(v)`.
    fn range(&self, v: NodeId) -> Range<usize>;

    /// Materialize `H(v)` into `out` (cleared first), in `(step, node)`
    /// order.
    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError>;

    /// Random access by global entry index (used by §5.3 mark expansion).
    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError>;

    /// Whether `H(v)` stores the exact `(step, node)` key. The default
    /// binary-searches the sorted run through [`HpStore::entry_at`];
    /// backends with direct array access may override.
    fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> Result<bool, SlingError> {
        let range = checked_range(self, v)?;
        let (mut lo, mut hi) = (range.start, range.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = self.entry_at(mid)?;
            match e.key().cmp(&(step, node)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(true),
            }
        }
        Ok(false)
    }

    /// Heap-resident bytes of the store itself (excludes file-backed or
    /// page-cache pages, which is the point of the out-of-core backends).
    fn resident_bytes(&self) -> usize;

    /// Advise the backend that `H(v)` is about to be read, so out-of-core
    /// backends can stage the entry bytes *before* the scan loop instead
    /// of paying one major fault (or one positioned read) per payload
    /// section at decode time. Purely advisory — correctness never
    /// depends on it — and a no-op for memory-resident backends. Server
    /// workers call this for a query's endpoints before querying.
    fn prefetch(&self, _v: NodeId) {}

    /// Borrow `H(v)` from the backend **without copying** when the
    /// backend already holds the run in a directly consumable layout.
    ///
    /// `scratch` is a caller-owned buffer the backend *may* materialize
    /// into (positioned disk reads, runs straddling block boundaries);
    /// backends with resident or mapped storage return a borrowed (or
    /// refcount-shared) [`EntryAccess`] and leave `scratch` untouched.
    /// Every returned view is fully validated (node bounds, value
    /// range), exactly like [`HpStore::entries_into`] — the streaming
    /// query kernels index the correction factors with the decoded node
    /// ids, so a corrupt file must surface here as [`SlingError`], never
    /// as a panic downstream.
    ///
    /// The default materializes through [`HpStore::entries_into`].
    fn entries_ref<'s>(
        &'s self,
        v: NodeId,
        scratch: &'s mut Vec<HpEntry>,
    ) -> Result<EntryAccess<'s>, SlingError> {
        self.entries_into(v, scratch)?;
        Ok(EntryAccess::Slice(scratch))
    }
}

/// Zero-copy view of one node's stored entry run `H(v)`, borrowed from
/// an [`HpStore`] backend via [`HpStore::entries_ref`].
///
/// The variants mirror how each backend physically holds its entries, so
/// the query kernels consume backend-owned data in place instead of
/// copying every list into [`crate::QueryWorkspace`] buffers first:
///
/// * [`EntryAccess::Columns`] — structure-of-arrays column slices (the
///   in-memory [`HpArena`]); the seed/merge loops read the contiguous
///   `steps`/`nodes`/`values` columns directly.
/// * [`EntryAccess::RawLe`] — raw little-endian section bytes straight
///   out of an `SLNGIDX1` mapping ([`MmapHpArena`]); entries are decoded
///   on the fly with unaligned loads, after one cheap validation sweep.
/// * [`EntryAccess::Block`] — one decoded `SLNGIDX2` block covering the
///   whole run ([`CompressedMmapArena`], v2 [`crate::out_of_core::DiskHpStore`]):
///   shared by refcount out of the block scratch cache, no per-entry copy.
/// * [`EntryAccess::Slice`] — entries the backend materialized into the
///   caller's scratch buffer (positioned v1 disk reads, buffer-pool
///   copies, multi-block runs, and the §5.2/§5.3 restored lists).
///
/// All variants are sorted by `(step, node)` and pre-validated, so
/// consumers may index the correction-factor array with the node ids.
pub enum EntryAccess<'a> {
    /// Borrowed structure-of-arrays columns, all the same length.
    Columns {
        /// Walk steps, ascending.
        steps: &'a [u16],
        /// Hit node ids, ascending within a step.
        nodes: &'a [u32],
        /// Hitting probabilities.
        values: &'a [f64],
    },
    /// Raw little-endian `SLNGIDX1` section bytes (`2 | 4 | 8` bytes per
    /// entry respectively); pre-validated.
    RawLe {
        /// `u16` steps, little-endian.
        steps: &'a [u8],
        /// `u32` node ids, little-endian.
        nodes: &'a [u8],
        /// `f64` values, little-endian bit patterns.
        values: &'a [u8],
    },
    /// Sub-range `lo..hi` of one decoded (and validated) payload block.
    Block {
        /// The decoded block, shared with the backend's scratch cache.
        block: Arc<DecodedBlock>,
        /// First entry of the run within the block.
        lo: usize,
        /// One past the last entry of the run within the block.
        hi: usize,
    },
    /// Entries materialized into a buffer (typically the caller's
    /// scratch).
    Slice(&'a [HpEntry]),
}

impl EntryAccess<'_> {
    /// Number of entries in the run.
    pub fn len(&self) -> usize {
        match self {
            EntryAccess::Columns { steps, .. } => steps.len(),
            EntryAccess::RawLe { steps, .. } => steps.len() / 2,
            EntryAccess::Block { lo, hi, .. } => hi - lo,
            EntryAccess::Slice(s) => s.len(),
        }
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode entry `i` (for tests and diagnostics; the kernels use the
    /// monomorphized [`EntryRun`] views instead).
    pub fn get(&self, i: usize) -> HpEntry {
        match self {
            EntryAccess::Columns {
                steps,
                nodes,
                values,
            } => HpEntry::new(steps[i], NodeId(nodes[i]), values[i]),
            EntryAccess::RawLe {
                steps,
                nodes,
                values,
            } => HpEntry::new(
                u16::from_le_bytes([steps[i * 2], steps[i * 2 + 1]]),
                NodeId(u32::from_le_bytes(
                    nodes[i * 4..i * 4 + 4].try_into().unwrap(),
                )),
                f64::from_le_bytes(values[i * 8..i * 8 + 8].try_into().unwrap()),
            ),
            EntryAccess::Block { block, lo, .. } => HpEntry::new(
                block.steps[lo + i],
                NodeId(block.nodes[lo + i]),
                block.values[lo + i],
            ),
            EntryAccess::Slice(s) => s[i],
        }
    }
}

/// Uniform random access to a sorted entry run — the monomorphization
/// surface of the streaming kernels. Three concrete shapes exist
/// (columns, raw little-endian bytes, `&[HpEntry]`); [`with_run!`]
/// dispatches an [`EntryAccess`] to a shape-specific instantiation so
/// the merge/seed inner loops carry no per-entry branching.
pub(crate) trait EntryRun: Copy {
    /// Entries in the run.
    fn len(&self) -> usize;
    /// `(step, node)` sort key of entry `i`.
    fn key(&self, i: usize) -> (u16, u32);
    /// Value of entry `i`.
    fn value(&self, i: usize) -> f64;
}

/// Structure-of-arrays column view (arena and decoded blocks).
#[derive(Clone, Copy)]
pub(crate) struct ColumnsRun<'a> {
    pub steps: &'a [u16],
    pub nodes: &'a [u32],
    pub values: &'a [f64],
}

impl EntryRun for ColumnsRun<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.steps.len()
    }

    #[inline(always)]
    fn key(&self, i: usize) -> (u16, u32) {
        (self.steps[i], self.nodes[i])
    }

    #[inline(always)]
    fn value(&self, i: usize) -> f64 {
        self.values[i]
    }
}

/// Raw little-endian `SLNGIDX1` section view (zero-copy mmap); decodes
/// one fixed-width field per accessor call with unaligned loads.
#[derive(Clone, Copy)]
pub(crate) struct RawLeRun<'a> {
    pub steps: &'a [u8],
    pub nodes: &'a [u8],
    pub values: &'a [u8],
}

impl EntryRun for RawLeRun<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.steps.len() / 2
    }

    #[inline(always)]
    fn key(&self, i: usize) -> (u16, u32) {
        let step = u16::from_le_bytes([self.steps[i * 2], self.steps[i * 2 + 1]]);
        let node = u32::from_le_bytes(self.nodes[i * 4..i * 4 + 4].try_into().unwrap());
        (step, node)
    }

    #[inline(always)]
    fn value(&self, i: usize) -> f64 {
        f64::from_le_bytes(self.values[i * 8..i * 8 + 8].try_into().unwrap())
    }
}

impl EntryRun for &[HpEntry] {
    #[inline(always)]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline(always)]
    fn key(&self, i: usize) -> (u16, u32) {
        (self[i].step, self[i].node.0)
    }

    #[inline(always)]
    fn value(&self, i: usize) -> f64 {
        self[i].value
    }
}

/// Two-segment view of a §5.2-restored effective list: a copied `steps
/// ≤ 2` head (the stored step-0 prefix plus the exact Algorithm-5
/// steps 1–2) logically concatenated with the `steps ≥ 3` tail of the
/// node's stored run, consumed **in place** from backend storage.
///
/// A reduced node stores no step-1/2 entries, so its stored run is the
/// step-0 prefix (`..split`) followed immediately by the steps ≥ 3 tail
/// (`split..`) — and because the head covers exactly steps ≤ 2, the
/// concatenation stays sorted by `(step, node)`. The view therefore
/// enumerates precisely the entries the materializing restore would
/// build, in the same order, without ever copying the tail.
#[derive(Clone, Copy)]
pub(crate) struct TwoSegRun<'a, R: EntryRun> {
    /// Copied steps ≤ 2 head: stored step-0 entries + exact steps 1–2.
    pub head: &'a [HpEntry],
    /// The node's full stored run, borrowed from the backend.
    pub stored: R,
    /// First stored index past the step-0 prefix (start of the tail).
    pub split: usize,
}

impl<R: EntryRun> EntryRun for TwoSegRun<'_, R> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.head.len() + (self.stored.len() - self.split)
    }

    #[inline(always)]
    fn key(&self, i: usize) -> (u16, u32) {
        if i < self.head.len() {
            let e = &self.head[i];
            (e.step, e.node.0)
        } else {
            self.stored.key(i - self.head.len() + self.split)
        }
    }

    #[inline(always)]
    fn value(&self, i: usize) -> f64 {
        if i < self.head.len() {
            self.head[i].value
        } else {
            self.stored.value(i - self.head.len() + self.split)
        }
    }
}

/// Dispatch an `&EntryAccess` to a concrete [`EntryRun`] shape and run
/// `$body` with `$run` bound to it — the variant match happens once per
/// run, never per entry.
macro_rules! with_run {
    ($access:expr, |$run:ident| $body:expr) => {
        match $access {
            $crate::store::EntryAccess::Columns {
                steps,
                nodes,
                values,
            } => {
                let $run = $crate::store::ColumnsRun {
                    steps: *steps,
                    nodes: *nodes,
                    values: *values,
                };
                $body
            }
            $crate::store::EntryAccess::RawLe {
                steps,
                nodes,
                values,
            } => {
                let $run = $crate::store::RawLeRun {
                    steps: *steps,
                    nodes: *nodes,
                    values: *values,
                };
                $body
            }
            $crate::store::EntryAccess::Block { block, lo, hi } => {
                let $run = $crate::store::ColumnsRun {
                    steps: &block.steps[*lo..*hi],
                    nodes: &block.nodes[*lo..*hi],
                    values: &block.values[*lo..*hi],
                };
                $body
            }
            $crate::store::EntryAccess::Slice(s) => {
                let $run: &[$crate::hp::HpEntry] = s;
                $body
            }
        }
    };
}
pub(crate) use with_run;

/// A resolved per-node entry source for the streaming kernels: either
/// the backend's run consumed in place, a two-segment §5.2 view (copied
/// head + in-place tail), or a fully materialized list. Produced by
/// [`crate::index::resolve_stream_source`] / the §5.3 restore and
/// dispatched by [`with_source!`] — the query-time generalization of
/// [`EntryAccess`] that folds the restore decision into the type.
pub(crate) enum RunSource<'s> {
    /// The backend access *is* the effective list (no restore needed, or
    /// a list already materialized into a caller-owned buffer).
    Whole(EntryAccess<'s>),
    /// Two-segment view: `head` (steps ≤ 2, built into a caller buffer)
    /// over `stored`'s steps ≥ 3 tail starting at `split`.
    Seg {
        head: &'s [HpEntry],
        stored: EntryAccess<'s>,
        split: usize,
    },
    /// Fully materialized list shared from the [`RestoreCache`].
    Shared(Arc<Vec<HpEntry>>),
}

/// Dispatch an `&RunSource` to a concrete [`EntryRun`] and run `$body`
/// with `$run` bound to it. `Whole`/`Shared` degenerate to the plain
/// [`with_run!`] shapes; `Seg` wraps the stored run in a [`TwoSegRun`],
/// so the head/tail branch is the only per-entry cost the two-segment
/// restore adds.
macro_rules! with_source {
    ($source:expr, |$run:ident| $body:expr) => {
        match $source {
            $crate::store::RunSource::Whole(access) => {
                $crate::store::with_run!(access, |$run| $body)
            }
            $crate::store::RunSource::Shared(list) => {
                let $run: &[$crate::hp::HpEntry] = &list[..];
                $body
            }
            $crate::store::RunSource::Seg {
                head,
                stored,
                split,
            } => {
                $crate::store::with_run!(stored, |seg_tail| {
                    let $run = $crate::store::TwoSegRun {
                        head: *head,
                        stored: seg_tail,
                        split: *split,
                    };
                    $body
                })
            }
        }
    };
}
pub(crate) use with_source;

/// `range(v)` with the structural sanity the untrusted backends need
/// before trusting it: well-ordered and inside the entry array. A store
/// whose offset table mutates underneath it (a file overwritten after
/// open) must surface that as an error, not an out-of-bounds access.
pub(crate) fn checked_range<S: HpStore + ?Sized>(
    store: &S,
    v: NodeId,
) -> Result<Range<usize>, SlingError> {
    let range = store.range(v);
    if range.start > range.end || range.end > store.total_entries() {
        return Err(SlingError::CorruptIndex(format!(
            "entry range {range:?} of {v:?} exceeds the store ({} entries)",
            store.total_entries()
        )));
    }
    Ok(range)
}

impl HpStore for HpArena {
    #[inline]
    fn num_nodes(&self) -> usize {
        HpArena::num_nodes(self)
    }

    #[inline]
    fn total_entries(&self) -> usize {
        HpArena::total_entries(self)
    }

    #[inline]
    fn range(&self, v: NodeId) -> Range<usize> {
        HpArena::range(self, v)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        self.fill(v, out);
        Ok(())
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        Ok(HpEntry::new(
            self.steps[i],
            NodeId(self.nodes[i]),
            self.values[i],
        ))
    }

    fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> Result<bool, SlingError> {
        Ok(HpArena::contains_key(self, v, step, node))
    }

    fn resident_bytes(&self) -> usize {
        HpArena::resident_bytes(self)
    }

    /// True zero-copy: the arena *is* the structure-of-arrays layout the
    /// kernels consume, so borrowing `H(v)` is three slice operations.
    fn entries_ref<'s>(
        &'s self,
        v: NodeId,
        _scratch: &'s mut Vec<HpEntry>,
    ) -> Result<EntryAccess<'s>, SlingError> {
        let r = HpArena::range(self, v);
        Ok(EntryAccess::Columns {
            steps: &self.steps[r.clone()],
            nodes: &self.nodes[r.clone()],
            values: &self.values[r],
        })
    }
}

/// Reject payload values that cannot be hitting probabilities. The
/// out-of-core backends decode entries from untrusted bytes at query
/// time; letting a non-finite value through would poison downstream
/// score sorts (which rightly assume finite scores) with a panic instead
/// of an error.
pub(crate) fn check_value(i: usize, value: f64) -> Result<(), SlingError> {
    if !value.is_finite() || !(0.0..=MAX_PROBABILITY).contains(&value) {
        return Err(SlingError::CorruptIndex(format!(
            "entry {i} holds a non-probability HP value {value}"
        )));
    }
    Ok(())
}

impl<S: HpStore + ?Sized> HpStore for &S {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn total_entries(&self) -> usize {
        (**self).total_entries()
    }

    fn range(&self, v: NodeId) -> Range<usize> {
        (**self).range(v)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        (**self).entries_into(v, out)
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        (**self).entry_at(i)
    }

    fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> Result<bool, SlingError> {
        (**self).contains_key(v, step, node)
    }

    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }

    fn prefetch(&self, v: NodeId) {
        (**self).prefetch(v)
    }

    fn entries_ref<'s>(
        &'s self,
        v: NodeId,
        scratch: &'s mut Vec<HpEntry>,
    ) -> Result<EntryAccess<'s>, SlingError> {
        (**self).entries_ref(v, scratch)
    }
}

/// Borrowed view of everything a query needs: the store plus the
/// query-side metadata. `Copy`, so the generic algorithm cores pass it by
/// value. Internal glue between [`SlingIndex`], [`QueryEngine`], and the
/// per-module algorithm implementations.
pub(crate) struct EngineRef<'a, S: HpStore> {
    pub store: &'a S,
    pub config: &'a SlingConfig,
    pub d: &'a [f64],
    pub reduced: &'a [bool],
    pub marks: &'a MarkArena,
    /// Engine-owned memo of restored effective lists (`None` for the
    /// bare [`SlingIndex`] convenience API).
    pub restore_cache: Option<&'a RestoreCache>,
}

impl<S: HpStore> Clone for EngineRef<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: HpStore> Copy for EngineRef<'_, S> {}

impl<S: HpStore> EngineRef<'_, S> {
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.reduced.len()
    }

    pub fn check_node(&self, v: NodeId) -> Result<(), SlingError> {
        if v.index() >= self.num_nodes() {
            return Err(SlingError::NodeOutOfRange {
                node: v.0,
                n: self.num_nodes() as u32,
            });
        }
        Ok(())
    }

    /// Classify how much of `v`'s entry list a query must rewrite.
    /// Decided entirely at build time (the reduction bitmap and the mark
    /// offsets are index artifacts), so this is two O(1) loads; for
    /// [`RestoreKind::None`] — the common case on large graphs — the
    /// streaming kernels consume the backend's entries in place and skip
    /// the [`crate::QueryWorkspace`] copy entirely.
    ///
    /// The
    /// distinction is what the §5.3 mark expansion can touch: a marked
    /// entry at step ℓ spawns corrections at step ℓ+1, i.e. *anywhere*
    /// in the list, so marked nodes need the full materializing restore
    /// ([`RestoreKind::Full`]). The §5.2 reduction only *removes* steps
    /// 1–2 at build time, so an unmarked reduced node needs nothing but
    /// a recomputed steps ≤ 2 head spliced in front of its untouched
    /// steps ≥ 3 tail ([`RestoreKind::TwoHopOnly`]) — the two-segment
    /// streaming view, used on cache-less engines. Engines with a
    /// [`RestoreCache`] resolve both restoring kinds to full lists
    /// instead (every cache entry is a full effective list): a warm hub
    /// is then one lookup and a contiguous merge with zero backend
    /// traffic, which beats re-walking the stored tail per query.
    #[inline]
    pub fn restore_kind(&self, v: NodeId) -> RestoreKind {
        if self.config.enhance_accuracy
            && !self.marks.is_empty()
            && !self.marks.marks_of(v).is_empty()
        {
            RestoreKind::Full
        } else if self.reduced[v.index()] {
            RestoreKind::TwoHopOnly
        } else {
            RestoreKind::None
        }
    }
}

/// How much of a node's stored entry list a query must rewrite before
/// consuming it. See [`EngineRef::restore_kind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreKind {
    /// The stored run is the effective list — stream it in place.
    None,
    /// §5.2-reduced, unmarked: recompute the steps ≤ 2 head exactly and
    /// stream the stored steps ≥ 3 tail in place (two-segment view).
    TwoHopOnly,
    /// §5.3-marked: mark expansion may rewrite arbitrary steps, so the
    /// whole effective list is materialized.
    Full,
}

/// Zero-copy memory-mapped view of a persisted `SLNGIDX1` index file.
///
/// `open` maps the file and validates the header, metadata, and offset
/// table — it never decodes the entry payload, so the cost is independent
/// of the number of stored entries and no `HpArena` is materialized.
/// Entries are decoded on demand, one `(step, node, value)` at a time,
/// straight from the mapping; repeated queries hit the page cache. Every
/// decoded entry is bound-checked so a file corrupted *after* open still
/// surfaces as [`SlingError::CorruptIndex`], never a panic.
pub struct MmapHpArena {
    map: Mmap,
    num_nodes: usize,
    entries: usize,
    /// Byte offset of the `(n + 1)`-entry `u64` HP offset table.
    offsets_base: usize,
    steps_base: usize,
    nodes_base: usize,
    values_base: usize,
}

impl MmapHpArena {
    /// Map `path` and validate its structure (header + offset table
    /// only). Returns the arena plus the decoded query-side metadata.
    pub(crate) fn open_with_meta(
        path: impl AsRef<Path>,
    ) -> Result<(MmapHpArena, crate::format::DecodedMeta), SlingError> {
        let file = std::fs::File::open(path)?;
        // SAFETY: the standard memmap contract — the caller must not
        // truncate the index file while the arena is alive. Concurrent
        // *content* corruption is tolerated: reads are bound-checked and
        // decode errors surface as SlingError.
        let map = unsafe { Mmap::map(&file) }?;
        let meta = decode_meta(&map)?;
        let &PayloadGeometry::Raw {
            steps_base,
            nodes_base,
            values_base,
        } = &meta.payload
        else {
            return Err(SlingError::CorruptIndex(
                "SLNGIDX2 index: open it with the mmap-compressed backend \
                 (CompressedMmapArena), or convert with `sling compact`"
                    .to_string(),
            ));
        };
        let arena = MmapHpArena {
            num_nodes: meta.num_nodes,
            entries: meta.entries,
            offsets_base: meta.offsets_base,
            steps_base,
            nodes_base,
            values_base,
            map,
        };
        Ok((arena, meta))
    }

    /// Map and validate `path` without retaining the metadata. Prefer
    /// [`QueryEngine::open_mmap`], which keeps the correction factors and
    /// reduction bitmap needed to answer queries.
    pub fn open(path: impl AsRef<Path>) -> Result<MmapHpArena, SlingError> {
        Ok(Self::open_with_meta(path)?.0)
    }

    #[inline]
    fn read_u64(&self, at: usize) -> u64 {
        // In bounds by construction: decode_meta validated that every
        // section lies inside the mapping.
        u64::from_le_bytes(self.map[at..at + 8].try_into().unwrap())
    }

    #[inline]
    fn offset(&self, i: usize) -> usize {
        self.read_u64(self.offsets_base + i * 8) as usize
    }

    /// Decode entry `i`, bound-checking the node id against `n`.
    #[inline]
    fn decode_entry(&self, i: usize) -> Result<HpEntry, SlingError> {
        // Hard bound, not a debug_assert: the offset table lives in the
        // mapping and can mutate after open, and an index past `entries`
        // must surface as CorruptIndex rather than a slice panic.
        if i >= self.entries {
            return Err(SlingError::CorruptIndex(format!(
                "mmap entry index {i} past the {} stored entries",
                self.entries
            )));
        }
        let step = u16::from_le_bytes(
            self.map[self.steps_base + i * 2..self.steps_base + i * 2 + 2]
                .try_into()
                .unwrap(),
        );
        let node = u32::from_le_bytes(
            self.map[self.nodes_base + i * 4..self.nodes_base + i * 4 + 4]
                .try_into()
                .unwrap(),
        );
        if node as usize >= self.num_nodes {
            return Err(SlingError::CorruptIndex(format!(
                "mmap entry {i} references node {node} past n = {}",
                self.num_nodes
            )));
        }
        let value = f64::from_bits(self.read_u64(self.values_base + i * 8));
        check_value(i, value)?;
        Ok(HpEntry::new(step, NodeId(node), value))
    }

    /// Bytes of the underlying mapping (for space reports).
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }

    /// `madvise(WILLNEED)` the byte ranges holding `H(v)`'s three payload
    /// sections, so a cold query faults its entries in with batched
    /// readahead instead of one major fault per section. Advisory only:
    /// alignment is handled inside the mapping and failures (or a range
    /// the offset table has corrupted) are ignored — the bound-checked
    /// decode path still governs correctness.
    pub fn prefetch_entries(&self, v: NodeId) {
        if v.index() >= self.num_nodes {
            return;
        }
        let range = self.range(v);
        if range.start > range.end || range.end > self.entries || range.is_empty() {
            return;
        }
        let count = range.len();
        for (base, width) in [
            (self.steps_base, 2usize),
            (self.nodes_base, 4),
            (self.values_base, 8),
        ] {
            let _ =
                self.map
                    .advise_range(Advice::WillNeed, base + range.start * width, count * width);
        }
    }
}

impl HpStore for MmapHpArena {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.entries
    }

    #[inline]
    fn range(&self, v: NodeId) -> Range<usize> {
        let i = v.index();
        self.offset(i)..self.offset(i + 1)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        out.clear();
        let range = checked_range(self, v)?;
        // Same fault point as `entries_ref`: both are "read and validate
        // one run from the mapping" sites, so a chaos schedule covers a
        // query regardless of which accessor its restore path takes.
        match crate::faults::check(crate::faults::point::MMAP_VALIDATE) {
            None => {}
            Some(crate::faults::FaultAction::Error) => {
                return Err(SlingError::Io(crate::faults::injected_error(
                    crate::faults::point::MMAP_VALIDATE,
                )))
            }
            Some(crate::faults::FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(_) => {
                return Err(SlingError::CorruptIndex(format!(
                    "injected corruption at {} (node {})",
                    crate::faults::point::MMAP_VALIDATE,
                    v.index()
                )))
            }
        }
        out.reserve(range.len());
        for i in range {
            out.push(self.decode_entry(i)?);
        }
        Ok(())
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        self.decode_entry(i)
    }

    /// The entry payload lives in the page cache, not on this struct's
    /// heap: only the handle itself counts.
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn prefetch(&self, v: NodeId) {
        self.prefetch_entries(v);
    }

    /// Zero-copy borrow straight out of the mapping: the three section
    /// slices holding `H(v)` plus one branch-light validation sweep
    /// (node bounds, value range) — no per-entry decode-and-push, no
    /// buffer write. The sweep keeps the corrupt-file contract of
    /// [`MmapHpArena::decode_entry`]: a file mutilated after open
    /// surfaces as [`SlingError::CorruptIndex`], never a panic or an
    /// out-of-bounds correction-factor read in the kernels.
    fn entries_ref<'s>(
        &'s self,
        v: NodeId,
        _scratch: &'s mut Vec<HpEntry>,
    ) -> Result<EntryAccess<'s>, SlingError> {
        let range = checked_range(self, v)?;
        // In bounds: decode_meta validated every section against the
        // mapping for `entries` entries, and range.end <= entries.
        let steps = &self.map[self.steps_base + range.start * 2..self.steps_base + range.end * 2];
        let nodes = &self.map[self.nodes_base + range.start * 4..self.nodes_base + range.end * 4];
        let values =
            &self.map[self.values_base + range.start * 8..self.values_base + range.end * 8];
        // Fault point: the mapping itself is immutable and shared, so
        // `Corrupt`/`ShortRead` here synthesize the CorruptIndex the
        // sweep would raise on a mutilated file, instead of flipping
        // bytes in place.
        match crate::faults::check(crate::faults::point::MMAP_VALIDATE) {
            None => {}
            Some(crate::faults::FaultAction::Error) => {
                return Err(SlingError::Io(crate::faults::injected_error(
                    crate::faults::point::MMAP_VALIDATE,
                )))
            }
            Some(crate::faults::FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(_) => {
                return Err(SlingError::CorruptIndex(format!(
                    "injected corruption at {} (node {})",
                    crate::faults::point::MMAP_VALIDATE,
                    v.index()
                )))
            }
        }
        validate_raw_le(nodes, values, range.start, self.num_nodes)?;
        Ok(EntryAccess::RawLe {
            steps,
            nodes,
            values,
        })
    }
}

/// Validate the raw little-endian node/value sections of one entry run:
/// every node id below `n`, every value a finite probability. The hot
/// sweep is two branchless *lane-striped* folds over the contiguous
/// sections — [`SWEEP_LANES`] independent accumulators per stripe so the
/// compiler can vectorize the u32 max and the f64 range compares, plus a
/// scalar tail. Only a failing run pays a second pass to name the
/// offending entry (matching the per-entry decode errors).
// `(v >= 0.0) & (v <= MAX)` is two non-short-circuit lane compares on
// purpose; `RangeInclusive::contains` would reintroduce `&&`.
#[allow(clippy::manual_range_contains)]
pub(crate) fn validate_raw_le(
    nodes: &[u8],
    values: &[u8],
    base: usize,
    n: usize,
) -> Result<(), SlingError> {
    // Node sweep: lane-parallel max over the u32 column, one bound
    // compare at the end.
    let mut node_lanes = [0u32; SWEEP_LANES];
    let mut node_chunks = nodes.chunks_exact(4 * SWEEP_LANES);
    for stripe in &mut node_chunks {
        for (m, c) in node_lanes.iter_mut().zip(stripe.chunks_exact(4)) {
            *m = (*m).max(u32::from_le_bytes(c.try_into().unwrap()));
        }
    }
    let mut max_node = node_lanes.into_iter().max().unwrap_or(0);
    for c in node_chunks.remainder().chunks_exact(4) {
        max_node = max_node.max(u32::from_le_bytes(c.try_into().unwrap()));
    }
    if max_node as usize >= n {
        for (i, c) in nodes.chunks_exact(4).enumerate() {
            let node = u32::from_le_bytes(c.try_into().unwrap());
            if node as usize >= n {
                return Err(SlingError::CorruptIndex(format!(
                    "mmap entry {} references node {node} past n = {n}",
                    base + i
                )));
            }
        }
    }
    // Value sweep: lane-parallel range fold. The two compares are
    // equivalent to `check_value`'s predicate — NaN fails both, ±∞ fails
    // one — see `codec::block::values_all_probabilities`.
    let mut ok_lanes = [true; SWEEP_LANES];
    let mut value_chunks = values.chunks_exact(8 * SWEEP_LANES);
    for stripe in &mut value_chunks {
        for (ok, c) in ok_lanes.iter_mut().zip(stripe.chunks_exact(8)) {
            let value = f64::from_le_bytes(c.try_into().unwrap());
            *ok &= (value >= 0.0) & (value <= MAX_PROBABILITY);
        }
    }
    let mut all_ok = ok_lanes.into_iter().all(|ok| ok);
    for c in value_chunks.remainder().chunks_exact(8) {
        let value = f64::from_le_bytes(c.try_into().unwrap());
        all_ok &= (value >= 0.0) & (value <= MAX_PROBABILITY);
    }
    if !all_ok {
        for (i, c) in values.chunks_exact(8).enumerate() {
            check_value(base + i, f64::from_le_bytes(c.try_into().unwrap()))?;
        }
    }
    Ok(())
}

/// Decoded-block scratch cache of a compressed backend.
///
/// Queries against a blocked payload decode whole blocks to read one
/// `O(1/ε)` entry run; consecutive queries overwhelmingly land in the
/// same few blocks (hubs cluster, batch pairs repeat endpoints), so a
/// small cache of decoded blocks turns the second touch into a memcpy.
/// The cache is sharded by block index — each worker's hot blocks hash
/// to different shards, so concurrent workers contend only when they
/// genuinely share a block — and each shard is an independently locked
/// [`LruList`] holding a handful of `Arc`-shared decoded blocks.
/// Everything cached has already been validated (node bounds, value
/// range), so hits skip re-validation too.
pub(crate) struct BlockScratchCache {
    shards: Box<[Mutex<LruList<u64, Arc<DecodedBlock>>>]>,
    per_shard: usize,
}

impl BlockScratchCache {
    /// Shard count (power of two) — sized for the thread-per-core worker
    /// pools the server runs.
    const SHARDS: usize = 8;

    /// Decoded blocks kept per shard — 64 blocks total, which at the
    /// default 1024-entry geometry keeps a ~64K-entry working set
    /// (≈ 1 MiB of columns) decoded. That covers every block of a
    /// mid-size index outright, so uniformly random pair workloads stop
    /// thrashing the cache instead of paying a decode per query.
    const PER_SHARD: usize = 8;

    pub(crate) fn new() -> Self {
        BlockScratchCache {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(LruList::new()))
                .collect(),
            per_shard: Self::PER_SHARD,
        }
    }

    /// Cached block `b`, or decode-and-admit through `decode`.
    pub(crate) fn get_or_decode(
        &self,
        b: usize,
        decode: impl FnOnce() -> Result<DecodedBlock, SlingError>,
    ) -> Result<Arc<DecodedBlock>, SlingError> {
        let key = b as u64;
        let shard = &self.shards[b & (Self::SHARDS - 1)];
        if let Some(hit) = shard.lock().get(&key) {
            return Ok(Arc::clone(hit));
        }
        // Decode with the lock released: a racing worker decoding the
        // same block does redundant work, but never serializes others.
        let block = Arc::new(decode()?);
        let mut guard = shard.lock();
        if guard.get(&key).is_none() {
            if guard.len() >= self.per_shard {
                guard.pop_lru();
            }
            guard.insert(key, Arc::clone(&block));
        }
        Ok(block)
    }

    /// Estimated heap bytes of the decoded blocks currently cached
    /// (14 bytes per decoded entry across the three columns).
    pub(crate) fn resident_bytes(&self, block_entries: usize) -> usize {
        let cached: usize = self.shards.iter().map(|s| s.lock().len()).sum();
        cached * (block_entries * 14 + std::mem::size_of::<DecodedBlock>())
    }
}

/// Cache of **restored effective entry lists** for §5.2-reduced and
/// §5.3-marked nodes.
///
/// A reduced node's effective list is rebuilt on every query — the exact
/// two-hop recomputation costs up to `γ/θ` edge operations, which
/// dominates hub queries on power-law graphs (the hub's restored list is
/// orders of magnitude bigger than its stored run). But the restored
/// list is **immutable** for a given index + graph, so the engines
/// memoize it: a sharded, entry-budgeted LRU of `Arc`-shared lists, the
/// same lock-per-shard pattern as [`BlockScratchCache`]. A hit turns a
/// hub restore into a refcount bump, and the streaming kernels then
/// borrow the cached list exactly like a backend-owned run. Misses
/// compute outside the lock; results are bit-identical by construction
/// (the cached list *is* the computed list).
pub struct RestoreCache {
    shards: Box<[Mutex<RestoreShard>]>,
    per_shard_entries: usize,
    /// Generation epoch the cached lists were restored under. Lists
    /// tagged with any other epoch read as misses (and are dropped on
    /// touch), so a serving layer that rebuilds the graph/index behind a
    /// live engine can invalidate every memoized restore in O(1) —
    /// without it, nothing would invalidate a restored hub list when the
    /// engine underneath the cache changes.
    epoch: std::sync::atomic::AtomicU64,
    /// Inserts refused by frequency-sketch admission (always 0 under
    /// the default LRU policy).
    admission_rejects: std::sync::atomic::AtomicU64,
}

#[derive(Default)]
struct RestoreShard {
    lists: LruList<u32, (u64, Arc<Vec<HpEntry>>)>,
    entries: usize,
    /// Node-keyed frequency sketch advising eviction under
    /// [`Admission::TinyLfu`]; a defaulted sketch (the LRU policy) is a
    /// no-op. Same lock as the lists, so admission adds no
    /// synchronization.
    sketch: FrequencySketch,
}

impl RestoreCache {
    /// Shard count (power of two).
    const SHARDS: usize = 8;

    /// Default total entry budget: ~64K entries ≈ 1.5 MiB of restored
    /// lists per engine — enough for the hot hubs of a skewed workload,
    /// bounded for long-lived servers.
    pub const DEFAULT_TOTAL_ENTRIES: usize = 1 << 16;

    pub(crate) fn new() -> Self {
        RestoreCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::default()).collect(),
            per_shard_entries: (Self::DEFAULT_TOTAL_ENTRIES / Self::SHARDS).max(1),
            epoch: std::sync::atomic::AtomicU64::new(0),
            admission_rejects: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Switch the admission policy. [`Admission::TinyLfu`] installs a
    /// node-keyed frequency sketch per shard (sized for the shard's
    /// entry budget at typical hub list lengths); [`Admission::Lru`]
    /// removes it. Resident lists are kept either way.
    pub fn set_admission(&self, admission: Admission) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.sketch = match admission {
                Admission::Lru => FrequencySketch::default(),
                Admission::TinyLfu => FrequencySketch::with_capacity(
                    // Budget is in entries; lists average tens of
                    // entries, so track ~1/16th as many distinct nodes.
                    (self.per_shard_entries / 16).max(16),
                ),
            };
        }
    }

    /// Inserts refused by frequency-sketch admission.
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    fn shard(&self, v: NodeId) -> &Mutex<RestoreShard> {
        &self.shards[(v.0 as usize) & (Self::SHARDS - 1)]
    }

    /// The current generation epoch (see [`RestoreCache::advance_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Bump the generation epoch, lazily invalidating every cached
    /// list; returns the new epoch. Stale lists are dropped on touch;
    /// sketched popularity is reset eagerly — frequency measured
    /// against the retired index must not bias admission on the new
    /// one.
    pub fn advance_epoch(&self) -> u64 {
        let epoch = self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel) + 1;
        for shard in self.shards.iter() {
            shard.lock().sketch.clear();
        }
        epoch
    }

    /// Drop every cached list immediately (the eager sibling of
    /// [`RestoreCache::advance_epoch`]; counters and budget are kept,
    /// sketched popularity is forgotten).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.lists.clear();
            shard.entries = 0;
            shard.sketch.clear();
        }
    }

    /// Cached restored list of `v`, if resident and from the current
    /// epoch; a stale list is dropped on touch.
    pub(crate) fn get(&self, v: NodeId) -> Option<Arc<Vec<HpEntry>>> {
        let current = self.epoch();
        let mut shard = self.shard(v).lock();
        shard.sketch.increment(node_hash(v.0));
        let hit = match shard.lists.get(&v.0) {
            Some((epoch, list)) if *epoch == current => Some(Arc::clone(list)),
            Some(_) => {
                let (_, stale) = shard.lists.remove(&v.0).expect("entry just observed");
                shard.entries -= stale.len();
                None
            }
            None => None,
        };
        drop(shard);
        match hit.is_some() {
            true => KernelCounters::bump(&obs::KERNEL.restore_cache_hits),
            false => KernelCounters::bump(&obs::KERNEL.restore_cache_misses),
        }
        hit
    }

    /// Admit a list restored under generation `epoch`, evicting LRU
    /// lists until it fits the shard's entry budget (an oversized list
    /// is admitted alone — reuse is node-driven, exactly like the disk
    /// buffer pool). A stale `epoch` — the engine was invalidated while
    /// the restore ran — drops the insert instead of admitting a list
    /// computed against retired state.
    pub(crate) fn insert_tagged(&self, v: NodeId, list: Arc<Vec<HpEntry>>, epoch: u64) {
        if epoch != self.epoch() {
            return;
        }
        let mut shard = self.shard(v).lock();
        match shard.lists.get(&v.0) {
            // A racing worker restored it first this epoch; keep theirs.
            Some((live, _)) if *live == epoch => return,
            Some(_) => {
                let (_, stale) = shard.lists.remove(&v.0).expect("entry just observed");
                shard.entries -= stale.len();
            }
            None => {}
        }
        while shard.entries + list.len() > self.per_shard_entries {
            // TinyLFU admission: refuse the insert unless the candidate
            // node strictly out-earns the live LRU victim in sketched
            // frequency (retired-epoch victims are dead weight and are
            // never protected).
            if shard.sketch.is_enabled() {
                if let Some((&victim, victim_value)) = shard.lists.peek_lru() {
                    if victim_value.0 == epoch
                        && shard.sketch.estimate(node_hash(v.0))
                            <= shard.sketch.estimate(node_hash(victim))
                    {
                        drop(shard);
                        self.admission_rejects
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return;
                    }
                }
            }
            let Some((_, (_, old))) = shard.lists.pop_lru() else {
                break;
            };
            shard.entries -= old.len();
        }
        shard.entries += list.len();
        shard.lists.insert(v.0, (epoch, list));
    }

    /// Estimated heap bytes of the cached lists.
    pub fn resident_bytes(&self) -> usize {
        let entries: usize = self.shards.iter().map(|s| s.lock().entries).sum();
        entries * std::mem::size_of::<HpEntry>()
    }
}

/// Decode and fully validate one block's bytes: directory-consistent
/// entry count, run shapes, node-id bounds, value range. The **single**
/// validation path shared by the compressed mmap and disk backends —
/// if it ever forked, the backends' bit-equivalence guarantee could
/// silently diverge.
pub(crate) fn decode_block_validated(
    raw: &[u8],
    b: usize,
    num_blocks: usize,
    block_entries: usize,
    total_entries: usize,
    num_nodes: usize,
    global_dict: Option<&[f64]>,
) -> Result<DecodedBlock, SlingError> {
    let expected = expected_block_len(b, num_blocks, block_entries, total_entries)?;
    KernelCounters::bump(&obs::KERNEL.block_decodes);
    KernelCounters::bump_by(&obs::KERNEL.backend_bytes_read, raw.len() as u64);
    let mut block = DecodedBlock::default();
    match global_dict {
        Some(dict) => decode_block_with_dict(raw, expected, dict, &mut block)?,
        None => decode_block(raw, expected, &mut block)?,
    }
    // Bound-check ids and value ranges once per decode; cache hits skip
    // this entirely. The hot path is two lane-striped column folds; only
    // a failing block pays the per-entry rescan that names the entry.
    let base = b * block_entries;
    if max_node(&block.nodes) as usize >= num_nodes {
        for (i, &node) in block.nodes.iter().enumerate() {
            if node as usize >= num_nodes {
                return Err(SlingError::CorruptIndex(format!(
                    "block entry {} references node {node} past n = {num_nodes}",
                    base + i,
                )));
            }
        }
    }
    if !values_all_probabilities(&block.values) {
        for (i, &value) in block.values.iter().enumerate() {
            check_value(base + i, value)?;
        }
    }
    Ok(block)
}

/// Append the part of global entry range `range` that falls inside
/// block `b` to `out` (the gather loop both compressed backends share).
pub(crate) fn push_block_range(
    block: &DecodedBlock,
    b: usize,
    block_entries: usize,
    range: &Range<usize>,
    out: &mut Vec<HpEntry>,
) {
    let lo = range.start.max(b * block_entries) - b * block_entries;
    let hi = range.end.min((b + 1) * block_entries) - b * block_entries;
    for i in lo..hi {
        out.push(HpEntry::new(
            block.steps[i],
            NodeId(block.nodes[i]),
            block.values[i],
        ));
    }
}

/// Zero-copy memory-mapped view of a block-compressed `SLNGIDX2` index
/// file.
///
/// The compressed sibling of [`MmapHpArena`]: `open` maps the file and
/// validates the header, offset table, and block directory — never the
/// payload — so open cost is independent of the number of stored
/// entries. Queries decode exactly the blocks their entry range touches,
/// straight from the page cache, through a sharded decoded-block scratch
/// cache (see [`BlockScratchCache`]) that makes repeated touches of a
/// hot block free. Every decoded block is fully validated (counts,
/// run shapes, node bounds, value range) before use, so a file corrupted
/// *after* open still surfaces as [`SlingError::CorruptIndex`], never a
/// panic.
///
/// In lossless mode (the default for `sling compact`) queries return
/// scores **bit-identical** to every other backend serving the same
/// index; quantized files answer with ≤ 2⁻³³ value error and report
/// [`CompressedMmapArena::values_exact`]` == false`.
pub struct CompressedMmapArena {
    map: Mmap,
    num_nodes: usize,
    entries: usize,
    /// Byte offset of the `(n + 1)`-entry `u64` HP offset table.
    offsets_base: usize,
    /// Entries per block.
    block_entries: usize,
    /// Byte offset of the first block.
    blocks_base: usize,
    /// Validated block directory (resident, so it cannot be corrupted
    /// under us after open).
    block_offsets: Vec<u64>,
    values_exact: bool,
    /// The resident v3 global value dictionary (`None` for v2 files).
    global_dict: Option<Vec<f64>>,
    cache: BlockScratchCache,
}

impl CompressedMmapArena {
    /// Map `path` and validate its structure (header + offset table +
    /// block directory only). Returns the arena plus the decoded
    /// query-side metadata.
    pub(crate) fn open_with_meta(
        path: impl AsRef<Path>,
    ) -> Result<(CompressedMmapArena, crate::format::DecodedMeta), SlingError> {
        let file = std::fs::File::open(path)?;
        // SAFETY: the standard memmap contract — the caller must not
        // truncate the index file while the arena is alive. Concurrent
        // *content* corruption is tolerated: block decodes are fully
        // validated and errors surface as SlingError.
        let map = unsafe { Mmap::map(&file) }?;
        let mut meta = decode_meta(&map)?;
        let geo = match &mut meta.payload {
            PayloadGeometry::Blocked(geo) => BlockedGeometry {
                block_entries: geo.block_entries,
                blocks_base: geo.blocks_base,
                block_offsets: std::mem::take(&mut geo.block_offsets),
                values_exact: geo.values_exact,
                global_dict: std::mem::take(&mut geo.global_dict),
                aux_bytes: geo.aux_bytes,
            },
            PayloadGeometry::Raw { .. } => {
                return Err(SlingError::CorruptIndex(
                    "SLNGIDX1 index: open it with the plain mmap backend, or convert \
                     with `sling compact`"
                        .to_string(),
                ))
            }
        };
        let arena = CompressedMmapArena {
            num_nodes: meta.num_nodes,
            entries: meta.entries,
            offsets_base: meta.offsets_base,
            block_entries: geo.block_entries,
            blocks_base: geo.blocks_base,
            block_offsets: geo.block_offsets,
            values_exact: geo.values_exact,
            global_dict: geo.global_dict,
            cache: BlockScratchCache::new(),
            map,
        };
        Ok((arena, meta))
    }

    /// Map and validate `path` without retaining the metadata. Prefer
    /// [`SharedEngine::open_mmap_compressed`], which keeps the
    /// correction factors and reduction bitmap needed to answer queries.
    pub fn open(path: impl AsRef<Path>) -> Result<CompressedMmapArena, SlingError> {
        Ok(Self::open_with_meta(path)?.0)
    }

    /// Whether decoded values are bit-identical to the index that was
    /// compacted (false for quantized files).
    pub fn values_exact(&self) -> bool {
        self.values_exact
    }

    /// Number of payload blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_offsets.len() - 1
    }

    /// Bytes of the underlying mapping (for space reports).
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }

    #[inline]
    fn offset(&self, i: usize) -> usize {
        u64::from_le_bytes(
            self.map[self.offsets_base + i * 8..self.offsets_base + i * 8 + 8]
                .try_into()
                .unwrap(),
        ) as usize
    }

    /// Decode block `b` from the mapping, fully validated.
    fn decode_block_at(&self, b: usize) -> Result<DecodedBlock, SlingError> {
        let (lo, hi) = (
            self.blocks_base + self.block_offsets[b] as usize,
            self.blocks_base + self.block_offsets[b + 1] as usize,
        );
        // In bounds by construction: decode_meta validated the directory
        // against the mapping length, and the directory is resident.
        decode_block_validated(
            &self.map[lo..hi],
            b,
            self.num_blocks(),
            self.block_entries,
            self.entries,
            self.num_nodes,
            self.global_dict.as_deref(),
        )
    }

    /// Block `b`, served from the scratch cache.
    fn block(&self, b: usize) -> Result<Arc<DecodedBlock>, SlingError> {
        self.cache.get_or_decode(b, || self.decode_block_at(b))
    }

    /// `madvise(WILLNEED)` the encoded byte range of the blocks holding
    /// `H(v)`, so a cold query faults its pages in with batched
    /// readahead. Advisory only; failures and out-of-range ids are
    /// ignored.
    pub fn prefetch_entries(&self, v: NodeId) {
        if v.index() >= self.num_nodes {
            return;
        }
        let range = self.range(v);
        if range.start > range.end || range.end > self.entries || range.is_empty() {
            return;
        }
        let (b0, b1) = (
            range.start / self.block_entries,
            (range.end - 1) / self.block_entries,
        );
        if b1 >= self.num_blocks() {
            return;
        }
        let lo = self.blocks_base + self.block_offsets[b0] as usize;
        let hi = self.blocks_base + self.block_offsets[b1 + 1] as usize;
        let _ = self.map.advise_range(Advice::WillNeed, lo, hi - lo);
    }
}

impl HpStore for CompressedMmapArena {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.entries
    }

    #[inline]
    fn range(&self, v: NodeId) -> Range<usize> {
        let i = v.index();
        self.offset(i)..self.offset(i + 1)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        out.clear();
        let range = checked_range(self, v)?;
        if range.is_empty() {
            return Ok(());
        }
        out.reserve(range.len());
        let be = self.block_entries;
        for b in range.start / be..=(range.end - 1) / be {
            let block = self.block(b)?;
            push_block_range(&block, b, be, &range, out);
        }
        Ok(())
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        if i >= self.entries {
            return Err(SlingError::CorruptIndex(format!(
                "compressed entry index {i} past the {} stored entries",
                self.entries
            )));
        }
        let b = i / self.block_entries;
        let block = self.block(b)?;
        let j = i - b * self.block_entries;
        Ok(HpEntry::new(
            block.steps[j],
            NodeId(block.nodes[j]),
            block.values[j],
        ))
    }

    /// The encoded payload lives in the page cache; resident heap is the
    /// block directory plus the decoded-block scratch cache.
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.block_offsets.len() * 8
            + self.cache.resident_bytes(self.block_entries)
    }

    fn prefetch(&self, v: NodeId) {
        self.prefetch_entries(v);
    }

    /// Runs covered by a single block — the overwhelmingly common case,
    /// since `O(1/ε)` runs are far shorter than a block — are served as a
    /// refcounted sub-range of the cached decoded block, skipping the
    /// per-entry gather copy. Runs straddling block boundaries fall back
    /// to materializing into `scratch`.
    fn entries_ref<'s>(
        &'s self,
        v: NodeId,
        scratch: &'s mut Vec<HpEntry>,
    ) -> Result<EntryAccess<'s>, SlingError> {
        let range = checked_range(self, v)?;
        if range.is_empty() {
            return Ok(EntryAccess::Slice(&[]));
        }
        let be = self.block_entries;
        let (b0, b1) = (range.start / be, (range.end - 1) / be);
        if b0 == b1 {
            let block = self.block(b0)?;
            let (lo, hi) = (range.start - b0 * be, range.end - b0 * be);
            // decode_block_validated pinned the block's entry count to
            // the directory, so the run range always fits; guard anyway
            // so a logic slip cannot become a slice panic.
            if hi <= block.steps.len() {
                return Ok(EntryAccess::Block { block, lo, hi });
            }
        }
        self.entries_into(v, scratch)?;
        Ok(EntryAccess::Slice(scratch))
    }
}

/// Query front-end generic over the storage backend.
///
/// Owns (or borrows) the store plus the query-side metadata and exposes
/// the full SLING query surface with `Result`-returning methods — the
/// disk-backed stores can fail mid-query, so the engine API is fallible
/// where [`SlingIndex`]'s in-memory convenience API is not. All backends
/// return **identical** scores for the same persisted index.
pub struct QueryEngine<'a, S: HpStore> {
    store: S,
    config: Cow<'a, SlingConfig>,
    d: Cow<'a, [f64]>,
    reduced: Cow<'a, [bool]>,
    marks: Cow<'a, MarkArena>,
    stats: BuildStats,
    restore: RestoreCache,
}

impl<'a, S: HpStore> QueryEngine<'a, S> {
    /// Assemble an engine from parts (used by the backend constructors).
    pub(crate) fn from_parts(
        store: S,
        config: Cow<'a, SlingConfig>,
        d: Cow<'a, [f64]>,
        reduced: Cow<'a, [bool]>,
        marks: Cow<'a, MarkArena>,
        stats: BuildStats,
    ) -> Self {
        QueryEngine {
            store,
            config,
            d,
            reduced,
            marks,
            stats,
            restore: RestoreCache::new(),
        }
    }

    pub(crate) fn engine_ref(&self) -> EngineRef<'_, S> {
        EngineRef {
            store: &self.store,
            config: &self.config,
            d: &self.d,
            reduced: &self.reduced,
            marks: &self.marks,
            restore_cache: Some(&self.restore),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Type-erased view of this engine, for callers (like the CLI) that
    /// pick the backend at runtime.
    pub fn erase(&self) -> QueryEngine<'_, &dyn HpStore> {
        QueryEngine {
            store: &self.store as &dyn HpStore,
            config: Cow::Borrowed(&self.config),
            d: Cow::Borrowed(&self.d),
            reduced: Cow::Borrowed(&self.reduced),
            marks: Cow::Borrowed(&self.marks),
            stats: self.stats,
            // The erased view gets its own memo: the cache is not
            // `Clone`, and an erased engine is typically the long-lived
            // handle anyway.
            restore: RestoreCache::new(),
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// Build statistics recorded in the index.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Number of nodes of the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.reduced.len()
    }

    /// Heap-resident bytes: store + metadata. For the mmap backend this
    /// is `O(n)` metadata only — the entry payload stays in the page
    /// cache.
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
            + self.d.len() * 8
            + self.reduced.len()
            + self.marks.resident_bytes()
            + self.restore.resident_bytes()
    }

    fn check_pair(&self, u: NodeId, v: NodeId) -> Result<(), SlingError> {
        let e = self.engine_ref();
        e.check_node(u)?;
        e.check_node(v)
    }

    /// Single-pair SimRank estimate `s̃(u, v)` (Algorithm 3).
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> Result<f64, SlingError> {
        let mut ws = QueryWorkspace::new();
        self.single_pair_with(graph, &mut ws, u, v)
    }

    /// Single-pair query reusing caller-provided buffers.
    pub fn single_pair_with(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        self.check_pair(u, v)?;
        single_pair_core(self.engine_ref(), graph, ws, u, v)
    }

    /// Single-pair query through the **materializing reference path**:
    /// both effective entry lists copied into the workspace, linear
    /// merge — the pre-streaming kernel. Bit-identical to
    /// [`QueryEngine::single_pair_with`] on every backend; kept public so
    /// benchmarks can measure the zero-copy/galloping gap and the
    /// equivalence suite can assert it.
    pub fn single_pair_materialized_with(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        self.check_pair(u, v)?;
        crate::single_pair::single_pair_materialized_core(self.engine_ref(), graph, ws, u, v)
    }

    /// Single-source query from `u` (Algorithm 6).
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        self.single_source_with(graph, &mut ws, u, &mut out)?;
        Ok(out)
    }

    /// Single-source query into caller-provided buffers; allocation-free
    /// after warm-up on every backend.
    pub fn single_source_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) -> Result<(), SlingError> {
        self.engine_ref().check_node(u)?;
        single_source_core(self.engine_ref(), graph, ws, u, out)
    }

    /// Single-source query through the **materializing reference path**
    /// (see [`QueryEngine::single_pair_materialized_with`]).
    pub fn single_source_materialized_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) -> Result<(), SlingError> {
        self.engine_ref().check_node(u)?;
        crate::single_source::single_source_materialized_core(self.engine_ref(), graph, ws, u, out)
    }

    /// Algorithm 6 with early termination (see
    /// [`SlingIndex::single_source_truncated`]). Returns the residual
    /// bound that was dropped.
    pub fn single_source_truncated(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        slack: f64,
        out: &mut Vec<f64>,
    ) -> Result<f64, SlingError> {
        self.engine_ref().check_node(u)?;
        single_source_truncated_core(self.engine_ref(), graph, ws, u, slack, out)
    }

    /// Top-k most similar nodes to `u` (excluding `u`), heap-selected.
    pub fn top_k(
        &self,
        graph: &DiGraph,
        u: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        let scores = self.single_source(graph, u)?;
        Ok(select_top_k(&scores, Some(u), k))
    }

    /// Early-terminating top-k: every returned score is within `slack` of
    /// the full Algorithm-6 estimate.
    pub fn top_k_approx(
        &self,
        graph: &DiGraph,
        u: NodeId,
        k: usize,
        slack: f64,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut scores = Vec::new();
        self.single_source_truncated(graph, &mut ws, u, slack, &mut scores)?;
        Ok(select_top_k(&scores, Some(u), k))
    }

    /// All unordered pairs with `s̃(u, v) ≥ tau` (see
    /// [`SlingIndex::threshold_join`]).
    pub fn threshold_join(
        &self,
        graph: &DiGraph,
        tau: f64,
        strategy: JoinStrategy,
    ) -> Result<Vec<JoinPair>, SlingError> {
        threshold_join_core(self.engine_ref(), graph, tau, strategy)
    }

    /// The `k` highest-scoring unordered pairs above `prune`.
    pub fn top_k_join(
        &self,
        graph: &DiGraph,
        k: usize,
        prune: f64,
        strategy: JoinStrategy,
    ) -> Result<Vec<JoinPair>, SlingError> {
        let mut pairs = self.threshold_join(graph, prune.max(f64::MIN_POSITIVE), strategy)?;
        pairs.truncate(k);
        Ok(pairs)
    }
}

impl<S: HpStore + Sync> QueryEngine<'_, S> {
    /// Evaluate a batch of single-pair queries on `threads` workers
    /// (results positionally aligned with `pairs`).
    pub fn batch_single_pair(
        &self,
        graph: &DiGraph,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Result<Vec<f64>, SlingError> {
        for &(u, v) in pairs {
            self.check_pair(u, v)?;
        }
        crate::batch::batch_single_pair_core(self.engine_ref(), graph, pairs, threads)
    }

    /// Evaluate single-source queries from every node in `sources` on
    /// `threads` workers.
    pub fn batch_single_source(
        &self,
        graph: &DiGraph,
        sources: &[NodeId],
        threads: usize,
    ) -> Result<Vec<Vec<f64>>, SlingError> {
        for &u in sources {
            self.engine_ref().check_node(u)?;
        }
        crate::batch::batch_single_source_core(self.engine_ref(), graph, sources, threads)
    }
}

impl QueryEngine<'static, MmapHpArena> {
    /// Open a persisted index as a zero-copy mmap engine, verifying it
    /// matches `graph`. Open cost is header + offset-table validation
    /// plus the `O(n)` query-side metadata (correction factors, reduction
    /// bitmap, marks) — the entry payload is never decoded.
    pub fn open_mmap(
        graph: &DiGraph,
        path: impl AsRef<Path>,
    ) -> Result<QueryEngine<'static, MmapHpArena>, SlingError> {
        let e = SharedEngine::open_mmap(graph, path)?;
        Ok(QueryEngine::from_parts(
            e.store,
            Cow::Owned(e.config),
            Cow::Owned(e.d),
            Cow::Owned(e.reduced),
            Cow::Owned(e.marks),
            e.stats,
        ))
    }
}

impl QueryEngine<'static, CompressedMmapArena> {
    /// Open a block-compressed `SLNGIDX2` index as a mmap engine,
    /// verifying it matches `graph` (see
    /// [`SharedEngine::open_mmap_compressed`]).
    pub fn open_mmap_compressed(
        graph: &DiGraph,
        path: impl AsRef<Path>,
    ) -> Result<QueryEngine<'static, CompressedMmapArena>, SlingError> {
        let e = SharedEngine::open_mmap_compressed(graph, path)?;
        Ok(QueryEngine::from_parts(
            e.store,
            Cow::Owned(e.config),
            Cow::Owned(e.d),
            Cow::Owned(e.reduced),
            Cow::Owned(e.marks),
            e.stats,
        ))
    }
}

/// Owned, thread-shareable query engine: a storage backend plus all
/// query-side metadata held **by value**.
///
/// [`QueryEngine`] is lifetime-bound — fine for one-shot CLI runs, but a
/// long-lived server wants to open an index once, wrap it in an
/// [`std::sync::Arc`], and let every worker thread query it for the
/// process lifetime. `SharedEngine` is that owner: it is `Send + Sync`
/// whenever the store is (all three backends are), queries take `&self`,
/// and [`SharedEngine::view`] yields a borrowed [`QueryEngine`] over
/// `&S` exposing the full query surface (single-pair, single-source,
/// top-k, joins, batches) with the exact same scores.
///
/// Workers keep their own [`QueryWorkspace`]/[`SingleSourceWorkspace`],
/// so the hot path shares only immutable state — no locks.
pub struct SharedEngine<S: HpStore> {
    store: S,
    config: SlingConfig,
    d: Vec<f64>,
    reduced: Vec<bool>,
    marks: MarkArena,
    stats: BuildStats,
    restore: RestoreCache,
}

impl SharedEngine<MmapHpArena> {
    /// Open a persisted index as an owned zero-copy mmap engine, verifying
    /// it matches `graph`. Open cost is header + offset-table validation
    /// plus the `O(n)` query-side metadata — the entry payload stays in
    /// the page cache and is decoded on demand, bound-checked.
    pub fn open_mmap(
        graph: &DiGraph,
        path: impl AsRef<Path>,
    ) -> Result<SharedEngine<MmapHpArena>, SlingError> {
        let (arena, meta) = MmapHpArena::open_with_meta(path)?;
        if meta.num_nodes != graph.num_nodes() || meta.num_edges != graph.num_edges() {
            return Err(SlingError::GraphMismatch {
                expected_nodes: meta.num_nodes,
                found_nodes: graph.num_nodes(),
            });
        }
        Ok(SharedEngine {
            store: arena,
            config: meta.config,
            d: meta.d,
            reduced: meta.reduced,
            marks: meta.marks,
            stats: meta.stats,
            restore: RestoreCache::new(),
        })
    }
}

impl SharedEngine<CompressedMmapArena> {
    /// Open a block-compressed `SLNGIDX2` index as an owned mmap engine,
    /// verifying it matches `graph`. Open cost is header, offset-table,
    /// and block-directory validation plus the `O(n)` query-side
    /// metadata; blocks are decoded on demand through the arena's
    /// scratch cache. A lossless file answers bit-identically to every
    /// other backend.
    pub fn open_mmap_compressed(
        graph: &DiGraph,
        path: impl AsRef<Path>,
    ) -> Result<SharedEngine<CompressedMmapArena>, SlingError> {
        let (arena, meta) = CompressedMmapArena::open_with_meta(path)?;
        if meta.num_nodes != graph.num_nodes() || meta.num_edges != graph.num_edges() {
            return Err(SlingError::GraphMismatch {
                expected_nodes: meta.num_nodes,
                found_nodes: graph.num_nodes(),
            });
        }
        Ok(SharedEngine {
            store: arena,
            config: meta.config,
            d: meta.d,
            reduced: meta.reduced,
            marks: meta.marks,
            stats: meta.stats,
            restore: RestoreCache::new(),
        })
    }
}

impl From<SlingIndex> for SharedEngine<HpArena> {
    /// Consume an in-memory index into an owned engine over its arena.
    fn from(index: SlingIndex) -> Self {
        SharedEngine {
            store: index.hp,
            config: index.config,
            d: index.d,
            reduced: index.reduced,
            marks: index.marks,
            stats: index.stats,
            restore: RestoreCache::new(),
        }
    }
}

impl<S: HpStore> SharedEngine<S> {
    /// Assemble an engine from parts (used by the backend constructors).
    pub(crate) fn from_owned_parts(
        store: S,
        config: SlingConfig,
        d: Vec<f64>,
        reduced: Vec<bool>,
        marks: MarkArena,
        stats: BuildStats,
    ) -> Self {
        SharedEngine {
            store,
            config,
            d,
            reduced,
            marks,
            stats,
            restore: RestoreCache::new(),
        }
    }

    pub(crate) fn engine_ref(&self) -> EngineRef<'_, S> {
        EngineRef {
            store: &self.store,
            config: &self.config,
            d: &self.d,
            reduced: &self.reduced,
            marks: &self.marks,
            restore_cache: Some(&self.restore),
        }
    }

    /// Borrowed [`QueryEngine`] view exposing the full query surface
    /// (joins, truncated single-source, batches, type erasure, ...).
    pub fn view(&self) -> QueryEngine<'_, &S> {
        QueryEngine::from_parts(
            &self.store,
            Cow::Borrowed(&self.config),
            Cow::Borrowed(&self.d[..]),
            Cow::Borrowed(&self.reduced[..]),
            Cow::Borrowed(&self.marks),
            self.stats,
        )
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The engine's memo of restored §5.2/§5.3 effective lists. Exposed
    /// so lifecycle layers can inspect residency and invalidate it
    /// ([`RestoreCache::advance_epoch`] / [`RestoreCache::clear`]) when
    /// the graph or index behind a live engine changes — the in-place
    /// rebuild scenario. (The shipped generation-swap path replaces the
    /// whole engine, restore cache included, so it never needs these
    /// hooks; they exist for embedders that mutate state *behind* a
    /// long-lived engine instead of republishing one.)
    pub fn restore_cache(&self) -> &RestoreCache {
        &self.restore
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// Build statistics recorded in the index.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Number of nodes of the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.reduced.len()
    }

    /// Heap-resident bytes: store + query-side metadata.
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
            + self.d.len() * 8
            + self.reduced.len()
            + self.marks.resident_bytes()
            + self.restore.resident_bytes()
    }

    fn check_pair(&self, u: NodeId, v: NodeId) -> Result<(), SlingError> {
        let e = self.engine_ref();
        e.check_node(u)?;
        e.check_node(v)
    }

    /// Single-pair SimRank estimate `s̃(u, v)` (Algorithm 3).
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> Result<f64, SlingError> {
        let mut ws = QueryWorkspace::new();
        self.single_pair_with(graph, &mut ws, u, v)
    }

    /// Single-pair query reusing caller-provided buffers — the server
    /// workers' hot path.
    pub fn single_pair_with(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        self.check_pair(u, v)?;
        single_pair_core(self.engine_ref(), graph, ws, u, v)
    }

    /// Single-source query from `u` (Algorithm 6).
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        self.single_source_with(graph, &mut ws, u, &mut out)?;
        Ok(out)
    }

    /// Single-source query into caller-provided buffers; allocation-free
    /// after warm-up on every backend.
    pub fn single_source_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) -> Result<(), SlingError> {
        self.engine_ref().check_node(u)?;
        single_source_core(self.engine_ref(), graph, ws, u, out)
    }

    /// Top-k most similar nodes to `u` (excluding `u`), heap-selected.
    pub fn top_k(
        &self,
        graph: &DiGraph,
        u: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        let mut ws = SingleSourceWorkspace::new();
        let mut scores = Vec::new();
        self.top_k_with(graph, &mut ws, &mut scores, u, k)
    }

    /// Top-k reusing caller-provided buffers (`scores` holds the full
    /// Algorithm-6 vector afterwards).
    pub fn top_k_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        scores: &mut Vec<f64>,
        u: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, SlingError> {
        self.single_source_with(graph, ws, u, scores)?;
        Ok(select_top_k(scores, Some(u), k))
    }
}

impl<S: HpStore + Sync> SharedEngine<S> {
    /// Evaluate a batch of single-pair queries on `threads` workers
    /// (results positionally aligned with `pairs`).
    pub fn batch_single_pair(
        &self,
        graph: &DiGraph,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Result<Vec<f64>, SlingError> {
        for &(u, v) in pairs {
            self.check_pair(u, v)?;
        }
        crate::batch::batch_single_pair_core(self.engine_ref(), graph, pairs, threads)
    }

    /// Evaluate single-source queries from every node in `sources` on
    /// `threads` workers.
    pub fn batch_single_source(
        &self,
        graph: &DiGraph,
        sources: &[NodeId],
        threads: usize,
    ) -> Result<Vec<Vec<f64>>, SlingError> {
        for &u in sources {
            self.engine_ref().check_node(u)?;
        }
        crate::batch::batch_single_source_core(self.engine_ref(), graph, sources, threads)
    }
}

impl SlingIndex {
    /// Borrowing query engine over the in-memory arena. Queries through
    /// it return the same scores as the [`SlingIndex`] convenience
    /// methods — and the same scores any other backend serving this index
    /// would return.
    pub fn query_engine(&self) -> QueryEngine<'_, &HpArena> {
        QueryEngine::from_parts(
            &self.hp,
            Cow::Borrowed(&self.config),
            Cow::Borrowed(&self.d),
            Cow::Borrowed(&self.reduced),
            Cow::Borrowed(&self.marks),
            self.stats,
        )
    }

    /// Consume the index into an owned, `Arc`-shareable engine over its
    /// in-memory arena (see [`SharedEngine`]).
    pub fn into_shared_engine(self) -> SharedEngine<HpArena> {
        SharedEngine::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use std::path::PathBuf;

    const C: f64 = 0.6;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sling_store_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("index.slng")
    }

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(C, 0.1)
            .with_seed(13)
            .with_enhancement(true)
    }

    #[test]
    fn arena_and_mmap_stores_agree_entrywise() {
        let g = barabasi_albert(120, 3, 5).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("entrywise");
        idx.save(&path).unwrap();
        let mmap = MmapHpArena::open(&path).unwrap();
        assert_eq!(HpStore::num_nodes(&idx.hp), mmap.num_nodes);
        assert_eq!(
            HpStore::total_entries(&idx.hp),
            HpStore::total_entries(&mmap)
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in g.nodes() {
            assert_eq!(HpStore::range(&idx.hp, v), HpStore::range(&mmap, v));
            idx.hp.entries_into(v, &mut a).unwrap();
            mmap.entries_into(v, &mut b).unwrap();
            assert_eq!(a, b, "H({v:?}) differs between arena and mmap");
            for e in &a {
                assert!(mmap.contains_key(v, e.step, e.node).unwrap());
            }
            assert!(!mmap.contains_key(v, u16::MAX, NodeId(0)).unwrap());
        }
        for i in 0..HpStore::total_entries(&mmap) {
            assert_eq!(idx.hp.entry_at(i).unwrap(), mmap.entry_at(i).unwrap());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_open_is_metadata_only() {
        let g = barabasi_albert(200, 3, 7).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("o1open");
        let mut bytes = idx.to_bytes();
        // Corrupt the *entry payload* (last 8 bytes = final HP value) with
        // a NaN. A full decode rejects this file; a metadata-only open
        // must accept it — proving open never scans the payload.
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SlingIndex::from_bytes(&g, &bytes),
            Err(SlingError::CorruptIndex(_))
        ));
        let engine = QueryEngine::open_mmap(&g, &path).unwrap();
        // And the handle holds O(n) metadata, not the O(n/eps) payload.
        assert!(engine.resident_bytes() < idx.resident_bytes());
        assert!(
            HpStore::resident_bytes(engine.store()) < 256,
            "mmap store must not materialize entries"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_from_index_matches_index_queries() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let engine = idx.query_engine();
        for u in g.nodes() {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
            for v in g.nodes() {
                assert_eq!(
                    engine.single_pair(&g, u, v).unwrap(),
                    idx.single_pair(&g, u, v)
                );
            }
        }
        assert!(engine.single_pair(&g, NodeId(0), NodeId(99)).is_err());
        assert!(engine.single_source(&g, NodeId(99)).is_err());
    }

    #[test]
    fn mmap_engine_matches_in_memory_exactly() {
        let g = barabasi_albert(150, 2, 3).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("exact");
        idx.save(&path).unwrap();
        let engine = QueryEngine::open_mmap(&g, &path).unwrap();
        for u in [NodeId(0), NodeId(17), NodeId(149)] {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
            assert_eq!(engine.top_k(&g, u, 7).unwrap(), idx.top_k_heap(&g, u, 7));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_queries_reject_out_of_range_nodes() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let engine = idx.query_engine();
        assert!(matches!(
            engine.batch_single_pair(&g, &[(NodeId(0), NodeId(9999))], 1),
            Err(SlingError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            engine.batch_single_source(&g, &[NodeId(1), NodeId(9999)], 2),
            Err(SlingError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn mmap_rejects_wrong_graph() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("wronggraph");
        idx.save(&path).unwrap();
        let other = two_cliques_bridge(5);
        assert!(matches!(
            QueryEngine::open_mmap(&other, &path),
            Err(SlingError::GraphMismatch { .. })
        ));
        assert!(matches!(
            SharedEngine::open_mmap(&other, &path),
            Err(SlingError::GraphMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_engine_view_matches_index_and_is_arc_shareable() {
        let g = barabasi_albert(120, 3, 19).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("shared");
        idx.save(&path).unwrap();
        let shared = std::sync::Arc::new(SharedEngine::open_mmap(&g, &path).unwrap());
        assert_eq!(shared.num_nodes(), g.num_nodes());
        assert_eq!(shared.stats().entries_stored, idx.stats().entries_stored);
        // Direct methods, the view, and the index agree bit-for-bit —
        // from multiple threads sharing one Arc.
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let shared = std::sync::Arc::clone(&shared);
                let (g, idx) = (&g, &idx);
                s.spawn(move || {
                    let mut ws = QueryWorkspace::new();
                    for i in 0..30u32 {
                        let (u, v) = (NodeId((t * 31 + i) % 120), NodeId((i * 7 + 1) % 120));
                        let want = idx.single_pair(g, u, v);
                        assert_eq!(shared.single_pair_with(g, &mut ws, u, v).unwrap(), want);
                        assert_eq!(shared.view().single_pair(g, u, v).unwrap(), want);
                    }
                    let u = NodeId(t % 120);
                    assert_eq!(shared.single_source(g, u).unwrap(), idx.single_source(g, u));
                    assert_eq!(shared.top_k(g, u, 5).unwrap(), idx.top_k_heap(g, u, 5));
                });
            }
        });
        // Batches go through the same shared-engine API.
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(5), NodeId(80))];
        assert_eq!(
            shared.batch_single_pair(&g, &pairs, 2).unwrap(),
            idx.batch_single_pair(&g, &pairs, 1)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_is_advisory_and_harmless_everywhere() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("prefetch");
        idx.save(&path).unwrap();
        let engine = SharedEngine::open_mmap(&g, &path).unwrap();
        for v in g.nodes() {
            // Mmap override and the in-memory default no-op.
            engine.store().prefetch(v);
            HpStore::prefetch(&idx.hp, v);
        }
        // Out-of-range ids must not panic (advisory path, no checks owed).
        engine.store().prefetch(NodeId(10_000));
        // Results unchanged after prefetching.
        assert_eq!(
            engine.single_pair(&g, NodeId(0), NodeId(1)).unwrap(),
            idx.single_pair(&g, NodeId(0), NodeId(1))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_mmap_agrees_entrywise_and_bitwise() {
        let g = barabasi_albert(140, 3, 23).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("compressed");
        // Tiny blocks so runs straddle block boundaries.
        let opts = crate::codec::CompressOptions {
            block_entries: 16,
            quantize_values: false,
        };
        idx.save_v2(&path, &opts).unwrap();
        let engine = SharedEngine::open_mmap_compressed(&g, &path).unwrap();
        assert!(engine.store().values_exact());
        assert_eq!(
            engine.store().num_blocks(),
            idx.hp.total_entries().div_ceil(16)
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in g.nodes() {
            assert_eq!(
                HpStore::range(&idx.hp, v),
                HpStore::range(engine.store(), v)
            );
            idx.hp.entries_into(v, &mut a).unwrap();
            engine.store().entries_into(v, &mut b).unwrap();
            assert_eq!(a, b, "H({v:?}) differs between arena and compressed mmap");
        }
        for i in (0..idx.hp.total_entries()).step_by(7) {
            assert_eq!(
                idx.hp.entry_at(i).unwrap(),
                engine.store().entry_at(i).unwrap()
            );
        }
        // Full query surface, bit-identical.
        for u in [NodeId(0), NodeId(71), NodeId(139)] {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
            assert_eq!(engine.top_k(&g, u, 6).unwrap(), idx.top_k_heap(&g, u, 6));
        }
        // O(n) resident: directory + scratch cache, far below the arena.
        assert!(engine.store().resident_bytes() < idx.hp.resident_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_mmap_quantized_is_close_and_flagged() {
        let g = barabasi_albert(120, 3, 5).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("quantized");
        let opts = crate::codec::CompressOptions {
            quantize_values: true,
            ..Default::default()
        };
        idx.save_v2(&path, &opts).unwrap();
        let engine = SharedEngine::open_mmap_compressed(&g, &path).unwrap();
        assert!(!engine.store().values_exact());
        for (u, v) in [(0u32, 1u32), (5, 80), (119, 3)] {
            let want = idx.single_pair(&g, NodeId(u), NodeId(v));
            let got = engine.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            // Quantization error is orders of magnitude below eps.
            assert!((want - got).abs() < 1e-7, "({u},{v}): {want} vs {got}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backends_refuse_the_other_generation() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let v1_path = tmp("gen_v1");
        let v2_path = tmp("gen_v2");
        idx.save(&v1_path).unwrap();
        idx.save_v2(&v2_path, &crate::codec::CompressOptions::default())
            .unwrap();
        // Plain mmap on a v2 file: structured error naming the fix.
        let Err(err) = MmapHpArena::open(&v2_path) else {
            panic!("plain mmap opened a v2 file");
        };
        assert!(err.to_string().contains("mmap-compressed"), "{err}");
        // Compressed arena on a v1 file: structured error too.
        let Err(err) = CompressedMmapArena::open(&v1_path) else {
            panic!("compressed arena opened a v1 file");
        };
        assert!(err.to_string().contains("compact"), "{err}");
        // But the eager loader reads both.
        assert!(SlingIndex::load(&g, &v1_path).is_ok());
        assert!(SlingIndex::load(&g, &v2_path).is_ok());
        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn compressed_mmap_concurrent_queries_share_the_scratch_cache() {
        let g = barabasi_albert(100, 3, 11).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("concurrent_compressed");
        idx.save_v2(&path, &crate::codec::CompressOptions::default())
            .unwrap();
        let engine = std::sync::Arc::new(SharedEngine::open_mmap_compressed(&g, &path).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let engine = std::sync::Arc::clone(&engine);
                let (g, idx) = (&g, &idx);
                s.spawn(move || {
                    let mut ws = QueryWorkspace::new();
                    for i in 0..40u32 {
                        let (u, v) = (NodeId((t * 17 + i) % 100), NodeId((i * 3 + 1) % 100));
                        assert_eq!(
                            engine.single_pair_with(g, &mut ws, u, v).unwrap(),
                            idx.single_pair(g, u, v)
                        );
                    }
                });
            }
        });
        // Prefetch stays advisory and harmless.
        engine.store().prefetch(NodeId(3));
        engine.store().prefetch(NodeId(99_999));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn entries_ref_is_zero_copy_per_backend() {
        let g = barabasi_albert(160, 3, 9).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let v1 = tmp("zc_v1");
        let v2 = tmp("zc_v2");
        idx.save(&v1).unwrap();
        // Blocks sized so typical runs fit inside one block while some
        // still straddle a boundary — both access shapes get exercised.
        idx.save_v2(
            &v2,
            &crate::codec::CompressOptions {
                block_entries: 512,
                quantize_values: false,
            },
        )
        .unwrap();
        let mmap = MmapHpArena::open(&v1).unwrap();
        let compressed = CompressedMmapArena::open(&v2).unwrap();
        let mut scratch = Vec::new();
        let mut expect = Vec::new();
        let (mut saw_block, mut saw_straddle) = (false, false);
        for v in g.nodes() {
            idx.hp.entries_into(v, &mut expect).unwrap();
            // Arena: structure-of-arrays columns, no scratch write.
            let access = idx.hp.entries_ref(v, &mut scratch).unwrap();
            assert!(matches!(access, EntryAccess::Columns { .. }));
            assert_eq!(access.len(), expect.len());
            for (i, want) in expect.iter().enumerate() {
                assert_eq!(&access.get(i), want);
            }
            drop(access);
            // Mmap: raw little-endian section bytes, no scratch write.
            scratch.clear();
            let access = mmap.entries_ref(v, &mut scratch).unwrap();
            assert!(matches!(access, EntryAccess::RawLe { .. }));
            for (i, want) in expect.iter().enumerate() {
                assert_eq!(&access.get(i), want);
            }
            drop(access);
            assert!(scratch.is_empty(), "mmap entries_ref wrote scratch");
            // Compressed: refcounted block for intra-block runs,
            // materialized slice for straddling ones — same entries.
            let access = compressed.entries_ref(v, &mut scratch).unwrap();
            match &access {
                EntryAccess::Block { .. } => saw_block = true,
                EntryAccess::Slice(_) => saw_straddle = true,
                other => panic!("unexpected access shape {}", other.len()),
            }
            for (i, want) in expect.iter().enumerate() {
                assert_eq!(&access.get(i), want);
            }
        }
        assert!(saw_block, "no run was served from a single block");
        assert!(saw_straddle, "no run straddled a block boundary");
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn mmap_entries_ref_validates_the_run() {
        let g = barabasi_albert(80, 3, 3).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("zc_corrupt");
        let mut bytes = idx.to_bytes();
        // Poison the last HP value with a NaN: the zero-copy borrow of
        // the owning node's run must fail its validation sweep.
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mmap = MmapHpArena::open(&path).unwrap();
        let mut scratch = Vec::new();
        let mut rejected = 0;
        for v in g.nodes() {
            if mmap.entries_ref(v, &mut scratch).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 1, "exactly the poisoned run must be rejected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_cache_serves_hot_nodes_bit_identically() {
        let g = barabasi_albert(150, 3, 31).unwrap();
        let config = cfg(); // enhancement on; space reduction on
        let idx = SlingIndex::build(&g, &config).unwrap();
        assert!(idx.stats().reduced_nodes > 0, "fixture must reduce nodes");
        let engine = SharedEngine::from(idx.clone());
        let mut ws = QueryWorkspace::new();
        // Repeated hub-style queries: the second round must hit the
        // restore cache (non-zero residency) and stay bit-identical to
        // the cache-less SlingIndex path.
        for _round in 0..2 {
            for v in 1..40u32 {
                let want = idx.single_pair(&g, NodeId(0), NodeId(v));
                let got = engine
                    .single_pair_with(&g, &mut ws, NodeId(0), NodeId(v))
                    .unwrap();
                assert_eq!(want.to_bits(), got.to_bits(), "pair (0,{v})");
            }
        }
        assert!(
            engine.restore.resident_bytes() > 0,
            "restored lists were never cached"
        );
        // Single-source through the same cache agrees too.
        for u in [NodeId(0), NodeId(75)] {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
        }
    }

    #[test]
    fn restore_cache_eviction_respects_the_budget() {
        let cache = RestoreCache::new();
        let per_shard = cache.per_shard_entries;
        // Insert many same-shard lists, each 1/4 of the shard budget:
        // residency must never exceed the budget.
        let list_len = (per_shard / 4).max(1);
        for i in 0..32u32 {
            let node = NodeId(i * RestoreCache::SHARDS as u32); // same shard
            let list = Arc::new(vec![HpEntry::new(0, NodeId(0), 1.0); list_len]);
            cache.insert_tagged(node, list, cache.epoch());
            let resident = cache.shards[0].lock().entries;
            assert!(resident <= per_shard, "{resident} > {per_shard}");
        }
        // The most recent insert is still resident.
        assert!(cache
            .get(NodeId(31 * RestoreCache::SHARDS as u32))
            .is_some());
        // An oversized list is admitted alone.
        let huge = Arc::new(vec![HpEntry::new(0, NodeId(0), 1.0); per_shard * 2]);
        cache.insert_tagged(NodeId(8), Arc::clone(&huge), cache.epoch());
        assert!(cache.get(NodeId(8)).is_some());
    }

    #[test]
    fn restore_cache_tinylfu_protects_hot_lists() {
        let cache = RestoreCache::new();
        cache.set_admission(crate::cache::Admission::TinyLfu);
        let per_shard = cache.per_shard_entries;
        let list_len = (per_shard / 2).max(1);
        let shard_stride = RestoreCache::SHARDS as u32;
        // Two hot hubs fill the shard; repeated gets build their
        // sketched frequency.
        let hot = [NodeId(0), NodeId(shard_stride)];
        for &v in &hot {
            let list = Arc::new(vec![HpEntry::new(0, NodeId(0), 1.0); list_len]);
            cache.insert_tagged(v, list, cache.epoch());
        }
        for _ in 0..10 {
            for &v in &hot {
                assert!(cache.get(v).is_some());
            }
        }
        // A one-touch cold sweep cannot displace them...
        for i in 2..40u32 {
            let v = NodeId(i * shard_stride);
            assert!(cache.get(v).is_none());
            let list = Arc::new(vec![HpEntry::new(0, NodeId(0), 1.0); list_len]);
            cache.insert_tagged(v, list, cache.epoch());
        }
        for &v in &hot {
            assert!(cache.get(v).is_some(), "{v:?} evicted by cold scan");
        }
        assert!(cache.admission_rejects() > 30);
        // ...but after a generation swap the sketch resets and the
        // stale residents are dead weight: new lists admit freely.
        let epoch = cache.advance_epoch();
        let v = NodeId(50 * shard_stride);
        cache.insert_tagged(
            v,
            Arc::new(vec![HpEntry::new(0, NodeId(0), 1.0); list_len]),
            epoch,
        );
        assert!(cache.get(v).is_some());
    }

    #[test]
    fn restore_cache_epoch_and_clear_invalidate_lists() {
        let cache = RestoreCache::new();
        let list = Arc::new(vec![HpEntry::new(0, NodeId(0), 1.0); 4]);
        cache.insert_tagged(NodeId(3), Arc::clone(&list), cache.epoch());
        assert!(cache.get(NodeId(3)).is_some());
        // Epoch bump: the stale list reads as a miss, is dropped on
        // touch, and its entries leave the budget accounting.
        assert_eq!(cache.advance_epoch(), 1);
        assert!(cache.get(NodeId(3)).is_none());
        assert_eq!(cache.resident_bytes(), 0);
        // A stale-tagged insert (restore raced the invalidation) is
        // dropped.
        cache.insert_tagged(NodeId(3), Arc::clone(&list), 0);
        assert!(cache.get(NodeId(3)).is_none());
        // Fresh inserts under the new epoch work; clear() empties
        // eagerly.
        cache.insert_tagged(NodeId(3), Arc::clone(&list), 1);
        assert!(cache.get(NodeId(3)).is_some());
        cache.clear();
        assert!(cache.get(NodeId(3)).is_none());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn shared_engine_restore_cache_invalidation_recomputes_bit_identically() {
        let g = barabasi_albert(150, 3, 31).unwrap();
        let config = cfg();
        let idx = SlingIndex::build(&g, &config).unwrap();
        assert!(idx.stats().reduced_nodes > 0, "fixture must reduce nodes");
        let engine = SharedEngine::from(idx.clone());
        let mut ws = QueryWorkspace::new();
        let want = idx.single_pair(&g, NodeId(0), NodeId(1));
        assert_eq!(
            engine
                .single_pair_with(&g, &mut ws, NodeId(0), NodeId(1))
                .unwrap(),
            want
        );
        assert!(engine.restore_cache().resident_bytes() > 0);
        // Lifecycle-style invalidation on a live engine: queries keep
        // answering bit-identically, through a repopulated cache.
        engine.restore_cache().advance_epoch();
        assert_eq!(
            engine
                .single_pair_with(&g, &mut ws, NodeId(0), NodeId(1))
                .unwrap(),
            want
        );
        engine.restore_cache().clear();
        assert_eq!(engine.restore_cache().resident_bytes(), 0);
        assert_eq!(
            engine
                .single_pair_with(&g, &mut ws, NodeId(0), NodeId(1))
                .unwrap(),
            want
        );
    }

    #[test]
    fn disk_store_shared_engine_agrees() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = tmp("diskshared");
        idx.save(&path).unwrap();
        let store = crate::out_of_core::DiskHpStore::open(&g, &path).unwrap();
        let engine = store.into_shared_engine();
        for u in g.nodes() {
            assert_eq!(
                engine.single_source(&g, u).unwrap(),
                idx.single_source(&g, u)
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
