//! Result caching for single-pair queries: a reusable intrusive-list
//! LRU, a single-threaded memoizing front-end, and a sharded global
//! cache for concurrent serving.
//!
//! SimRank workloads in the applications the paper motivates (link
//! prediction, collaborative filtering, "who to follow") exhibit heavy
//! query-key reuse: hot nodes participate in many pair queries, and
//! SkyServer-style production traces are dominated by a small hot key
//! set. Since the index is immutable after construction, caching is
//! trivially coherent. Keys are canonicalized (`min(u,v), max(u,v)`)
//! because SimRank is symmetric, doubling the effective hit rate.
//!
//! Three layers live here:
//!
//! * [`LruList`] *(crate-internal)* — an open-hash map over an intrusive
//!   doubly-linked LRU list, built on the workspace's [`FxHashMap`]; all
//!   operations `O(1)` expected, no external LRU crate. It backs every
//!   LRU in the crate: both cache types below and the
//!   [`crate::disk_query::BufferedDiskStore`] buffer pool.
//! * [`CachedQueries`] — the single-threaded memoizing query front-end
//!   (one owner, `&mut self`), generic over the storage backend.
//! * [`ShardedResultCache`] — a `Sync` global result cache: N
//!   power-of-two shards, each an independently locked [`LruList`], with
//!   [`AtomicCacheStats`] counters that stay exact under concurrency.
//!   This is what a long-lived server shares across its worker threads
//!   (see `sling-server`), and what the cached batch path
//!   ([`crate::store::SharedEngine::batch_single_pair_cached`]) uses.
//!   Besides scores it memoizes **negative verdicts** — a pair naming an
//!   out-of-range node id caches a sentinel ([`CachedVerdict`]), so
//!   repeated garbage traffic never reaches the engine — and identity
//!   pairs `(u, u)`, whose Eq. (17) estimate is a real computation when
//!   `exact_diagonal` is off.

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use sling_graph::{DiGraph, FxHashMap, NodeId};

use crate::error::SlingError;
use crate::hp::HpArena;
use crate::index::{QueryWorkspace, SlingIndex};
use crate::single_pair::single_pair_core;
use crate::store::{EngineRef, HpStore, QueryEngine, SharedEngine};

/// Running hit/miss counters (a point-in-time snapshot; see
/// [`AtomicCacheStats`] for the concurrent accumulator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run Algorithm 3.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no queries were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Hit/miss/eviction counters that stay exact under concurrent access.
///
/// Plain `u64` counters torn across threads silently undercount; every
/// concurrent cache in this crate records through relaxed atomics instead
/// (ordering between counters is irrelevant — only totals are reported)
/// and hands out [`CacheStats`] snapshots.
#[derive(Debug, Default)]
pub struct AtomicCacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl AtomicCacheStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one cache hit.
    #[inline]
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one cache miss.
    #[inline]
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` evictions.
    #[inline]
    pub fn record_evictions(&self, n: u64) {
        if n > 0 {
            self.evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Point-in-time snapshot of the counters.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

const NIL: u32 = u32::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: u32,
    next: u32,
}

/// Open-hash map over an intrusive doubly-linked LRU list.
///
/// The one LRU implementation in the crate: [`CachedQueries`] and each
/// [`ShardedResultCache`] shard key it by canonical pair, the
/// [`crate::disk_query::BufferedDiskStore`] buffer pool keys it by node.
/// Slots are recycled through a free list, links are `u32` indices into
/// one slab — no per-entry allocation, `O(1)` expected `get` / `insert` /
/// `pop_lru`.
pub(crate) struct LruList<K, V> {
    map: FxHashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
}

impl<K, V> Default for LruList<K, V> {
    fn default() -> Self {
        LruList {
            map: FxHashMap::default(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }
}

impl<K: Copy + Eq + Hash, V: Default> LruList<K, V> {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Entries currently resident.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the list holds no entries.
    pub(crate) fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all entries (slab capacity is kept).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Value of `key`, promoted to most-recently-used.
    pub(crate) fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.push_front(idx);
        Some(&self.slots[idx as usize].value)
    }

    /// Insert a key **not currently present** as most-recently-used,
    /// reusing a freed slot when one exists.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        debug_assert!(!self.map.contains_key(&key), "LruList::insert on live key");
        let idx = if let Some(reuse) = self.free.pop() {
            let s = &mut self.slots[reuse as usize];
            s.key = key;
            s.value = value;
            reuse
        } else {
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }

    /// Remove one key (used to drop entries invalidated by an epoch
    /// bump); its slot is recycled through the free list.
    pub(crate) fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        Some(std::mem::take(&mut self.slots[idx as usize].value))
    }

    /// Evict and return the least-recently-used entry.
    pub(crate) fn pop_lru(&mut self) -> Option<(K, V)> {
        let victim = self.tail;
        if victim == NIL {
            return None;
        }
        self.detach(victim);
        let slot = &mut self.slots[victim as usize];
        let key = slot.key;
        let value = std::mem::take(&mut slot.value);
        self.map.remove(&key);
        self.free.push(victim);
        Some((key, value))
    }

    /// The least-recently-used entry, without evicting or touching it —
    /// the candidate-versus-victim probe frequency-sketch admission
    /// needs before committing to an eviction.
    pub(crate) fn peek_lru(&self) -> Option<(&K, &V)> {
        if self.tail == NIL {
            return None;
        }
        let slot = &self.slots[self.tail as usize];
        Some((&slot.key, &slot.value))
    }
}

/// Cache admission policy for the LRU-backed caches
/// ([`ShardedResultCache`], [`crate::store::RestoreCache`], the
/// [`crate::disk_query::BufferedDiskStore`] buffer pool — all sharing
/// [`LruList`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Plain LRU: every insert is admitted, evicting the tail.
    #[default]
    Lru,
    /// TinyLFU-style frequency-sketch admission: at capacity, a
    /// candidate only displaces the LRU victim when the sketch says it
    /// is accessed at least as often. One-touch scan traffic (the
    /// adversarial pattern in the SkyServer-style traces) stops evicting
    /// the hot working set.
    TinyLfu,
}

impl Admission {
    /// Stable token for CLI flags and bench JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Admission::Lru => "lru",
            Admission::TinyLfu => "tinylfu",
        }
    }

    /// Parse a CLI token.
    pub fn parse(tok: &str) -> Option<Admission> {
        match tok {
            "lru" => Some(Admission::Lru),
            "tinylfu" => Some(Admission::TinyLfu),
            _ => None,
        }
    }
}

/// A count-min frequency sketch with 4-bit saturating counters — the
/// TinyLFU recency-weighted popularity estimate. Each key is charged to
/// four counters chosen by independent mixes of its hash; the estimate
/// is their minimum. When total additions reach the sample cap, every
/// counter is halved ("aging"), so popularity decays and a formerly-hot
/// key cannot squat forever.
///
/// The sketch is plain mutable state — callers wrap it in the same lock
/// as the LRU list it advises, so advising admission adds no extra
/// synchronization.
#[derive(Debug, Default)]
pub struct FrequencySketch {
    /// 16 packed 4-bit counters per word; length a power of two.
    table: Vec<u64>,
    /// `table.len() - 1`.
    mask: usize,
    /// Counter increments since the last halving.
    additions: u64,
    /// Halve all counters when `additions` reaches this.
    sample_cap: u64,
}

impl FrequencySketch {
    /// Sketch sized for a cache of `capacity` entries: ~8 counters per
    /// entry, aged every `10 × capacity` additions (the Caffeine
    /// defaults, which keep estimate error small at 4 bits).
    pub fn with_capacity(capacity: usize) -> Self {
        let words = (capacity.max(16) / 2).next_power_of_two();
        FrequencySketch {
            table: vec![0; words],
            mask: words - 1,
            additions: 0,
            sample_cap: capacity.max(16) as u64 * 10,
        }
    }

    /// Whether the sketch has a table (a defaulted sketch is a no-op
    /// placeholder used by LRU-policy shards).
    pub(crate) fn is_enabled(&self) -> bool {
        !self.table.is_empty()
    }

    /// The i-th derived position for `hash`: a word index and the bit
    /// shift of a 4-bit counter inside it.
    #[inline]
    fn position(&self, hash: u64, i: u64) -> (usize, u32) {
        // One multiply-mix per probe; distinct odd constants decorrelate
        // the four probes.
        const SEEDS: [u64; 4] = [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0xD6E8_FEB8_6659_FD93,
        ];
        let h = (hash ^ h_rot(hash, i)).wrapping_mul(SEEDS[i as usize]);
        let word = ((h >> 32) as usize) & self.mask;
        let slot = (h >> 28) as u32 & 15;
        (word, slot * 4)
    }

    /// Charge one access to `hash` (saturating at 15), aging the table
    /// at the sample cap.
    pub fn increment(&mut self, hash: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut added = false;
        for i in 0..4 {
            let (word, shift) = self.position(hash, i);
            let counter = (self.table[word] >> shift) & 15;
            if counter < 15 {
                self.table[word] += 1u64 << shift;
                added = true;
            }
        }
        if added {
            self.additions += 1;
            if self.additions >= self.sample_cap {
                self.halve();
            }
        }
    }

    /// Estimated access frequency of `hash` (0–15).
    pub fn estimate(&self, hash: u64) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        (0..4)
            .map(|i| {
                let (word, shift) = self.position(hash, i);
                (self.table[word] >> shift) & 15
            })
            .min()
            .unwrap_or(0)
    }

    /// Halve every counter (the TinyLFU aging step).
    fn halve(&mut self) {
        for word in self.table.iter_mut() {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions /= 2;
    }

    /// Forget everything — called on generation-epoch swaps, where
    /// popularity measured against the retired index must not bias
    /// admission on the new one.
    pub fn clear(&mut self) {
        self.table.iter_mut().for_each(|w| *w = 0);
        self.additions = 0;
    }
}

#[inline]
fn h_rot(hash: u64, i: u64) -> u64 {
    hash.rotate_left(17 + 13 * i as u32)
}

/// Hash a canonical pair key for the frequency sketch.
#[inline]
pub(crate) fn pair_hash(key: (u32, u32)) -> u64 {
    let mut z = ((key.0 as u64) << 32) | key.1 as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a node-id key for the frequency sketch (the node-keyed caches:
/// restore lists, disk buffer pool).
#[inline]
pub(crate) fn node_hash(v: u32) -> u64 {
    pair_hash((0, v))
}

/// Canonical symmetric pair key: SimRank is symmetric, so `{u, v}` and
/// `{v, u}` share one cache entry.
#[inline]
fn pair_key(u: NodeId, v: NodeId) -> (u32, u32) {
    (u.0.min(v.0), u.0.max(v.0))
}

/// Sentinel bit pattern for a cached *negative* verdict: a quiet NaN
/// with a recognizable payload. Legitimate cached scores are validated
/// finite probabilities (see [`crate::store::HpStore`] — every backend
/// rejects non-finite values at decode), so the sentinel can never
/// collide with a real score, and a negative entry costs the same 8
/// bytes as a positive one.
const NEGATIVE_BITS: u64 = 0x7ff8_6f6f_7261_6e67; // qNaN, "orang(e)" payload

#[inline]
fn is_negative_sentinel(value: f64) -> bool {
    value.to_bits() == NEGATIVE_BITS
}

/// What a [`ShardedResultCache`] remembers about a pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CachedVerdict {
    /// The pair's computed SimRank score.
    Score(f64),
    /// The pair references a node id `≥ n`: the query errors without
    /// touching the store, and so do all its repeats.
    OutOfRange,
}

/// One cached entry: the value plus the **generation epoch** it was
/// computed under. A serving layer that hot-swaps index generations
/// advances the cache's epoch at the swap ([`ShardedResultCache::set_epoch`]);
/// entries tagged with a retired epoch read as misses (and are dropped
/// on touch), so a hit computed against a retired index can never be
/// served. Inserts are tagged by the *caller* with the epoch of the
/// engine that actually computed the value — capturing the tag before
/// the computation closes the race where a swap lands mid-query and a
/// stale score would otherwise be admitted as fresh.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct EpochSlot {
    epoch: u64,
    value: f64,
}

/// A single-pair query front-end that memoizes results in an LRU cache.
///
/// Single-owner (`&mut self`); for a cache shared across threads use
/// [`ShardedResultCache`]. Generic over the storage backend: wrap an
/// in-memory index with [`CachedQueries::new`], or any [`QueryEngine`]
/// (mmap, buffered disk) with [`CachedQueries::for_engine`] — result
/// caching is most valuable exactly when a miss costs disk IO.
///
/// ```
/// use sling_core::cache::CachedQueries;
/// use sling_core::{SlingConfig, SlingIndex};
/// use sling_graph::generators::two_cliques_bridge;
///
/// let g = two_cliques_bridge(4);
/// let index = SlingIndex::build(&g, &SlingConfig::from_epsilon(0.6, 0.1)).unwrap();
/// let mut cache = CachedQueries::new(&index, 1024);
/// let first = cache.single_pair(&g, 0u32.into(), 1u32.into());
/// let again = cache.single_pair(&g, 1u32.into(), 0u32.into()); // symmetric hit
/// assert_eq!(first, again);
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct CachedQueries<'i, S: HpStore = HpArena> {
    engine: EngineRef<'i, S>,
    capacity: usize,
    lru: LruList<(u32, u32), f64>,
    ws: QueryWorkspace,
    stats: CacheStats,
}

impl<'i> CachedQueries<'i, HpArena> {
    /// Cache holding up to `capacity` pair results (capacity ≥ 1) over
    /// the in-memory index.
    pub fn new(index: &'i SlingIndex, capacity: usize) -> Self {
        Self::with_engine_ref(index.engine_ref(), capacity)
    }
}

impl<'i, S: HpStore> CachedQueries<'i, S> {
    /// Cache over any query engine (mmap, disk, buffered).
    pub fn for_engine<'e>(engine: &'i QueryEngine<'e, S>, capacity: usize) -> Self {
        Self::with_engine_ref(engine.engine_ref(), capacity)
    }

    fn with_engine_ref(engine: EngineRef<'i, S>, capacity: usize) -> Self {
        CachedQueries {
            engine,
            capacity: capacity.max(1),
            lru: LruList::new(),
            ws: QueryWorkspace::new(),
            stats: CacheStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Drop all cached entries (counters are kept).
    pub fn clear(&mut self) {
        self.lru.clear();
    }

    /// Cached single-pair query. Self-pairs are answered without caching.
    ///
    /// # Panics
    /// Panics if the backing store fails mid-read (impossible for the
    /// in-memory backend); disk-backed callers who need to handle IO
    /// errors should use [`CachedQueries::try_single_pair`].
    pub fn single_pair(&mut self, graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
        self.try_single_pair(graph, u, v)
            .expect("HP store failed during cached query")
    }

    /// Cached single-pair query, surfacing backend read errors.
    pub fn try_single_pair(
        &mut self,
        graph: &DiGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        if u == v {
            return single_pair_core(self.engine, graph, &mut self.ws, u, v);
        }
        let key = pair_key(u, v);
        if let Some(&value) = self.lru.get(&key) {
            self.stats.hits += 1;
            return Ok(value);
        }
        self.stats.misses += 1;
        let value = single_pair_core(self.engine, graph, &mut self.ws, u, v)?;
        if self.lru.len() >= self.capacity {
            self.lru.pop_lru();
            self.stats.evictions += 1;
        }
        self.lru.insert(key, value);
        Ok(value)
    }
}

/// Sharded global LRU result cache for concurrent serving.
///
/// The single-threaded [`CachedQueries`] front-end cannot back a server:
/// every worker would serialize on one lock and one workspace. This cache
/// is pure shared state — `get`/`insert` take `&self` — split into a
/// power-of-two number of shards, each an independently locked
/// [`LruList`], so concurrent queries for different keys proceed in
/// parallel and hot-key traffic contends only on its own shard. Counters
/// are [`AtomicCacheStats`], exact under concurrency.
///
/// The cache stores canonical symmetric pairs and is backend-agnostic:
/// any number of threads querying one [`SharedEngine`] (in-memory, mmap,
/// disk) can share it — see [`SharedEngine::single_pair_cached`] and the
/// cached batch path. Since the index is immutable, a racing insert of
/// the same key writes the same bits; the first insert wins and later
/// ones are dropped.
pub struct ShardedResultCache {
    shards: Box<[Mutex<ResultShard>]>,
    shard_capacity: usize,
    admission: Admission,
    /// Inserts refused by frequency-sketch admission (always 0 under
    /// plain LRU).
    admission_rejects: AtomicU64,
    stats: AtomicCacheStats,
    /// Current generation epoch; entries tagged with any other epoch
    /// are invalid (see [`EpochSlot`]). Static deployments never touch
    /// it and stay at 0.
    epoch: AtomicU64,
}

/// One lock's worth of cache: the LRU list plus (under TinyLFU
/// admission) the frequency sketch advising its evictions — same lock,
/// so admission adds no synchronization.
#[derive(Default)]
struct ResultShard {
    list: LruList<(u32, u32), EpochSlot>,
    sketch: FrequencySketch,
}

impl ShardedResultCache {
    /// Default shard count: enough to keep 8–16 workers off each other's
    /// locks without fragmenting small capacities.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Cache holding up to `capacity` pair results across `shards` locks
    /// (rounded up to a power of two; each shard gets an equal slice,
    /// at least one entry), with plain-LRU admission.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_admission(capacity, shards, Admission::Lru)
    }

    /// [`ShardedResultCache::new`] with an explicit admission policy.
    pub fn with_admission(capacity: usize, shards: usize, admission: Admission) -> Self {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        let shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedResultCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ResultShard {
                        list: LruList::new(),
                        sketch: match admission {
                            Admission::Lru => FrequencySketch::default(),
                            Admission::TinyLfu => FrequencySketch::with_capacity(shard_capacity),
                        },
                    })
                })
                .collect(),
            shard_capacity,
            admission,
            admission_rejects: AtomicU64::new(0),
            stats: AtomicCacheStats::new(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Cache over [`ShardedResultCache::DEFAULT_SHARDS`] shards.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(capacity, Self::DEFAULT_SHARDS)
    }

    /// The configured admission policy.
    pub fn admission(&self) -> Admission {
        self.admission
    }

    /// Inserts refused by frequency-sketch admission.
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects.load(Ordering::Relaxed)
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    #[inline]
    fn shard_index(&self, key: (u32, u32)) -> usize {
        // Fibonacci hashing on the packed pair; take high bits (the low
        // bits of a product depend only on the low bits of the inputs).
        let packed = ((key.0 as u64) << 32) | key.1 as u64;
        let h = packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) & (self.shards.len() - 1)
    }

    /// The current generation epoch. Entries are only served while their
    /// tag matches it; new deployments start (and static ones stay) at 0.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Set the generation epoch, lazily invalidating every entry tagged
    /// with a different one. A serving layer calls this when it swaps
    /// index generations (monotone values keep the tags unambiguous).
    /// Frequency sketches are reset eagerly: popularity measured against
    /// the retired index must not veto admissions on the new one.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Release);
        self.reset_sketches();
    }

    /// Bump the generation epoch by one, invalidating all resident
    /// entries (and resetting the admission sketches); returns the new
    /// epoch.
    pub fn advance_epoch(&self) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.reset_sketches();
        epoch
    }

    fn reset_sketches(&self) {
        if self.admission == Admission::TinyLfu {
            for shard in self.shards.iter() {
                shard.lock().sketch.clear();
            }
        }
    }

    /// Cached verdict of the (canonicalized) pair, recording a hit or
    /// miss. Negative verdicts count as hits: the whole point of caching
    /// them is that the repeat costs a shard probe instead of a query.
    /// An entry from a retired generation epoch reads as a miss and is
    /// dropped on touch.
    pub fn lookup(&self, u: NodeId, v: NodeId) -> Option<CachedVerdict> {
        self.lookup_tagged(u, v, self.epoch())
    }

    /// [`ShardedResultCache::lookup`] against an explicit generation
    /// epoch: only entries computed under exactly that epoch are served.
    /// A hot-swapping server passes the epoch of the generation the
    /// *request* is being answered on, so a request that started on the
    /// retired generation cannot be handed a score computed on the new
    /// one mid-flight (one `BATCH` response never mixes indexes), and
    /// vice versa. Entries from epochs that are neither the requested
    /// nor the current one are dropped on touch; an entry from the
    /// current epoch observed by an older-generation request is left in
    /// place for the requests that can use it.
    pub fn lookup_tagged(&self, u: NodeId, v: NodeId, epoch: u64) -> Option<CachedVerdict> {
        let key = pair_key(u, v);
        let current = self.epoch();
        let hit = {
            let mut shard = self.shards[self.shard_index(key)].lock();
            // Every lookup — hit or miss — is one observation of the
            // key's popularity; the sketch is what admission consults
            // when this key later competes for a slot.
            shard.sketch.increment(pair_hash(key));
            match shard.list.get(&key).copied() {
                Some(slot) if slot.epoch == epoch => Some(slot.value),
                Some(slot) => {
                    if slot.epoch != current {
                        // Computed against a retired index: free the
                        // slot so the live generation can refill it.
                        shard.list.remove(&key);
                    }
                    None
                }
                None => None,
            }
        };
        match hit {
            Some(_) => self.stats.record_hit(),
            None => self.stats.record_miss(),
        }
        hit.map(|value| {
            if is_negative_sentinel(value) {
                CachedVerdict::OutOfRange
            } else {
                CachedVerdict::Score(value)
            }
        })
    }

    /// Cached score of the (canonicalized) pair, recording a hit or miss.
    /// A cached negative verdict reads as `None` (use
    /// [`ShardedResultCache::lookup`] to distinguish it from absence).
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<f64> {
        match self.lookup(u, v) {
            Some(CachedVerdict::Score(s)) => Some(s),
            _ => None,
        }
    }

    /// Insert a computed score tagged with the **current** epoch,
    /// evicting the shard's LRU entry at capacity. A key another thread
    /// already inserted is left untouched (deterministic queries make
    /// the values identical). Non-finite values are rejected — no
    /// backend can legitimately produce one, and admitting a NaN could
    /// forge the negative sentinel. Callers racing a generation swap
    /// should use [`ShardedResultCache::insert_tagged`] with an epoch
    /// captured *before* computing.
    pub fn insert(&self, u: NodeId, v: NodeId, value: f64) {
        self.insert_tagged(u, v, value, self.epoch());
    }

    /// Insert a score computed under generation `epoch`. If the epoch is
    /// no longer current (a swap landed while the value was being
    /// computed) the insert is dropped — a score from a retired index
    /// must never be admitted as fresh.
    pub fn insert_tagged(&self, u: NodeId, v: NodeId, value: f64, epoch: u64) {
        if !value.is_finite() {
            return;
        }
        self.insert_raw(pair_key(u, v), EpochSlot { epoch, value });
    }

    /// Remember that this (canonicalized) pair references an out-of-range
    /// node id, so repeats are answered from the cache. Negative entries
    /// share the LRU space and eviction policy with scores.
    pub fn insert_negative(&self, u: NodeId, v: NodeId) {
        self.insert_negative_tagged(u, v, self.epoch());
    }

    /// Epoch-tagged variant of [`ShardedResultCache::insert_negative`]
    /// (out-of-range verdicts survive swaps only if `n` is unchanged, so
    /// they obey the same epoch rules as scores).
    pub fn insert_negative_tagged(&self, u: NodeId, v: NodeId, epoch: u64) {
        self.insert_raw(
            pair_key(u, v),
            EpochSlot {
                epoch,
                value: f64::from_bits(NEGATIVE_BITS),
            },
        );
    }

    fn insert_raw(&self, key: (u32, u32), slot: EpochSlot) {
        if slot.epoch != self.epoch() {
            return; // computed against a retired generation
        }
        let mut shard = self.shards[self.shard_index(key)].lock();
        match shard.list.get(&key) {
            // First insert wins while the entry is live...
            Some(live) if live.epoch == slot.epoch => return,
            // ...but a retired-epoch entry is dead weight: replace it.
            Some(_) => {
                shard.list.remove(&key);
            }
            None => {}
        }
        if shard.list.len() >= self.shard_capacity {
            // TinyLFU admission: the candidate must out-earn the LRU
            // victim in sketched frequency, or the insert is refused
            // and the resident entry survives. This is what keeps a
            // one-touch cold scan from churning the hot working set.
            if self.admission == Admission::TinyLfu {
                if let Some((&victim, victim_slot)) = shard.list.peek_lru() {
                    // Strictly greater, as in Caffeine: ties reject, so
                    // one-touch keys cannot churn each other either. A
                    // retired-epoch victim is dead weight and is never
                    // protected.
                    if victim_slot.epoch == slot.epoch
                        && shard.sketch.estimate(pair_hash(key))
                            <= shard.sketch.estimate(pair_hash(victim))
                    {
                        drop(shard);
                        self.admission_rejects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            shard.list.pop_lru();
            self.stats.record_evictions(1);
        }
        shard.list.insert(key, slot);
    }

    /// Counter snapshot (exact even while other threads query).
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().list.len()).sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().list.is_empty())
    }

    /// Drop all cached entries (counters and sketches are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().list.clear();
        }
    }
}

impl<S: HpStore> SharedEngine<S> {
    /// Single-pair query memoized through a shared [`ShardedResultCache`].
    ///
    /// The pair is canonicalized to `(min, max)` **before computing**, so
    /// the score is bit-identical regardless of argument order, cache
    /// state, or which thread populated the entry — the property the
    /// multi-threaded equivalence tests pin down.
    ///
    /// Trivial and degenerate lookups are memoized too, not just real
    /// scores: identity pairs `(u, u)` (which run the full Eq. (17)
    /// estimate when `exact_diagonal` is off) cache their score like any
    /// other pair, and a pair referencing an out-of-range node id caches
    /// a negative verdict — repeats of garbage traffic cost one shard
    /// probe plus an `O(1)` re-derivation of the structured error,
    /// instead of reaching the engine every time.
    pub fn single_pair_cached(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        cache: &ShardedResultCache,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        self.single_pair_cached_tagged(graph, ws, cache, u, v, cache.epoch())
    }

    /// [`SharedEngine::single_pair_cached`] with an explicit generation
    /// epoch tag for both the lookup and the insert. A hot-swapping
    /// server passes the epoch of the engine generation it is querying —
    /// captured *before* the computation — which gives two guarantees: a
    /// swap landing mid-query can never get a score computed on the
    /// retired generation admitted as fresh (the tagged insert is simply
    /// dropped), and a request answering on one generation can never be
    /// served a hit computed on another (the tagged lookup only matches
    /// its own epoch, so e.g. one `BATCH` response never mixes indexes).
    /// Static callers pass `cache.epoch()`.
    pub fn single_pair_cached_tagged(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        cache: &ShardedResultCache,
        u: NodeId,
        v: NodeId,
        epoch: u64,
    ) -> Result<f64, SlingError> {
        // Under `exact_diagonal` an in-range identity pair is a literal
        // constant — cheaper to answer than to probe a shard lock, and
        // caching it would evict scores that are actually expensive.
        // (An *out-of-range* self-pair still flows through the cache
        // below and memoizes its negative verdict.)
        if u == v && self.config().exact_diagonal && u.index() < self.num_nodes() {
            return self.single_pair_with(graph, ws, u, v);
        }
        let (a, b) = if u.0 <= v.0 { (u, v) } else { (v, u) };
        match cache.lookup_tagged(a, b, epoch) {
            Some(CachedVerdict::Score(hit)) => return Ok(hit),
            Some(CachedVerdict::OutOfRange) => {
                // Re-derive the structured error from the O(1) range
                // check — same error either argument order produced.
                // (If the engine somehow disagrees with the verdict —
                // impossible while engines stay immutable — fall through
                // and compute rather than trusting a corrupted cache.)
                let e = self.engine_ref();
                e.check_node(a).and_then(|()| e.check_node(b))?;
            }
            None => {}
        }
        // Prefetch only on the miss path: a hit never touches the store,
        // so advising it would be pure syscall overhead on the hot path.
        self.store().prefetch(a);
        self.store().prefetch(b);
        match self.single_pair_with(graph, ws, a, b) {
            Ok(value) => {
                cache.insert_tagged(a, b, value, epoch);
                Ok(value)
            }
            Err(err @ SlingError::NodeOutOfRange { .. }) => {
                cache.insert_negative_tagged(a, b, epoch);
                Err(err)
            }
            Err(err) => Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::two_cliques_bridge;

    const C: f64 = 0.6;

    fn setup() -> (DiGraph, SlingIndex) {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.05).with_seed(3)).unwrap();
        (g, idx)
    }

    #[test]
    fn cached_answers_match_uncached() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 64);
        for u in g.nodes() {
            for v in g.nodes() {
                let want = idx.single_pair(&g, u, v);
                // The cache canonicalizes the pair order, so a query made
                // in the other order can differ by float merge order.
                let got = cache.single_pair(&g, u, v);
                assert!((got - want).abs() < 1e-12, "{got} vs {want}");
                // Second read must hit and return the identical value.
                assert_eq!(cache.single_pair(&g, u, v), got);
            }
        }
        assert!(cache.stats().hits >= cache.stats().misses);
    }

    #[test]
    fn symmetric_keys_share_entries() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 8);
        let a = cache.single_pair(&g, NodeId(1), NodeId(2));
        let b = cache.single_pair(&g, NodeId(2), NodeId(1));
        assert_eq!(a, b);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 2);
        cache.single_pair(&g, NodeId(0), NodeId(1)); // miss {0,1}
        cache.single_pair(&g, NodeId(0), NodeId(2)); // miss {0,2}
        cache.single_pair(&g, NodeId(0), NodeId(1)); // hit  {0,1} -> MRU
        cache.single_pair(&g, NodeId(0), NodeId(3)); // miss, evicts {0,2}
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        cache.single_pair(&g, NodeId(0), NodeId(1)); // still resident
        assert_eq!(cache.stats().hits, 2);
        cache.single_pair(&g, NodeId(0), NodeId(2)); // was evicted -> miss
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn capacity_one_works() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 1);
        for _ in 0..3 {
            cache.single_pair(&g, NodeId(0), NodeId(1));
            cache.single_pair(&g, NodeId(2), NodeId(3));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().misses, 6, "capacity 1 thrashes");
        assert_eq!(cache.stats().evictions, 5);
    }

    #[test]
    fn self_pairs_bypass_cache() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 4);
        assert_eq!(cache.single_pair(&g, NodeId(2), NodeId(2)), 1.0);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn clear_resets_entries_not_counters() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 8);
        cache.single_pair(&g, NodeId(0), NodeId(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        // Re-query misses again (entry gone) and re-populates.
        cache.single_pair(&g, NodeId(0), NodeId(1));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_rate_math() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(stats.hit_rate(), 0.75);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn lru_list_core_operations() {
        let mut lru: LruList<u32, u64> = LruList::new();
        assert!(lru.is_empty());
        assert_eq!(lru.pop_lru(), None);
        for k in 0..4u32 {
            lru.insert(k, u64::from(k) * 10);
        }
        assert_eq!(lru.len(), 4);
        // Touch 0: it becomes MRU, so LRU order is now 1, 2, 3, 0.
        assert_eq!(lru.get(&0), Some(&0));
        assert_eq!(lru.pop_lru(), Some((1, 10)));
        assert_eq!(lru.pop_lru(), Some((2, 20)));
        // Freed slots are recycled.
        lru.insert(9, 90);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.pop_lru(), Some((3, 30)));
        assert_eq!(lru.pop_lru(), Some((0, 0)));
        assert_eq!(lru.pop_lru(), Some((9, 90)));
        assert_eq!(lru.pop_lru(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn atomic_stats_are_exact_under_contention() {
        let stats = AtomicCacheStats::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        stats.record_hit();
                    }
                    for _ in 0..500 {
                        stats.record_miss();
                    }
                    stats.record_evictions(3);
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.hits, 8000);
        assert_eq!(snap.misses, 4000);
        assert_eq!(snap.evictions, 24);
    }

    #[test]
    fn sharded_cache_basic_hit_miss_evict() {
        let cache = ShardedResultCache::new(8, 4);
        assert_eq!(cache.num_shards(), 4);
        assert_eq!(cache.capacity(), 8);
        assert_eq!(cache.get(NodeId(1), NodeId(2)), None);
        cache.insert(NodeId(2), NodeId(1), 0.25); // canonicalized
        assert_eq!(cache.get(NodeId(1), NodeId(2)), Some(0.25));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Double insert of a live key is a no-op.
        cache.insert(NodeId(1), NodeId(2), 0.99);
        assert_eq!(cache.get(NodeId(1), NodeId(2)), Some(0.25));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(NodeId(1), NodeId(2)), None);
    }

    #[test]
    fn negative_verdicts_are_cached_and_served() {
        let (g, idx) = setup(); // n = 10
        let n = g.num_nodes() as u32;
        let engine: SharedEngine<HpArena> = idx.into();
        let cache = ShardedResultCache::with_capacity(16);
        let mut ws = QueryWorkspace::new();
        // First garbage query: miss, computes, errors, caches the verdict.
        let err = engine
            .single_pair_cached(&g, &mut ws, &cache, NodeId(2), NodeId(n + 7))
            .unwrap_err();
        assert!(matches!(err, SlingError::NodeOutOfRange { node, .. } if node == n + 7));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(
            cache.lookup(NodeId(2), NodeId(n + 7)),
            Some(CachedVerdict::OutOfRange)
        );
        // Repeats — in either argument order — are hits with the same
        // structured error.
        for _ in 0..3 {
            let err = engine
                .single_pair_cached(&g, &mut ws, &cache, NodeId(n + 7), NodeId(2))
                .unwrap_err();
            assert!(matches!(err, SlingError::NodeOutOfRange { node, .. } if node == n + 7));
        }
        // 1 probe miss + (1 direct lookup + 3 repeats) hits.
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 4);
        // `get` never surfaces the sentinel as a score.
        assert_eq!(cache.get(NodeId(2), NodeId(n + 7)), None);
    }

    #[test]
    fn identity_pairs_are_cached_when_estimated() {
        // With exact_diagonal off, s(u, u) runs the full Eq. (17)
        // estimate — worth a cache slot.
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(
            &g,
            &SlingConfig::from_epsilon(C, 0.05)
                .with_seed(3)
                .with_exact_diagonal(false),
        )
        .unwrap();
        let want = idx.single_pair(&g, NodeId(3), NodeId(3));
        let engine: SharedEngine<HpArena> = idx.into();
        let cache = ShardedResultCache::with_capacity(16);
        let mut ws = QueryWorkspace::new();
        let first = engine
            .single_pair_cached(&g, &mut ws, &cache, NodeId(3), NodeId(3))
            .unwrap();
        assert_eq!(first, want);
        assert_eq!(cache.stats().misses, 1);
        let again = engine
            .single_pair_cached(&g, &mut ws, &cache, NodeId(3), NodeId(3))
            .unwrap();
        assert_eq!(again, want);
        assert_eq!(cache.stats().hits, 1, "identity repeat must hit");
    }

    #[test]
    fn exact_diagonal_identity_pairs_bypass_the_cache() {
        // With exact_diagonal on (the default), s(u, u) = 1.0 is a
        // constant; it must not take shard locks or occupy a slot.
        let (g, idx) = setup();
        let engine: SharedEngine<HpArena> = idx.into();
        let cache = ShardedResultCache::with_capacity(16);
        let mut ws = QueryWorkspace::new();
        for _ in 0..3 {
            assert_eq!(
                engine
                    .single_pair_cached(&g, &mut ws, &cache, NodeId(2), NodeId(2))
                    .unwrap(),
                1.0
            );
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn non_finite_scores_are_never_admitted() {
        let cache = ShardedResultCache::with_capacity(8);
        cache.insert(NodeId(0), NodeId(1), f64::NAN);
        cache.insert(NodeId(0), NodeId(1), f64::INFINITY);
        assert!(cache.is_empty());
        // In particular, a forged sentinel cannot enter through insert.
        cache.insert(NodeId(0), NodeId(1), f64::from_bits(super::NEGATIVE_BITS));
        assert_eq!(cache.lookup(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn epoch_bump_invalidates_resident_entries() {
        let cache = ShardedResultCache::new(8, 1);
        cache.insert(NodeId(0), NodeId(1), 0.25);
        cache.insert_negative(NodeId(0), NodeId(99));
        assert_eq!(cache.get(NodeId(0), NodeId(1)), Some(0.25));
        assert_eq!(
            cache.lookup(NodeId(0), NodeId(99)),
            Some(CachedVerdict::OutOfRange)
        );
        // A generation swap advances the epoch: both entries must now
        // read as misses (and be dropped on touch), score and negative
        // verdict alike.
        assert_eq!(cache.advance_epoch(), 1);
        assert_eq!(cache.epoch(), 1);
        assert_eq!(cache.lookup(NodeId(0), NodeId(1)), None);
        assert_eq!(cache.lookup(NodeId(0), NodeId(99)), None);
        assert!(cache.is_empty(), "stale entries must be dropped on touch");
        // The new generation refills the same keys.
        cache.insert(NodeId(0), NodeId(1), 0.5);
        assert_eq!(cache.get(NodeId(0), NodeId(1)), Some(0.5));
    }

    #[test]
    fn tagged_lookup_never_crosses_generations() {
        let cache = ShardedResultCache::new(8, 1);
        cache.set_epoch(2);
        cache.insert_tagged(NodeId(0), NodeId(1), 0.5, 2);
        // A request still answering on the previous generation (epoch 1)
        // must not be served the new generation's entry — one response
        // never mixes indexes...
        assert_eq!(cache.lookup_tagged(NodeId(0), NodeId(1), 1), None);
        // ...and probing it must not evict the current generation's
        // entry, which stays served to current-epoch requests.
        assert_eq!(
            cache.lookup_tagged(NodeId(0), NodeId(1), 2),
            Some(CachedVerdict::Score(0.5))
        );
        assert_eq!(cache.len(), 1);
        // An entry from neither the requested nor the current epoch is
        // dead weight and is dropped on touch.
        cache.set_epoch(3);
        assert_eq!(cache.lookup_tagged(NodeId(0), NodeId(1), 1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_tagged_inserts_are_dropped() {
        let cache = ShardedResultCache::new(8, 1);
        // A worker captures the epoch, computes... and a swap lands
        // before it inserts: the stale score must not be admitted.
        let before = cache.epoch();
        cache.set_epoch(7);
        cache.insert_tagged(NodeId(0), NodeId(1), 0.25, before);
        assert!(cache.is_empty());
        // A stale-epoch entry already resident is *replaced* by a live
        // insert rather than blocking it.
        cache.insert_tagged(NodeId(0), NodeId(2), 0.1, 7);
        cache.set_epoch(8);
        cache.insert_tagged(NodeId(0), NodeId(2), 0.9, 8);
        assert_eq!(cache.get(NodeId(0), NodeId(2)), Some(0.9));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tagged_engine_queries_respect_a_mid_query_swap() {
        let (g, idx) = setup();
        let want = idx.single_pair(&g, NodeId(0), NodeId(1));
        let engine: SharedEngine<HpArena> = idx.into();
        let cache = ShardedResultCache::with_capacity(16);
        let mut ws = QueryWorkspace::new();
        // Simulate: epoch captured at 0, swap to 1 mid-compute. The
        // answer is still returned (computed on the engine the caller
        // held), but it is never cached.
        cache.set_epoch(1);
        let got = engine
            .single_pair_cached_tagged(&g, &mut ws, &cache, NodeId(0), NodeId(1), 0)
            .unwrap();
        assert_eq!(got, want);
        assert!(cache.is_empty(), "stale-epoch result was cached");
        // The untagged path tags with the current epoch and caches.
        let got = engine
            .single_pair_cached(&g, &mut ws, &cache, NodeId(0), NodeId(1))
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sharded_cache_evicts_per_shard() {
        // 1 shard of capacity 2 makes eviction deterministic.
        let cache = ShardedResultCache::new(2, 1);
        cache.insert(NodeId(0), NodeId(1), 0.1);
        cache.insert(NodeId(0), NodeId(2), 0.2);
        assert!(cache.get(NodeId(0), NodeId(1)).is_some()); // {0,1} -> MRU
        cache.insert(NodeId(0), NodeId(3), 0.3); // evicts {0,2}
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(NodeId(0), NodeId(2)).is_none());
        assert!(cache.get(NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache = ShardedResultCache::new(100, 5);
        assert_eq!(cache.num_shards(), 8);
        let one = ShardedResultCache::new(10, 0);
        assert_eq!(one.num_shards(), 1);
    }

    #[test]
    fn engine_cached_single_pair_is_order_independent_and_exact() {
        let (g, idx) = setup();
        let reference = idx.clone();
        let engine: SharedEngine<HpArena> = idx.into();
        let cache = ShardedResultCache::with_capacity(64);
        let mut ws = QueryWorkspace::new();
        for u in g.nodes() {
            for v in g.nodes() {
                let got = engine
                    .single_pair_cached(&g, &mut ws, &cache, u, v)
                    .unwrap();
                // Canonical order makes both query orders bit-identical.
                let (a, b) = (u.0.min(v.0), u.0.max(v.0));
                let want = reference.single_pair(&g, NodeId(a), NodeId(b));
                assert_eq!(got, want, "({u:?},{v:?})");
            }
        }
        let s = cache.stats();
        assert!(s.hits > 0 && s.misses > 0);
    }

    #[test]
    fn sharded_cache_concurrent_hammer_is_consistent() {
        let (g, idx) = setup();
        let serial: Vec<((u32, u32), f64)> = {
            let mut out = Vec::new();
            for u in g.nodes() {
                for v in g.nodes() {
                    if u.0 < v.0 {
                        out.push(((u.0, v.0), idx.single_pair(&g, u, v)));
                    }
                }
            }
            out
        };
        let engine: SharedEngine<HpArena> = idx.into();
        let cache = ShardedResultCache::new(32, 4);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let (engine, cache, g, serial) = (&engine, &cache, &g, &serial);
                s.spawn(move || {
                    let mut ws = QueryWorkspace::new();
                    for round in 0..4 {
                        for (i, &((a, b), want)) in serial.iter().enumerate() {
                            if (i + t + round) % 3 == 0 {
                                continue; // vary the interleaving per thread
                            }
                            // Alternate argument order across threads.
                            let (u, v) = if t % 2 == 0 { (a, b) } else { (b, a) };
                            let got = engine
                                .single_pair_cached(g, &mut ws, cache, NodeId(u), NodeId(v))
                                .unwrap();
                            assert_eq!(got, want, "pair ({a},{b}) diverged on thread {t}");
                        }
                    }
                });
            }
        });
        // 45 canonical pairs, 15 of which each (thread, round) skips:
        // 8 threads x 4 rounds x 30 queries, every one counted exactly once.
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 4 * 30);
        assert!(s.hits > 0);
    }

    #[test]
    fn sketch_counts_and_ages() {
        let mut sketch = FrequencySketch::with_capacity(64);
        let hot = pair_hash((3, 77));
        let cold = pair_hash((5, 99));
        for _ in 0..10 {
            sketch.increment(hot);
        }
        sketch.increment(cold);
        assert!(sketch.estimate(hot) >= 8, "{}", sketch.estimate(hot));
        assert!(sketch.estimate(cold) <= 2);
        assert_eq!(sketch.estimate(pair_hash((1, 2))), 0, "untouched key");
        // Saturation: 100 more increments cap at 15, never wrap.
        for _ in 0..100 {
            sketch.increment(hot);
        }
        assert!(sketch.estimate(hot) <= 15);
        // Aging halves, clear forgets.
        sketch.halve();
        assert!(sketch.estimate(hot) <= 7);
        sketch.clear();
        assert_eq!(sketch.estimate(hot), 0);
    }

    #[test]
    fn default_sketch_is_a_noop() {
        let mut sketch = FrequencySketch::default();
        sketch.increment(pair_hash((1, 2)));
        assert_eq!(sketch.estimate(pair_hash((1, 2))), 0);
    }

    /// The adversarial pattern from the workload traces: a hot working
    /// set that fits the cache, interleaved 1:2 with a one-touch cold
    /// scan much bigger than it. Under plain LRU each hot key is
    /// evicted by ~70 fresher scan keys before its next touch; under
    /// TinyLFU admission the scan keys lose the frequency contest and
    /// the hot set stays resident.
    #[test]
    fn tinylfu_resists_cold_scan_where_lru_thrashes() {
        let hot: Vec<(u32, u32)> = (0..24).map(|i| (i, i + 1000)).collect();
        let run = |cache: &ShardedResultCache| {
            for &(u, v) in &hot {
                cache.get(NodeId(u), NodeId(v));
                cache.insert(NodeId(u), NodeId(v), 0.25);
            }
            let mut hot_hits = 0usize;
            let mut cold = 0u32;
            for i in 0..6000usize {
                if i % 3 == 0 {
                    let (u, v) = hot[(i / 3) % hot.len()];
                    match cache.get(NodeId(u), NodeId(v)) {
                        Some(_) => hot_hits += 1,
                        None => cache.insert(NodeId(u), NodeId(v), 0.25),
                    }
                } else {
                    cold += 1;
                    let (u, v) = (NodeId(100_000 + cold), NodeId(200_000 + cold));
                    assert!(cache.get(u, v).is_none(), "cold keys are one-touch");
                    cache.insert(u, v, 0.5);
                }
            }
            hot_hits
        };
        let lru = ShardedResultCache::new(32, 1);
        let tiny = ShardedResultCache::with_admission(32, 1, Admission::TinyLfu);
        let lru_hits = run(&lru);
        let tiny_hits = run(&tiny);
        // 2000 hot accesses each. LRU thrashes (hot keys rarely survive
        // the 48 interleaved cold inserts between their touches);
        // TinyLFU serves nearly all of them.
        assert!(
            lru_hits < 500,
            "LRU unexpectedly scan-resistant: {lru_hits}"
        );
        assert!(tiny_hits > 1500, "TinyLFU thrashes: {tiny_hits}");
        assert!(tiny_hits > lru_hits * 3);
        assert!(tiny.admission_rejects() > 1000);
        assert_eq!(lru.admission_rejects(), 0);
    }

    /// An epoch swap must reset sketched popularity: the new
    /// generation's traffic starts from a clean slate instead of being
    /// vetoed by the retired index's hot set.
    #[test]
    fn tinylfu_sketch_resets_on_epoch_swap() {
        let cache = ShardedResultCache::with_admission(16, 1, Admission::TinyLfu);
        // Make 16 old-generation keys very popular and resident.
        for _ in 0..10 {
            for i in 0..16u32 {
                if cache.get(NodeId(i), NodeId(i + 100)).is_none() {
                    cache.insert(NodeId(i), NodeId(i + 100), 0.5);
                }
            }
        }
        // A fresh key is refused: zero sketched frequency vs a popular
        // victim.
        cache.insert(NodeId(777), NodeId(888), 0.25);
        assert!(cache.get(NodeId(777), NodeId(888)).is_none());
        assert!(cache.admission_rejects() > 0);
        let rejects_before = cache.admission_rejects();
        // Swap generations: resident entries invalidate lazily, the
        // sketch resets eagerly, and new traffic is admitted freely
        // (candidate 0 >= victim 0).
        cache.advance_epoch();
        for i in 0..16u32 {
            cache.insert(NodeId(500 + i), NodeId(600 + i), 0.75);
        }
        for i in 0..16u32 {
            assert_eq!(cache.get(NodeId(500 + i), NodeId(600 + i)), Some(0.75));
        }
        assert_eq!(cache.admission_rejects(), rejects_before);
    }

    #[test]
    fn admission_parses_and_prints() {
        assert_eq!(Admission::parse("lru"), Some(Admission::Lru));
        assert_eq!(Admission::parse("tinylfu"), Some(Admission::TinyLfu));
        assert_eq!(Admission::parse("arc"), None);
        assert_eq!(Admission::TinyLfu.as_str(), "tinylfu");
        assert_eq!(Admission::default(), Admission::Lru);
    }
}
