//! LRU result cache for single-pair queries.
//!
//! SimRank workloads in the applications the paper motivates (link
//! prediction, collaborative filtering, "who to follow") exhibit heavy
//! query-key reuse: hot nodes participate in many pair queries. Since the
//! index is immutable after construction, caching is trivially coherent.
//! Keys are canonicalized (`min(u,v), max(u,v)`) because SimRank is
//! symmetric, doubling the effective hit rate.
//!
//! The cache is an open-hash map over an intrusive doubly-linked LRU
//! list, built on the workspace's [`FxHashMap`] — no external LRU crate.
//! All operations are `O(1)` expected.

use sling_graph::{DiGraph, FxHashMap, NodeId};

use crate::error::SlingError;
use crate::hp::HpArena;
use crate::index::{QueryWorkspace, SlingIndex};
use crate::single_pair::single_pair_core;
use crate::store::{EngineRef, HpStore, QueryEngine};

/// Running hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run Algorithm 3.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no queries were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: u32 = u32::MAX;

struct Slot {
    key: (u32, u32),
    value: f64,
    prev: u32,
    next: u32,
}

/// A single-pair query front-end that memoizes results in an LRU cache.
///
/// Generic over the storage backend: wrap an in-memory index with
/// [`CachedQueries::new`], or any [`QueryEngine`] (mmap, buffered disk)
/// with [`CachedQueries::for_engine`] — result caching is most valuable
/// exactly when a miss costs disk IO.
///
/// ```
/// use sling_core::cache::CachedQueries;
/// use sling_core::{SlingConfig, SlingIndex};
/// use sling_graph::generators::two_cliques_bridge;
///
/// let g = two_cliques_bridge(4);
/// let index = SlingIndex::build(&g, &SlingConfig::from_epsilon(0.6, 0.1)).unwrap();
/// let mut cache = CachedQueries::new(&index, 1024);
/// let first = cache.single_pair(&g, 0u32.into(), 1u32.into());
/// let again = cache.single_pair(&g, 1u32.into(), 0u32.into()); // symmetric hit
/// assert_eq!(first, again);
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct CachedQueries<'i, S: HpStore = HpArena> {
    engine: EngineRef<'i, S>,
    capacity: usize,
    map: FxHashMap<(u32, u32), u32>,
    slots: Vec<Slot>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
    ws: QueryWorkspace,
    stats: CacheStats,
}

impl<'i> CachedQueries<'i, HpArena> {
    /// Cache holding up to `capacity` pair results (capacity ≥ 1) over
    /// the in-memory index.
    pub fn new(index: &'i SlingIndex, capacity: usize) -> Self {
        Self::with_engine_ref(index.engine_ref(), capacity)
    }
}

impl<'i, S: HpStore> CachedQueries<'i, S> {
    /// Cache over any query engine (mmap, disk, buffered).
    pub fn for_engine<'e>(engine: &'i QueryEngine<'e, S>, capacity: usize) -> Self {
        Self::with_engine_ref(engine.engine_ref(), capacity)
    }

    fn with_engine_ref(engine: EngineRef<'i, S>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CachedQueries {
            engine,
            capacity,
            map: FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(4096)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            ws: QueryWorkspace::new(),
            stats: CacheStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all cached entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Cached single-pair query. Self-pairs are answered without caching.
    ///
    /// # Panics
    /// Panics if the backing store fails mid-read (impossible for the
    /// in-memory backend); disk-backed callers who need to handle IO
    /// errors should use [`CachedQueries::try_single_pair`].
    pub fn single_pair(&mut self, graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
        self.try_single_pair(graph, u, v)
            .expect("HP store failed during cached query")
    }

    /// Cached single-pair query, surfacing backend read errors.
    pub fn try_single_pair(
        &mut self,
        graph: &DiGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        if u == v {
            return single_pair_core(self.engine, graph, &mut self.ws, u, v);
        }
        let key = (u.0.min(v.0), u.0.max(v.0));
        if let Some(&idx) = self.map.get(&key) {
            self.stats.hits += 1;
            self.detach(idx);
            self.push_front(idx);
            return Ok(self.slots[idx as usize].value);
        }
        self.stats.misses += 1;
        let value = single_pair_core(self.engine, graph, &mut self.ws, u, v)?;
        // Insert, evicting the LRU tail at capacity.
        let idx = if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let old_key = self.slots[victim as usize].key;
            self.map.remove(&old_key);
            self.stats.evictions += 1;
            self.slots[victim as usize].key = key;
            self.slots[victim as usize].value = value;
            victim
        } else if let Some(reuse) = self.free.pop() {
            self.slots[reuse as usize].key = key;
            self.slots[reuse as usize].value = value;
            reuse
        } else {
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::two_cliques_bridge;

    const C: f64 = 0.6;

    fn setup() -> (DiGraph, SlingIndex) {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.05).with_seed(3)).unwrap();
        (g, idx)
    }

    #[test]
    fn cached_answers_match_uncached() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 64);
        for u in g.nodes() {
            for v in g.nodes() {
                let want = idx.single_pair(&g, u, v);
                // The cache canonicalizes the pair order, so a query made
                // in the other order can differ by float merge order.
                let got = cache.single_pair(&g, u, v);
                assert!((got - want).abs() < 1e-12, "{got} vs {want}");
                // Second read must hit and return the identical value.
                assert_eq!(cache.single_pair(&g, u, v), got);
            }
        }
        assert!(cache.stats().hits >= cache.stats().misses);
    }

    #[test]
    fn symmetric_keys_share_entries() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 8);
        let a = cache.single_pair(&g, NodeId(1), NodeId(2));
        let b = cache.single_pair(&g, NodeId(2), NodeId(1));
        assert_eq!(a, b);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 2);
        cache.single_pair(&g, NodeId(0), NodeId(1)); // miss {0,1}
        cache.single_pair(&g, NodeId(0), NodeId(2)); // miss {0,2}
        cache.single_pair(&g, NodeId(0), NodeId(1)); // hit  {0,1} -> MRU
        cache.single_pair(&g, NodeId(0), NodeId(3)); // miss, evicts {0,2}
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        cache.single_pair(&g, NodeId(0), NodeId(1)); // still resident
        assert_eq!(cache.stats().hits, 2);
        cache.single_pair(&g, NodeId(0), NodeId(2)); // was evicted -> miss
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn capacity_one_works() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 1);
        for _ in 0..3 {
            cache.single_pair(&g, NodeId(0), NodeId(1));
            cache.single_pair(&g, NodeId(2), NodeId(3));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().misses, 6, "capacity 1 thrashes");
        assert_eq!(cache.stats().evictions, 5);
    }

    #[test]
    fn self_pairs_bypass_cache() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 4);
        assert_eq!(cache.single_pair(&g, NodeId(2), NodeId(2)), 1.0);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn clear_resets_entries_not_counters() {
        let (g, idx) = setup();
        let mut cache = CachedQueries::new(&idx, 8);
        cache.single_pair(&g, NodeId(0), NodeId(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        // Re-query misses again (entry gone) and re-populates.
        cache.single_pair(&g, NodeId(0), NodeId(1));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_rate_math() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(stats.hit_rate(), 0.75);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
