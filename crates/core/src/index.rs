//! The SLING index: construction (§4.3–4.4, §5.2–5.3) and the query-side
//! plumbing shared by single-pair and single-source queries.

use sling_graph::{DiGraph, NodeId};

use crate::config::SlingConfig;
use crate::correction::estimate_dk;
use crate::enhance::{expand_marked, MarkArena};
use crate::error::SlingError;
use crate::hp::{HpArena, HpEntry};
use crate::local_update::{reverse_hp_all, HpTriple};
use crate::obs::{QueryTrace, StageNanos};
use crate::store::{EngineRef, EntryAccess, HpStore, RestoreKind, RunSource};
use crate::two_hop::{two_hop_into, TwoHopScratch};
use crate::walk::{task_rng, WalkEngine};

/// Construction statistics, reported by the benchmark harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Total √c-walk pairs drawn while estimating correction factors.
    pub dk_samples: u64,
    /// HP entries produced by Algorithm 2 before space reduction.
    pub entries_before_reduction: usize,
    /// HP entries actually stored.
    pub entries_stored: usize,
    /// Nodes whose step-1/2 entries were dropped (§5.2).
    pub reduced_nodes: usize,
    /// Entries marked for §5.3 on-the-fly expansion.
    pub marked_entries: usize,
}

/// The SLING index over a fixed graph.
///
/// Stores an approximate correction factor `d̃_k` per node and the packed
/// truncated hitting-probability sets `H(v)`. Queries take the graph by
/// reference (it is needed for §5.2 on-the-fly recomputation and for
/// Algorithm 6's propagation); callers must pass the same graph the index
/// was built on — a node/edge-count fingerprint is checked on load and in
/// debug builds.
#[derive(Clone, Debug)]
pub struct SlingIndex {
    pub(crate) config: SlingConfig,
    pub(crate) num_nodes: usize,
    pub(crate) num_edges: usize,
    pub(crate) d: Vec<f64>,
    pub(crate) hp: HpArena,
    /// `reduced[v]` ⇒ `H(v)` omits steps 1–2; recompute exactly at query
    /// time via Algorithm 5.
    pub(crate) reduced: Vec<bool>,
    /// §5.3 marks (empty arena when enhancement is off).
    pub(crate) marks: MarkArena,
    pub(crate) stats: BuildStats,
}

impl SlingIndex {
    /// Build the index serially (see [`crate::parallel`] for the
    /// multi-threaded builder, which produces an identical index for
    /// `threads = 1`).
    ///
    /// Respects every knob in `config`; cost is
    /// `O(m/θ + n·(µ̄ + ε_d)/ε_d² · log(n/δ))` as in Theorem 1.
    pub fn build(graph: &DiGraph, config: &SlingConfig) -> Result<Self, SlingError> {
        config.validate()?;
        if config.threads > 1 {
            return crate::parallel::build_parallel(graph, config);
        }
        let n = graph.num_nodes();
        let engine = WalkEngine::new(graph, config.c);
        let delta_d = config.delta_d(n);

        // Correction factors (Algorithm 1 / 4).
        let mut dk_samples = 0u64;
        let mut d = Vec::with_capacity(n);
        for k in graph.nodes() {
            let mut rng = task_rng(config.seed, k.0 as u64);
            let est = estimate_dk(
                graph,
                &engine,
                &mut rng,
                k,
                config.c,
                config.eps_d,
                delta_d,
                config.adaptive_dk,
            );
            dk_samples += est.samples;
            d.push(est.d);
        }

        // Hitting probabilities (Algorithm 2), gathered as triples and
        // regrouped by owner.
        let mut triples: Vec<HpTriple> = Vec::new();
        reverse_hp_all(graph, config.sqrt_c(), config.theta, &mut |t| {
            triples.push(t)
        });
        assemble(graph, config, d, triples, dk_samples)
    }

    /// Shared assembly: sort triples by owner, apply §5.2 reduction and
    /// §5.3 marking, produce the final index. Used by all builders.
    pub(crate) fn from_parts(
        graph: &DiGraph,
        config: &SlingConfig,
        d: Vec<f64>,
        triples: Vec<HpTriple>,
        dk_samples: u64,
    ) -> Result<Self, SlingError> {
        assemble(graph, config, d, triples, dk_samples)
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// Build statistics.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Number of nodes of the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Correction factor estimate `d̃_k`.
    pub fn correction_factor(&self, k: NodeId) -> f64 {
        self.d[k.index()]
    }

    /// All correction factors.
    pub fn correction_factors(&self) -> &[f64] {
        &self.d
    }

    /// Stored entries of `H(v)` (after space reduction; excludes the
    /// on-the-fly step-1/2 and enhancement entries).
    pub fn stored_entries(&self, v: NodeId) -> impl Iterator<Item = HpEntry> + '_ {
        self.hp.entries(v)
    }

    /// Whether §5.2 dropped the step-1/2 entries of `v`.
    pub fn is_reduced(&self, v: NodeId) -> bool {
        self.reduced[v.index()]
    }

    /// Estimated resident bytes of the index (Figure 4's space metric):
    /// HP arena + correction factors + reduction bitmap + marks.
    pub fn resident_bytes(&self) -> usize {
        self.hp.resident_bytes()
            + self.d.len() * 8
            + self.reduced.len()
            + self.marks.resident_bytes()
    }

    /// Materialize the *effective* entry list of `v` used by queries
    /// (see [`effective_entries_into`]). In-memory convenience wrapper,
    /// retained for the unit tests that inspect effective lists directly.
    #[cfg(test)]
    pub(crate) fn effective_entries(
        &self,
        graph: &DiGraph,
        v: NodeId,
        ws: &mut QueryWorkspace,
        which: Buf,
    ) {
        debug_assert_eq!(graph.num_nodes(), self.num_nodes, "wrong graph for index");
        effective_entries_into(self.engine_ref(), graph, v, ws, which)
            .expect("in-memory HP store cannot fail");
    }

    /// Internal engine view over the in-memory arena. The convenience
    /// API carries no restore cache — hold a
    /// [`crate::QueryEngine`]/[`crate::SharedEngine`] for memoized
    /// restores.
    pub(crate) fn engine_ref(&self) -> EngineRef<'_, HpArena> {
        EngineRef {
            store: &self.hp,
            config: &self.config,
            d: &self.d,
            reduced: &self.reduced,
            marks: &self.marks,
            restore_cache: None,
        }
    }
}

/// Materialize the *effective* entry list of `v` used by queries into the
/// selected workspace buffer: stored entries, plus exact step-1/2 entries
/// when `v` is reduced (§5.2, Algorithm 5), plus §5.3 expansion entries
/// when enhancement is on. Sorted by `(step, node)`. Generic over the
/// storage backend; allocation-free after workspace warm-up on every
/// backend.
pub(crate) fn effective_entries_into<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    v: NodeId,
    ws: &mut QueryWorkspace,
    which: Buf,
) -> Result<(), SlingError> {
    if e.reduced[v.index()] {
        // Stored = step 0 then steps >= 3; splice exact steps 1-2 in
        // between (disjoint step ranges keep the order sorted). The
        // stored run lands in the dedicated scratch so the two-hop splice
        // can build the output in order without a tail allocation.
        e.store.entries_into(v, &mut ws.stored)?;
        let out = match which {
            Buf::A => &mut ws.buf_a,
            Buf::B => &mut ws.buf_b,
        };
        out.clear();
        let split = ws
            .stored
            .iter()
            .position(|x| x.step > 0)
            .unwrap_or(ws.stored.len());
        out.extend_from_slice(&ws.stored[..split]);
        two_hop_into(graph, e.config.sqrt_c(), v, &mut ws.two_hop, out);
        out.extend_from_slice(&ws.stored[split..]);
    } else {
        let out = match which {
            Buf::A => &mut ws.buf_a,
            Buf::B => &mut ws.buf_b,
        };
        e.store.entries_into(v, out)?;
    }
    if e.config.enhance_accuracy && !e.marks.is_empty() {
        expand_marked(e, graph, v, ws, which)?;
    }
    Ok(())
}

/// Selector for the two entry buffers of a [`QueryWorkspace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Buf {
    A,
    B,
}

/// Where a restored effective list ended up (see [`resolve_restored`]).
pub(crate) enum RestoredList {
    /// Materialized into the selected workspace buffer (no cache on this
    /// engine ref — the bare `SlingIndex` path).
    Workspace,
    /// Served from (or freshly admitted to) the engine's
    /// [`crate::store::RestoreCache`]; borrow the list from the `Arc`.
    Shared(std::sync::Arc<Vec<HpEntry>>),
}

/// Produce the restored effective list of `v` (a node for which
/// [`EngineRef::restore_kind`] is `Full`, or any restoring node on the
/// materializing paths): a cache hit is a refcount bump,
/// a miss materializes through [`effective_entries_into`] and admits a
/// copy, and engines without a cache fall back to the plain workspace
/// materialization. All three produce the identical list.
pub(crate) fn resolve_restored<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    v: NodeId,
    ws: &mut QueryWorkspace,
    which: Buf,
) -> Result<RestoredList, SlingError> {
    if let Some(cache) = e.restore_cache {
        if let Some(hit) = cache.get(v) {
            return Ok(RestoredList::Shared(hit));
        }
        // Capture the epoch *before* restoring: if the cache is
        // invalidated while the restore runs, the tagged insert below is
        // dropped rather than admitting a list computed against retired
        // state.
        let epoch = cache.epoch();
        effective_entries_into(e, graph, v, ws, which)?;
        // Move, don't copy: the kernels read the returned Arc, never the
        // workspace buffer, and the next query clears the buffer before
        // reuse — so taking it avoids a second full-list memcpy on every
        // cache miss.
        let buf = match which {
            Buf::A => &mut ws.buf_a,
            Buf::B => &mut ws.buf_b,
        };
        let list = std::sync::Arc::new(std::mem::take(buf));
        cache.insert_tagged(v, std::sync::Arc::clone(&list), epoch);
        return Ok(RestoredList::Shared(list));
    }
    effective_entries_into(e, graph, v, ws, which)?;
    Ok(RestoredList::Workspace)
}

/// Length of the step-0 prefix of a stored run — the first index whose
/// step is `> 0`. Binary search over the access (runs are sorted by
/// `(step, node)`), so classifying a hub's huge list costs `O(log n)`
/// random-access decodes instead of a linear scan.
fn step_zero_prefix(access: &EntryAccess<'_>) -> usize {
    let (mut lo, mut hi) = (0usize, access.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if access.get(mid).step == 0 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Build the steps ≤ 2 head of a §5.2-reduced node into `out`: the
/// stored step-0 prefix (`access[..split]`) followed by the exact
/// Algorithm-5 steps 1–2. Byte-for-byte the `out[..head_len]` prefix
/// that [`effective_entries_into`] would produce for the same node.
fn build_restored_head<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    v: NodeId,
    access: &EntryAccess<'_>,
    split: usize,
    two_hop: &mut TwoHopScratch,
    out: &mut Vec<HpEntry>,
) {
    out.clear();
    for i in 0..split {
        out.push(access.get(i));
    }
    two_hop_into(graph, e.config.sqrt_c(), v, two_hop, out);
}

/// Resolve the streaming kernels' entry source for a node served
/// without [`resolve_restored`]: `kind` is `None`, or `TwoHopOnly` on an
/// engine with no [`RestoreCache`] (`Full` nodes — and, by the kernels'
/// hybrid policy, `TwoHopOnly` nodes on cache-equipped engines — go
/// through [`resolve_restored`], where a warm hub is one contiguous
/// cached list).
///
/// `None` nodes stream the backend run in place, exactly as before. For
/// `TwoHopOnly` nodes the stored run is borrowed once (into
/// `tail_scratch` only if the backend must copy), the steps ≤ 2 head is
/// recomputed into `head_buf`, and the steps ≥ 3 tail — the bulk of a
/// hub's list — is never copied.
pub(crate) fn resolve_stream_source<'s, S: HpStore>(
    e: EngineRef<'s, S>,
    graph: &DiGraph,
    v: NodeId,
    kind: RestoreKind,
    head_buf: &'s mut Vec<HpEntry>,
    tail_scratch: &'s mut Vec<HpEntry>,
    two_hop: &mut TwoHopScratch,
) -> Result<RunSource<'s>, SlingError> {
    debug_assert_ne!(
        kind,
        RestoreKind::Full,
        "Full restores must resolve through resolve_restored"
    );
    if kind == RestoreKind::None {
        return Ok(RunSource::Whole(e.store.entries_ref(v, head_buf)?));
    }
    debug_assert!(
        e.restore_cache.is_none(),
        "cache-equipped engines resolve TwoHopOnly through resolve_restored"
    );
    let access = e.store.entries_ref(v, tail_scratch)?;
    let split = step_zero_prefix(&access);
    build_restored_head(e, graph, v, &access, split, two_hop, head_buf);
    Ok(RunSource::Seg {
        head: head_buf,
        stored: access,
        split,
    })
}

/// Reusable buffers for query processing. One workspace per querying
/// thread; every query API has a `_with` variant taking `&mut` workspace
/// so hot loops (the benchmark harness, Algorithm-3-based single-source)
/// allocate nothing.
///
/// Since the streaming kernels consume backend entries in place, these
/// buffers are only written on the §5.2/§5.3 restore path and by
/// backends that must materialize (disk reads, block-straddling runs) —
/// but one query against a hub node can still grow a buffer to the
/// largest list in the index. Long-lived workers should call
/// [`QueryWorkspace::trim_excess`] between requests so hub-sized
/// capacity is not pinned per thread forever.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    pub(crate) buf_a: Vec<HpEntry>,
    pub(crate) buf_b: Vec<HpEntry>,
    pub(crate) two_hop: TwoHopScratch,
    /// Raw stored run of the node being materialized (reduced path).
    pub(crate) stored: Vec<HpEntry>,
    pub(crate) extras: Vec<HpEntry>,
    pub(crate) merged: Vec<HpEntry>,
    /// Per-stage tracer (disabled by default; see [`crate::obs::trace`]).
    pub(crate) trace: QueryTrace,
}

impl QueryWorkspace {
    /// Retention threshold of [`QueryWorkspace::trim_excess`]: buffers
    /// whose capacity exceeds this many entries are shrunk back to it
    /// (4096 entries ≈ 96 KiB per buffer). Comfortably above the
    /// `O(1/ε)` list lengths of typical configurations, so steady-state
    /// queries never re-allocate; only hub-outlier growth is reclaimed.
    pub const TRIM_THRESHOLD_ENTRIES: usize = 4096;

    /// Fresh workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Release excess retained capacity: any internal buffer that grew
    /// past [`QueryWorkspace::TRIM_THRESHOLD_ENTRIES`] entries is
    /// cleared and shrunk back to the threshold. The buffers are pure
    /// scratch between queries (every consumer clears or overwrites them
    /// before reading), and clearing first matters: `shrink_to` cannot
    /// reduce capacity below the retained `len`, and the buffers keep
    /// their last query's length until the next one reuses them. Only
    /// call between queries, never mid-query. A capacity check per
    /// buffer — effectively free when nothing outgrew the threshold —
    /// so long-lived server workers can call this after every request.
    pub fn trim_excess(&mut self) {
        for buf in [
            &mut self.buf_a,
            &mut self.buf_b,
            &mut self.stored,
            &mut self.extras,
            &mut self.merged,
        ] {
            if buf.capacity() > Self::TRIM_THRESHOLD_ENTRIES {
                buf.clear();
                buf.shrink_to(Self::TRIM_THRESHOLD_ENTRIES);
            }
        }
        self.two_hop.trim_excess(Self::TRIM_THRESHOLD_ENTRIES);
    }

    /// Enable or disable per-stage query tracing on this workspace.
    /// Disabled (the default) every trace hook in the kernels is one
    /// predictable branch — no clock reads; see [`crate::obs::trace`].
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// Whether per-stage tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Drain the stage breakdown accumulated since the last call (all
    /// zeros unless tracing is enabled).
    pub fn take_trace(&mut self) -> StageNanos {
        self.trace.take()
    }
}

fn assemble(
    graph: &DiGraph,
    config: &SlingConfig,
    d: Vec<f64>,
    mut triples: Vec<HpTriple>,
    dk_samples: u64,
) -> Result<SlingIndex, SlingError> {
    let n = graph.num_nodes();
    triples.sort_unstable_by_key(|t| (t.owner, t.step, t.target));
    let entries_before = triples.len();

    // §5.2: nodes with cheap exact two-hop recomputation drop steps 1-2.
    let eta_budget = config.gamma / config.theta;
    let mut reduced = vec![false; n];
    let mut reduced_nodes = 0usize;
    if config.space_reduction {
        for v in graph.nodes() {
            if (graph.two_hop_in_cost(v) as f64) <= eta_budget {
                reduced[v.index()] = true;
                reduced_nodes += 1;
            }
        }
    }

    let hp = HpArena::from_sorted_entries(
        n,
        triples
            .iter()
            .filter(|t| !(reduced[t.owner.index()] && (t.step == 1 || t.step == 2)))
            .map(|t| (t.owner.0, HpEntry::new(t.step, t.target, t.value))),
    );
    drop(triples);

    let marks = if config.enhance_accuracy {
        MarkArena::compute(graph, config, &hp)
    } else {
        MarkArena::empty(n)
    };

    let stats = BuildStats {
        dk_samples,
        entries_before_reduction: entries_before,
        entries_stored: hp.total_entries(),
        reduced_nodes,
        marked_entries: marks.total_marks(),
    };
    Ok(SlingIndex {
        config: config.clone(),
        num_nodes: n,
        num_edges: graph.num_edges(),
        d,
        hp,
        reduced,
        marks,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{exact_dk, exact_simrank};
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};

    fn cfg(eps: f64) -> SlingConfig {
        SlingConfig::from_epsilon(0.6, eps).with_seed(2024)
    }

    #[test]
    fn build_on_toy_graphs_succeeds() {
        for g in [
            cycle_graph(8),
            star_graph(6),
            complete_graph(5),
            two_cliques_bridge(4),
        ] {
            let idx = SlingIndex::build(&g, &cfg(0.05)).unwrap();
            assert_eq!(idx.num_nodes(), g.num_nodes());
            assert_eq!(idx.correction_factors().len(), g.num_nodes());
            assert!(idx.hp.validate());
        }
    }

    #[test]
    fn correction_factors_close_to_exact() {
        let g = two_cliques_bridge(4);
        let config = cfg(0.02);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let s = exact_simrank(&g, 0.6, 60);
        let exact = exact_dk(&g, 0.6, &s);
        for (k, (&est, &ex)) in idx.correction_factors().iter().zip(&exact).enumerate() {
            assert!(
                (est - ex).abs() <= config.eps_d + 1e-9,
                "node {k}: d̃={est} d={ex} eps_d={}",
                config.eps_d
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = two_cliques_bridge(5);
        let a = SlingIndex::build(&g, &cfg(0.05)).unwrap();
        let b = SlingIndex::build(&g, &cfg(0.05)).unwrap();
        assert_eq!(a.d, b.d);
        assert_eq!(a.hp, b.hp);
    }

    #[test]
    fn space_reduction_shrinks_storage_without_losing_entries_elsewhere() {
        let g = two_cliques_bridge(6);
        let with = SlingIndex::build(&g, &cfg(0.05)).unwrap();
        let without = SlingIndex::build(&g, &cfg(0.05).with_space_reduction(false)).unwrap();
        assert!(with.stats().reduced_nodes > 0);
        assert!(with.stats().entries_stored < without.stats().entries_stored);
        // Steps 0 and >= 3 must be identical.
        for v in g.nodes() {
            let a: Vec<_> = with
                .stored_entries(v)
                .filter(|e| e.step == 0 || e.step >= 3)
                .collect();
            let b: Vec<_> = without
                .stored_entries(v)
                .filter(|e| e.step == 0 || e.step >= 3)
                .collect();
            assert_eq!(a, b, "node {v:?}");
        }
    }

    #[test]
    fn effective_entries_restore_reduced_steps() {
        let g = two_cliques_bridge(6);
        let with = SlingIndex::build(&g, &cfg(0.05)).unwrap();
        let without = SlingIndex::build(&g, &cfg(0.05).with_space_reduction(false)).unwrap();
        let mut ws = QueryWorkspace::new();
        for v in g.nodes() {
            with.effective_entries(&g, v, &mut ws, Buf::A);
            // Effective list is sorted and its step-1/2 entries are exact,
            // hence >= the truncated stored values of the unreduced index.
            assert!(ws.buf_a.windows(2).all(|w| w[0].key() < w[1].key()));
            for e in without
                .stored_entries(v)
                .filter(|e| e.step == 1 || e.step == 2)
            {
                let found = ws
                    .buf_a
                    .iter()
                    .find(|x| x.key() == e.key())
                    .unwrap_or_else(|| panic!("entry {e:?} lost for {v:?}"));
                assert!(found.value >= e.value - 1e-12);
            }
        }
    }

    #[test]
    fn resident_bytes_reflects_reduction() {
        let g = two_cliques_bridge(6);
        let with = SlingIndex::build(&g, &cfg(0.05)).unwrap();
        let without = SlingIndex::build(&g, &cfg(0.05).with_space_reduction(false)).unwrap();
        assert!(with.resident_bytes() < without.resident_bytes());
    }

    #[test]
    fn trim_excess_releases_hub_sized_buffers() {
        let mut ws = QueryWorkspace::new();
        let big = QueryWorkspace::TRIM_THRESHOLD_ENTRIES * 4;
        // Simulate a hub query's aftermath: buffers still *hold* their
        // lists (len == capacity pressure), exactly the state a server
        // worker is in between requests.
        ws.buf_a
            .resize(big, crate::hp::HpEntry::new(0, NodeId(0), 1.0));
        ws.stored
            .resize(big, crate::hp::HpEntry::new(0, NodeId(0), 1.0));
        ws.merged.reserve(big);
        ws.trim_excess();
        for (name, buf) in [
            ("buf_a", &ws.buf_a),
            ("stored", &ws.stored),
            ("merged", &ws.merged),
        ] {
            assert!(
                buf.capacity() < 2 * QueryWorkspace::TRIM_THRESHOLD_ENTRIES,
                "{name} still pins {} entries of capacity",
                buf.capacity()
            );
        }
        // Trimming must not corrupt subsequent queries.
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg(0.05)).unwrap();
        let want = idx.single_pair(&g, NodeId(0), NodeId(1));
        let mut out = 0.0;
        for _ in 0..2 {
            out = idx.single_pair_with(&g, &mut ws, NodeId(0), NodeId(1));
            ws.trim_excess();
        }
        assert_eq!(out, want);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = cycle_graph(4);
        let mut config = cfg(0.05);
        config.theta *= 1e3;
        assert!(SlingIndex::build(&g, &config).is_err());
    }
}
