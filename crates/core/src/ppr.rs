//! Personalized PageRank (PPR), the Appendix-B comparison point.
//!
//! Appendix B of the paper relates SLING's hitting probabilities (HPs) to
//! personalized PageRank: a PPR walk follows *out*-edges and stops with
//! probability `1 − α` per step; `ppr(u, v)` is the probability the walk
//! from `u` *stops at* `v`, whereas `h⁽ℓ⁾(u, v)` is the probability a
//! √c-walk (over *in*-edges) *passes through* `v` at step ℓ. Algorithm 2
//! is the HP analogue of the local-update (reverse-push) algorithm for
//! PPR [Andersen et al., FOCS 2006]; this module implements the PPR side
//! so the relationship is testable in code:
//!
//! ```text
//! ppr_Gᵀ(u, v; α = √c) = (1 − √c) Σ_ℓ h⁽ℓ⁾(u, v)  +  √c Σ_ℓ h⁽ℓ⁾(u, v)·[v dangling-in]
//! ```
//!
//! (on the transpose graph the PPR walk traverses exactly the in-edges a
//! √c-walk does; stopping *at* `v` decomposes over the pass-through step
//! with the extra term for forced halts at in-dangling nodes).
//!
//! Dangling nodes (no out-neighbor) force the walk to halt in place, so
//! `ppr(u, v) = δ_{uv}` when `u` is dangling.

use std::collections::VecDeque;

use sling_graph::{DiGraph, NodeId};

/// Exact-ish PPR vector from `source` by forward power iteration, run
/// until the live walk mass drops below `tol`. `O((n + m) · log_α tol)`.
pub fn ppr_from_source(graph: &DiGraph, alpha: f64, source: NodeId, tol: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
    let n = graph.num_nodes();
    let mut result = vec![0.0; n];
    if source.index() >= n {
        return result;
    }
    let mut q = vec![0.0; n];
    let mut next = vec![0.0; n];
    q[source.index()] = 1.0;
    let mut live = 1.0;
    while live > tol {
        live = 0.0;
        for v in 0..n {
            let mass = q[v];
            if mass == 0.0 {
                continue;
            }
            let node = NodeId::from_index(v);
            let outs = graph.out_neighbors(node);
            if outs.is_empty() {
                // Stop-coin (1-α) plus forced halt (α): all mass stops here.
                result[v] += mass;
            } else {
                result[v] += (1.0 - alpha) * mass;
                let share = alpha * mass / outs.len() as f64;
                for &w in outs {
                    next[w.index()] += share;
                    live += share;
                }
            }
            q[v] = 0.0;
        }
        std::mem::swap(&mut q, &mut next);
    }
    // Residual live mass is dropped: result underestimates by <= tol.
    result
}

/// Approximate `ppr(·, target)` for **all** sources by reverse push
/// (local update), the algorithm Algorithm 2 descends from.
///
/// Maintains the linear-system invariant
/// `ppr(u, t) = p(u) + Σ_v r(v) · ppr(u, v)` and pushes any residual
/// above `theta`; on termination `0 ≤ ppr(u, t) − p(u) ≤ theta/(1−α)`
/// for every `u`. Runs in `O(Σ pushes · degree)` — local: only nodes
/// with nonzero estimate are ever touched.
pub fn ppr_to_target(graph: &DiGraph, alpha: f64, target: NodeId, theta: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
    assert!(theta > 0.0, "theta must be positive");
    let n = graph.num_nodes();
    let mut p = vec![0.0; n];
    if target.index() >= n {
        return p;
    }
    let mut r = vec![0.0; n];
    let mut queued = vec![false; n];
    let mut queue = VecDeque::new();
    r[target.index()] = 1.0 - alpha;
    queue.push_back(target);
    queued[target.index()] = true;
    while let Some(v) = queue.pop_front() {
        queued[v.index()] = false;
        let rho = r[v.index()];
        r[v.index()] = 0.0;
        if rho == 0.0 {
            continue;
        }
        // A dangling v carries an implicit self-loop (forced halts):
        // collapsing its geometric series amplifies both the settled mass
        // and the residual leaked to in-neighbors by 1/(1-α).
        let rho_eff = if graph.out_degree(v) == 0 {
            rho / (1.0 - alpha)
        } else {
            rho
        };
        p[v.index()] += rho_eff;
        // ppr(u, t) references u's out-neighbors, so residual flows to
        // the in-neighbors of v, scaled by *their* out-degrees.
        for &u in graph.in_neighbors(v) {
            let share = alpha * rho_eff / graph.out_degree(u) as f64;
            r[u.index()] += share;
            if r[u.index()] > theta && !queued[u.index()] {
                queued[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{
        barabasi_albert, complete_graph, cycle_graph, path_graph, star_graph,
    };
    use sling_graph::transform::transpose;

    const ALPHA: f64 = 0.5;

    #[test]
    fn ppr_from_source_is_a_distribution() {
        for g in [
            cycle_graph(6),
            complete_graph(5),
            barabasi_albert(50, 2, 3).unwrap(),
            path_graph(5), // has a dangling tail
        ] {
            for u in g.nodes() {
                let p = ppr_from_source(&g, ALPHA, u, 1e-12);
                let total: f64 = p.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "mass {total}");
                assert!(p.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn dangling_source_stops_in_place() {
        let g = star_graph(4); // leaves 1..3 -> hub 0; hub has out-degree 0
        let p = ppr_from_source(&g, ALPHA, NodeId(0), 1e-12);
        assert!((p[0] - 1.0).abs() < 1e-12);
        // A leaf stops at itself with 1-alpha, at the hub with alpha.
        let q = ppr_from_source(&g, ALPHA, NodeId(1), 1e-12);
        assert!((q[1] - (1.0 - ALPHA)).abs() < 1e-12);
        assert!((q[0] - ALPHA).abs() < 1e-12);
    }

    #[test]
    fn reverse_push_matches_power_iteration() {
        let theta = 1e-7;
        for g in [
            cycle_graph(7),
            complete_graph(5),
            star_graph(5),
            barabasi_albert(60, 2, 9).unwrap(),
        ] {
            for t in [NodeId(0), NodeId(2)] {
                let push = ppr_to_target(&g, ALPHA, t, theta);
                for u in g.nodes() {
                    let exact = ppr_from_source(&g, ALPHA, u, 1e-13)[t.index()];
                    let err = exact - push[u.index()];
                    assert!(
                        (-1e-9..=theta / (1.0 - ALPHA) + 1e-9).contains(&err),
                        "ppr({u:?},{t:?}): exact {exact} push {}",
                        push[u.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn reverse_push_is_local() {
        // On a long directed path toward the target, far nodes have
        // geometrically small ppr; a coarse theta must leave them at 0.
        let g = path_graph(50); // edges v -> v+1
        let p = ppr_to_target(&g, ALPHA, NodeId(49), 0.01);
        assert!(p[49] > 0.0);
        assert_eq!(p[0], 0.0, "push reached the whole path with coarse theta");
    }

    /// The Appendix-B identity: PPR on the transpose with α = √c equals
    /// the HP series (1-√c)·Σ_ℓ h + √c·Σ_ℓ h at in-dangling nodes.
    #[test]
    fn ppr_decomposes_over_hitting_probabilities() {
        let c: f64 = 0.6;
        let alpha = c.sqrt();
        for g in [
            star_graph(5),
            cycle_graph(6),
            barabasi_albert(30, 2, 4).unwrap(),
        ] {
            let gt = transpose(&g);
            let n = g.num_nodes();
            for u in g.nodes() {
                // Exact HP series by dense in-edge propagation: h_ℓ(k) =
                // Pr[√c-walk from u is at k at step ℓ].
                let mut h = vec![0.0; n];
                h[u.index()] = 1.0;
                let mut series = vec![0.0; n];
                for _ in 0..200 {
                    for (k, dst) in series.iter_mut().enumerate() {
                        *dst += h[k];
                    }
                    let mut next = vec![0.0; n];
                    for (k, &mass) in h.iter().enumerate() {
                        if mass == 0.0 {
                            continue;
                        }
                        let node = NodeId::from_index(k);
                        let inn = g.in_neighbors(node);
                        if inn.is_empty() {
                            continue;
                        }
                        let share = alpha * mass / inn.len() as f64;
                        for &w in inn {
                            next[w.index()] += share;
                        }
                    }
                    h = next;
                }
                let ppr = ppr_from_source(&gt, alpha, u, 1e-13);
                for v in g.nodes() {
                    let dangling_in = g.in_degree(v) == 0;
                    let expect = if dangling_in {
                        // (1-α)·Σh + α·Σh = Σh at forced-halt nodes.
                        series[v.index()]
                    } else {
                        (1.0 - alpha) * series[v.index()]
                    };
                    assert!(
                        (ppr[v.index()] - expect).abs() < 1e-6,
                        "({u:?},{v:?}): ppr {} vs hp-series {expect}",
                        ppr[v.index()]
                    );
                }
            }
        }
    }
}
