//! Algorithm 6 — single-source SimRank queries.
//!
//! Instead of running Algorithm 3 once per node (`O(n/ε)` but with a poor
//! constant) or pre-materializing inverted HP lists (doubling the index),
//! Algorithm 6 rebuilds the needed inverted lists *on the fly*: for each
//! step ℓ present in `H*(v_i)`, it seeds temporary scores
//! `ρ⁽⁰⁾(v_k) = h̃⁽ℓ⁾(v_i, v_k) · d̃_k` and propagates them ℓ steps
//! forward along out-edges (the same recurrence Algorithm 2 uses),
//! pruning scores `≤ (√c)ℓ · θ`. After ℓ rounds, `ρ⁽ℓ⁾(v_j)` is exactly
//! the step-ℓ term of Eq. (13) for the pair `(v_i, v_j)`, so summing over
//! ℓ yields every `s̃(v_i, ·)` in `O(m log² 1/ε)` total (Lemma 12).

use sling_graph::{DiGraph, NodeId};

use crate::error::SlingError;
use crate::index::{effective_entries_into, Buf, QueryWorkspace, SlingIndex};
use crate::store::{EngineRef, HpStore};

/// Reusable dense buffers for Algorithm 6. One per querying thread.
///
/// Invariant between queries: `cur`/`next` are all-zero (each query resets
/// exactly the entries it touched), so repeated queries cost no `O(n)`
/// clears beyond the first allocation.
#[derive(Debug, Default)]
pub struct SingleSourceWorkspace {
    cur: Vec<f64>,
    next: Vec<f64>,
    touched_cur: Vec<u32>,
    touched_next: Vec<u32>,
    pub(crate) query: QueryWorkspace,
}

impl SingleSourceWorkspace {
    /// Fresh workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn ensure(&mut self, n: usize) {
        if self.cur.len() < n {
            self.cur.resize(n, 0.0);
            self.next.resize(n, 0.0);
        }
    }

    /// Add `val` to the step-0 temporary score of node index `k`.
    pub(crate) fn seed(&mut self, k: usize, val: f64) {
        if self.cur[k] == 0.0 {
            self.touched_cur.push(k as u32);
        }
        self.cur[k] += val;
    }

    /// Run `rounds` forward-propagation rounds of Algorithm 6's inner
    /// loop: scores `≤ threshold` are pruned, survivors distribute
    /// `√c · val / |I(y)|` to each out-neighbor `y`.
    pub(crate) fn propagate(&mut self, graph: &DiGraph, sqrt_c: f64, threshold: f64, rounds: u16) {
        for _ in 0..rounds {
            for idx in 0..self.touched_cur.len() {
                let x = self.touched_cur[idx];
                let val = self.cur[x as usize];
                self.cur[x as usize] = 0.0;
                if val <= threshold {
                    continue;
                }
                for &y in graph.out_neighbors(NodeId(x)) {
                    let yi = y.index();
                    if self.next[yi] == 0.0 {
                        self.touched_next.push(y.0);
                    }
                    self.next[yi] += sqrt_c * val / graph.in_degree(y) as f64;
                }
            }
            self.touched_cur.clear();
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.touched_cur, &mut self.touched_next);
        }
    }

    /// Accumulate the surviving temporary scores into `out` and restore
    /// the all-zero buffer invariant.
    pub(crate) fn drain_into(&mut self, out: &mut [f64]) {
        for idx in 0..self.touched_cur.len() {
            let x = self.touched_cur[idx] as usize;
            out[x] += self.cur[x];
            self.cur[x] = 0.0;
        }
        self.touched_cur.clear();
    }

    /// Zero any leftover touched entries (used by early-terminating
    /// queries that abandon un-drained state).
    pub(crate) fn reset(&mut self) {
        for &x in &self.touched_cur {
            self.cur[x as usize] = 0.0;
        }
        self.touched_cur.clear();
        for &x in &self.touched_next {
            self.next[x as usize] = 0.0;
        }
        self.touched_next.clear();
    }
}

/// Algorithm 6 over any storage backend: read `H*(u)` once, then run the
/// forward propagation entirely on the in-memory graph and correction
/// factors. Allocation-free after workspace warm-up.
pub(crate) fn single_source_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut SingleSourceWorkspace,
    u: NodeId,
    out: &mut Vec<f64>,
) -> Result<(), SlingError> {
    let n = e.num_nodes();
    out.clear();
    out.resize(n, 0.0);
    ws.ensure(n);
    let sqrt_c = e.config.sqrt_c();
    let theta = e.config.theta;

    // Effective H*(u), sorted by (step, node): consume per-step runs.
    effective_entries_into(e, graph, u, &mut ws.query, Buf::A)?;
    let entries = std::mem::take(&mut ws.query.buf_a);
    let mut lo = 0usize;
    while lo < entries.len() {
        let step = entries[lo].step;
        let mut hi = lo;
        while hi < entries.len() && entries[hi].step == step {
            hi += 1;
        }
        // Seed ρ^(0)(v_k) = h̃^(ℓ)(u, v_k) · d̃_k  (entries have
        // distinct nodes within a step run), propagate ℓ rounds with
        // the scaled-down pruning threshold, then accumulate ρ^(ℓ)
        // into the result, restoring the all-zero invariant.
        for x in &entries[lo..hi] {
            let k = x.node.index();
            ws.seed(k, x.value * e.d[k]);
        }
        let threshold = sqrt_c.powi(step as i32) * theta;
        ws.propagate(graph, sqrt_c, threshold, step);
        ws.drain_into(out);
        lo = hi;
    }
    ws.query.buf_a = entries;

    for s in out.iter_mut() {
        *s = s.clamp(0.0, 1.0);
    }
    if e.config.exact_diagonal {
        out[u.index()] = 1.0;
    }
    Ok(())
}

impl SlingIndex {
    /// Single-source query from `u` (Algorithm 6): returns `s̃(u, v)` for
    /// every node `v`. Allocates a workspace; prefer
    /// [`SlingIndex::single_source_with`] in loops.
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Vec<f64> {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        self.single_source_with(graph, &mut ws, u, &mut out);
        out
    }

    /// Single-source query into a caller-provided output vector.
    pub fn single_source_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(graph.num_nodes(), self.num_nodes, "wrong graph for index");
        single_source_core(self.engine_ref(), graph, ws, u, out)
            .expect("in-memory HP store cannot fail");
    }

    /// Baseline single-source strategy: Algorithm 3 once per node —
    /// `O(n/ε)` asymptotically, but slower in practice than Algorithm 6
    /// (the paper's Figure 2 comparison).
    pub fn single_source_via_pairs(&self, graph: &DiGraph, u: NodeId) -> Vec<f64> {
        let mut ws = QueryWorkspace::new();
        graph
            .nodes()
            .map(|v| self.single_pair_with(graph, &mut ws, u, v))
            .collect()
    }

    /// Range-checked single-source query.
    pub fn try_single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        if u.index() >= self.num_nodes {
            return Err(SlingError::NodeOutOfRange {
                node: u.0,
                n: self.num_nodes as u32,
            });
        }
        Ok(self.single_source(graph, u))
    }

    /// Top-k most similar nodes to `u` (excluding `u` itself), ordered by
    /// descending score with node-id tie-breaking. Built on Algorithm 6.
    pub fn top_k(&self, graph: &DiGraph, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let scores = self.single_source(graph, u);
        let mut ranked: Vec<(NodeId, f64)> = scores
            .iter()
            .enumerate()
            .filter(|&(i, &s)| i != u.index() && s > 0.0)
            .map(|(i, &s)| (NodeId::from_index(i), s))
            .collect();
        ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::reference::exact_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};
    use sling_graph::DiGraph;

    const C: f64 = 0.6;

    fn build(g: &DiGraph, eps: f64) -> SlingIndex {
        SlingIndex::build(g, &SlingConfig::from_epsilon(C, eps).with_seed(31)).unwrap()
    }

    #[test]
    fn single_source_within_eps_of_truth() {
        let eps = 0.05;
        for g in [
            cycle_graph(8),
            star_graph(6),
            complete_graph(5),
            two_cliques_bridge(4),
        ] {
            let idx = build(&g, eps);
            let truth = exact_simrank(&g, C, 60);
            for u in g.nodes() {
                let scores = idx.single_source(&g, u);
                for v in g.nodes() {
                    let err = (scores[v.index()] - truth[u.index()][v.index()]).abs();
                    assert!(err <= eps, "({u:?},{v:?}): err {err}");
                }
            }
        }
    }

    #[test]
    fn algorithm6_consistent_with_pairwise_algorithm3() {
        // Both estimators share d̃ and H̃; Algorithm 6 additionally prunes
        // with the scaled threshold, so they agree within the extra
        // truncation budget 2√c·θ/((1-√c)(1-c)).
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        let sc = C.sqrt();
        let slack = 2.0 * sc * idx.config().theta / ((1.0 - sc) * (1.0 - C)) + 1e-9;
        for u in g.nodes() {
            let a6 = idx.single_source(&g, u);
            let a3 = idx.single_source_via_pairs(&g, u);
            for v in g.nodes() {
                let diff = (a6[v.index()] - a3[v.index()]).abs();
                assert!(diff <= slack, "({u:?},{v:?}): diff {diff} > {slack}");
            }
        }
    }

    #[test]
    fn workspace_reuse_keeps_buffers_clean() {
        let g = two_cliques_bridge(4);
        let idx = build(&g, 0.05);
        let mut ws = SingleSourceWorkspace::new();
        let mut first = Vec::new();
        idx.single_source_with(&g, &mut ws, NodeId(0), &mut first);
        // Buffers must be zeroed after a query...
        assert!(ws.cur.iter().all(|&x| x == 0.0));
        assert!(ws.next.iter().all(|&x| x == 0.0));
        // ...so the same query repeated gives identical results.
        let mut second = Vec::new();
        idx.single_source_with(&g, &mut ws, NodeId(0), &mut second);
        assert_eq!(first, second);
        // And a different query is unaffected by the first.
        let mut direct = Vec::new();
        idx.single_source_with(
            &g,
            &mut SingleSourceWorkspace::new(),
            NodeId(3),
            &mut direct,
        );
        let mut reused = Vec::new();
        idx.single_source_with(&g, &mut ws, NodeId(3), &mut reused);
        assert_eq!(direct, reused);
    }

    #[test]
    fn diagonal_and_range_handling() {
        let g = star_graph(5);
        let idx = build(&g, 0.1);
        let scores = idx.single_source(&g, NodeId(0));
        assert_eq!(scores[0], 1.0);
        assert!(idx.try_single_source(&g, NodeId(99)).is_err());
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        // Node 1 lives in clique {0..4}; its top matches must come from
        // the same clique.
        let top = idx.top_k(&g, NodeId(1), 3);
        assert_eq!(top.len(), 3);
        for (v, s) in &top {
            assert!(v.0 < 5, "cross-clique node {v:?} in top-3");
            assert!(*s > 0.0);
        }
        // Scores descending.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn cycle_single_source_is_indicator() {
        let g = cycle_graph(7);
        let idx = build(&g, 0.05);
        let scores = idx.single_source(&g, NodeId(3));
        for v in g.nodes() {
            let expect = if v == NodeId(3) { 1.0 } else { 0.0 };
            assert_eq!(scores[v.index()], expect);
        }
    }
}
