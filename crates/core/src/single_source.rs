//! Algorithm 6 — single-source SimRank queries.
//!
//! Instead of running Algorithm 3 once per node (`O(n/ε)` but with a poor
//! constant) or pre-materializing inverted HP lists (doubling the index),
//! Algorithm 6 rebuilds the needed inverted lists *on the fly*: for each
//! step ℓ present in `H*(v_i)`, it seeds temporary scores
//! `ρ⁽⁰⁾(v_k) = h̃⁽ℓ⁾(v_i, v_k) · d̃_k` and propagates them ℓ steps
//! forward along out-edges (the same recurrence Algorithm 2 uses),
//! pruning scores `≤ (√c)ℓ · θ`. After ℓ rounds, `ρ⁽ℓ⁾(v_j)` is exactly
//! the step-ℓ term of Eq. (13) for the pair `(v_i, v_j)`, so summing over
//! ℓ yields every `s̃(v_i, ·)` in `O(m log² 1/ε)` total (Lemma 12).

use sling_graph::{DiGraph, NodeId};

use crate::error::SlingError;
use crate::index::{
    effective_entries_into, resolve_restored, resolve_stream_source, Buf, QueryWorkspace,
    RestoredList, SlingIndex,
};
use crate::obs::{self, KernelCounters};
use crate::store::{
    with_source, EngineRef, EntryAccess, EntryRun, HpStore, RestoreKind, RunSource,
};

/// Reusable buffers for Algorithm 6. One per querying thread.
///
/// Split into the dense propagation state ([`DenseScores`]) and the
/// entry-list scratch ([`QueryWorkspace`]) so the streaming kernel can
/// borrow the entry run (which may live in `query.buf_a`) while mutating
/// the propagation buffers — disjoint fields, disjoint borrows.
#[derive(Debug, Default)]
pub struct SingleSourceWorkspace {
    pub(crate) dense: DenseScores,
    pub(crate) query: QueryWorkspace,
}

impl SingleSourceWorkspace {
    /// Fresh workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the retained capacity of the growable scratch buffers (see
    /// [`QueryWorkspace::trim_excess`]). The `O(n)` dense score arrays
    /// and frontier bitsets are kept — they are sized by the graph, not
    /// by the largest query seen — but the entry buffers shrink back to
    /// the retention threshold after a hub-sized query.
    pub fn trim_excess(&mut self) {
        self.query.trim_excess();
        self.dense.trim_excess();
    }

    /// Enable or disable per-stage query tracing (see
    /// [`QueryWorkspace::set_trace_enabled`]).
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.query.set_trace_enabled(enabled);
    }

    /// Whether per-stage tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.query.trace_enabled()
    }

    /// Drain the stage breakdown accumulated since the last call.
    pub fn take_trace(&mut self) -> crate::obs::StageNanos {
        self.query.take_trace()
    }
}

/// Upper bound on the degrees covered by the reciprocal table in
/// [`DenseScores`]: 8 KiB of graph-independent constants.
const INV_DEGREE_TABLE: usize = 1024;

/// Frontier membership for one dense score array: a bitset with a
/// touched-word watermark range. Marking is branchless (`or` + two
/// predictable range updates) — no per-edge compare-and-push — and
/// iteration recovers members in **ascending node order** by scanning
/// `bits[lo..=hi]` and peeling set bits, so the frontier walk is
/// deterministic regardless of the order contributions arrived in.
#[derive(Debug)]
struct Frontier {
    bits: Vec<u64>,
    /// First/last word index holding a set bit; `lo > hi` means empty.
    lo: usize,
    hi: usize,
}

impl Default for Frontier {
    fn default() -> Self {
        Self {
            bits: Vec::new(),
            lo: usize::MAX,
            hi: 0,
        }
    }
}

impl Frontier {
    fn ensure(&mut self, words: usize) {
        if self.bits.len() < words {
            self.bits.resize(words, 0);
        }
    }

    /// Mark node index `i` as touched. Idempotent, so callers scatter
    /// unconditionally instead of testing the score slot first.
    #[inline(always)]
    fn set(&mut self, i: usize) {
        let w = i >> 6;
        self.bits[w] |= 1u64 << (i & 63);
        if w < self.lo {
            self.lo = w;
        }
        if w > self.hi {
            self.hi = w;
        }
    }

    #[inline]
    fn clear_marks(&mut self) {
        self.lo = usize::MAX;
        self.hi = 0;
    }

    /// Zero every tracked slot of `vals` and empty the frontier.
    fn clear_tracked(&mut self, vals: &mut [f64]) {
        if self.lo <= self.hi {
            for wi in self.lo..=self.hi {
                let mut w = self.bits[wi];
                if w == 0 {
                    continue;
                }
                self.bits[wi] = 0;
                while w != 0 {
                    let x = (wi << 6) | w.trailing_zeros() as usize;
                    w &= w - 1;
                    vals[x] = 0.0;
                }
            }
        }
        self.clear_marks();
    }
}

/// Dense forward-propagation state of Algorithm 6.
///
/// Invariant between queries: `cur`/`next` are all-zero and the
/// [`Frontier`] bitsets empty (each query resets exactly the entries it
/// touched), so repeated queries cost no `O(n)` clears beyond the first
/// allocation.
#[derive(Debug, Default)]
pub(crate) struct DenseScores {
    pub(crate) cur: Vec<f64>,
    pub(crate) next: Vec<f64>,
    front_cur: Frontier,
    front_next: Frontier,
    /// Staging buffer of `(destination, increment)` pairs for the tiled
    /// propagation rounds (see [`DenseScores::propagate`]); capacity is
    /// bounded by [`DenseScores::PROPAGATE_TILE`].
    staged: Vec<(u32, f64)>,
    /// `inv_deg[d] = 1/d` for small `d` — graph-independent, so it can
    /// never go stale across graphs. Turns the per-edge division of the
    /// propagation inner loop into a multiply-accumulate.
    inv_deg: Vec<f64>,
}

impl DenseScores {
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.cur.len() < n {
            self.cur.resize(n, 0.0);
            self.next.resize(n, 0.0);
        }
        let words = n.div_ceil(64);
        self.front_cur.ensure(words);
        self.front_next.ensure(words);
        if self.inv_deg.is_empty() {
            self.inv_deg = (0..INV_DEGREE_TABLE)
                .map(|d| if d == 0 { 0.0 } else { 1.0 / d as f64 })
                .collect();
        }
    }

    /// Add `val` to the step-0 temporary score of node index `k`.
    #[inline]
    pub(crate) fn seed(&mut self, k: usize, val: f64) {
        self.cur[k] += val;
        self.front_cur.set(k);
    }

    /// `1 / |I(y)|` — a table load for the small degrees that dominate
    /// real graphs, one division otherwise. Replacing the per-edge
    /// division shifts each contribution by at most one ulp relative to
    /// dividing directly; every backend and every query path shares this
    /// code, so cross-backend bit-equality is unaffected.
    #[inline(always)]
    fn inv_in_degree(&self, graph: &DiGraph, y: NodeId) -> f64 {
        let deg = graph.in_degree(y);
        if deg < self.inv_deg.len() {
            self.inv_deg[deg]
        } else {
            1.0 / deg as f64
        }
    }

    /// Contributions staged per flush of the tiled propagation: a ~24 KiB
    /// tile of `(destination, increment)` pairs, small enough to stay in
    /// L1/L2 while the scatter into `next` walks it.
    const PROPAGATE_TILE: usize = 2048;

    /// Below this node count the dense `cur`/`next` arrays (≤ 1 MiB
    /// combined) are cache-resident, so the scatter misses tiling exists
    /// to hide never happen and the staging detour is pure overhead; the
    /// round then runs the direct loop. Both sweeps are bit-identical
    /// (pinned by `tiled_propagation_matches_direct_bitwise`), so the
    /// dispatch is purely a performance choice.
    const PROPAGATE_TILING_MIN_NODES: usize = 1 << 16;

    /// Run `rounds` forward-propagation rounds of Algorithm 6's inner
    /// loop: scores `≤ threshold` are pruned; a survivor `x` distributes
    /// `√c · ρ(x) / |I(y)|` to each out-neighbor `y`. The per-survivor
    /// scale `√c · ρ(x)` is hoisted and the division is a reciprocal
    /// multiply; the frontier walks in ascending node order via the
    /// [`Frontier`] bitsets. Dispatches between the direct and the tiled
    /// sweep on dense-array size
    /// ([`DenseScores::PROPAGATE_TILING_MIN_NODES`]); the two produce
    /// bit-identical scores and frontiers.
    pub(crate) fn propagate(&mut self, graph: &DiGraph, sqrt_c: f64, threshold: f64, rounds: u16) {
        if self.cur.len() < Self::PROPAGATE_TILING_MIN_NODES {
            self.propagate_direct(graph, sqrt_c, threshold, rounds);
        } else {
            self.propagate_tiled(graph, sqrt_c, threshold, rounds);
        }
    }

    /// The untiled sweep: each contribution is scattered into `next` as
    /// soon as it is generated. Fastest when `next` stays cache-resident.
    fn propagate_direct(&mut self, graph: &DiGraph, sqrt_c: f64, threshold: f64, rounds: u16) {
        let mut swept = 0u64;
        for _ in 0..rounds {
            let (lo, hi) = (self.front_cur.lo, self.front_cur.hi);
            if lo > hi {
                break; // empty frontier: remaining rounds are no-ops
            }
            swept += (hi - lo + 1) as u64;
            self.front_cur.clear_marks();
            for wi in lo..=hi {
                let mut w = self.front_cur.bits[wi];
                if w == 0 {
                    continue;
                }
                self.front_cur.bits[wi] = 0;
                while w != 0 {
                    let x = (wi << 6) | w.trailing_zeros() as usize;
                    w &= w - 1;
                    let val = self.cur[x];
                    self.cur[x] = 0.0;
                    if val <= threshold {
                        continue;
                    }
                    let scale = sqrt_c * val;
                    for &y in graph.out_neighbors(NodeId(x as u32)) {
                        let inc = scale * self.inv_in_degree(graph, y);
                        self.next[y.index()] += inc;
                        self.front_next.set(y.index());
                    }
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.front_cur, &mut self.front_next);
        }
        KernelCounters::bump_by(&obs::KERNEL.frontier_words, swept);
    }

    /// The **tiled** sweep: contributions are first *gathered* into the
    /// staging buffer — a tight loop over the contiguous CSR neighbor run
    /// touching only `graph` and the reciprocal table — and the random
    /// *scatter* into the dense `next` array runs over one cache-resident
    /// tile at a time ([`DenseScores::PROPAGATE_TILE`] pairs), so the
    /// frontier sweep stops interleaving sequential neighbor reads with
    /// dense-array misses. Staging order equals generation order and the
    /// flush applies pairs in staging order, so the per-slot FP
    /// accumulation order is exactly the direct loop's, and frontier
    /// marking is order-free — the tiling is bit-invisible (pinned by
    /// `tiled_propagation_matches_direct_bitwise`).
    fn propagate_tiled(&mut self, graph: &DiGraph, sqrt_c: f64, threshold: f64, rounds: u16) {
        let mut swept = 0u64;
        for _ in 0..rounds {
            debug_assert!(self.staged.is_empty());
            let (lo, hi) = (self.front_cur.lo, self.front_cur.hi);
            if lo > hi {
                break; // empty frontier: remaining rounds are no-ops
            }
            swept += (hi - lo + 1) as u64;
            self.front_cur.clear_marks();
            for wi in lo..=hi {
                let mut w = self.front_cur.bits[wi];
                if w == 0 {
                    continue;
                }
                self.front_cur.bits[wi] = 0;
                while w != 0 {
                    let x = (wi << 6) | w.trailing_zeros() as usize;
                    w &= w - 1;
                    let val = self.cur[x];
                    self.cur[x] = 0.0;
                    if val <= threshold {
                        continue;
                    }
                    let scale = sqrt_c * val;
                    for &y in graph.out_neighbors(NodeId(x as u32)) {
                        let inc = scale * self.inv_in_degree(graph, y);
                        self.staged.push((y.0, inc));
                        if self.staged.len() == Self::PROPAGATE_TILE {
                            self.flush_staged();
                        }
                    }
                }
            }
            self.flush_staged();
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.front_cur, &mut self.front_next);
        }
        KernelCounters::bump_by(&obs::KERNEL.frontier_words, swept);
    }

    /// Scatter the staged `(destination, increment)` tile into `next`,
    /// in staging order (bit-identical accumulation — see
    /// [`DenseScores::propagate`]).
    #[inline]
    fn flush_staged(&mut self) {
        for &(y, inc) in &self.staged {
            self.next[y as usize] += inc;
            self.front_next.set(y as usize);
        }
        self.staged.clear();
    }

    /// Accumulate the surviving temporary scores into `out` and restore
    /// the all-zero buffer invariant.
    pub(crate) fn drain_into(&mut self, out: &mut [f64]) {
        if self.front_cur.lo <= self.front_cur.hi {
            for wi in self.front_cur.lo..=self.front_cur.hi {
                let mut w = self.front_cur.bits[wi];
                if w == 0 {
                    continue;
                }
                self.front_cur.bits[wi] = 0;
                while w != 0 {
                    let x = (wi << 6) | w.trailing_zeros() as usize;
                    w &= w - 1;
                    out[x] += self.cur[x];
                    self.cur[x] = 0.0;
                }
            }
        }
        self.front_cur.clear_marks();
    }

    /// Zero any leftover touched entries (used by early-terminating
    /// queries that abandon un-drained state).
    pub(crate) fn reset(&mut self) {
        self.front_cur.clear_tracked(&mut self.cur);
        self.front_next.clear_tracked(&mut self.next);
    }

    fn trim_excess(&mut self) {
        // The frontier bitsets are graph-sized (`n/64` words), like the
        // dense arrays they track — nothing query-sized to shrink.
    }
}

/// Algorithm 6 over any storage backend, **streaming**: `H*(u)` is read
/// once — directly from backend-owned storage when no §5.2/§5.3 rewrite
/// applies — then the forward propagation runs entirely on the in-memory
/// graph and correction factors. Allocation-free after workspace warm-up.
pub(crate) fn single_source_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut SingleSourceWorkspace,
    u: NodeId,
    out: &mut Vec<f64>,
) -> Result<(), SlingError> {
    single_source_with_cutoff(e, graph, ws, u, None, false, out).map(|_| ())
}

/// Algorithm 6 through the **materializing reference path**: the
/// effective entry list is always copied into the workspace first (the
/// pre-streaming kernel). Kept callable so benchmarks can measure the
/// zero-copy gap and tests can assert bit-equality with the streaming
/// kernel.
pub(crate) fn single_source_materialized_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut SingleSourceWorkspace,
    u: NodeId,
    out: &mut Vec<f64>,
) -> Result<(), SlingError> {
    single_source_with_cutoff(e, graph, ws, u, None, true, out).map(|_| ())
}

/// The shared Algorithm 6 driver: seed and propagate `H*(u)`'s step runs
/// in ascending step order, skipping runs `ℓ ≥ cutoff` (no restriction
/// when `cutoff` is `None`). `materialize` forces the copying reference
/// path. Returns the residual bound `c^cutoff / (1-c)` when truncation
/// happened, else 0.
pub(crate) fn single_source_with_cutoff<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut SingleSourceWorkspace,
    u: NodeId,
    cutoff: Option<u16>,
    materialize: bool,
    out: &mut Vec<f64>,
) -> Result<f64, SlingError> {
    let n = e.num_nodes();
    out.clear();
    out.resize(n, 0.0);
    ws.dense.ensure(n);
    let kind = e.restore_kind(u);
    let t_restore = ws.query.trace.timer();
    let resolved = if materialize {
        // Reference path: plain workspace materialization, no cache.
        effective_entries_into(e, graph, u, &mut ws.query, Buf::A)?;
        Some(RestoredList::Workspace)
    } else if kind == RestoreKind::Full
        || (kind == RestoreKind::TwoHopOnly && e.restore_cache.is_some())
    {
        // Same policy as the pair kernel: with a RestoreCache attached,
        // reduced sources serve the cached full list (warm = zero
        // backend traffic); only cache-less engines stream two-segment.
        Some(resolve_restored(e, graph, u, &mut ws.query, Buf::A)?)
    } else {
        None
    };
    ws.query.trace.add_restore(t_restore);
    // Disjoint-field split: the entry run may borrow `query.buf_a`
    // (restored heads/lists, disk scratch) and `query.stored` (tail
    // scratch) while `dense` mutates freely.
    let SingleSourceWorkspace { dense, query } = ws;
    let QueryWorkspace {
        buf_a,
        stored,
        two_hop,
        ..
    } = query;
    let t_fetch = query.trace.timer();
    let source = match resolved {
        Some(RestoredList::Workspace) => RunSource::Whole(EntryAccess::Slice(buf_a)),
        Some(RestoredList::Shared(list)) => RunSource::Shared(list),
        None => resolve_stream_source(e, graph, u, kind, buf_a, stored, two_hop)?,
    };
    query.trace.add_entry_fetch(t_fetch);
    let t_propagate = query.trace.timer();
    let truncated = with_source!(&source, |run| seed_step_runs(
        e, graph, dense, run, cutoff, out
    ));
    drop(source);
    query.trace.add_propagate(t_propagate);
    dense.reset();

    for s in out.iter_mut() {
        *s = s.clamp(0.0, 1.0);
    }
    if e.config.exact_diagonal {
        out[u.index()] = 1.0;
    }
    Ok(match cutoff {
        Some(cut) if truncated => e.config.c.powi(cut as i32) / (1.0 - e.config.c),
        _ => 0.0,
    })
}

/// Consume `H*(u)` per step run: seed `ρ⁽⁰⁾(v_k) = h̃⁽ℓ⁾(u, v_k) · d̃_k`
/// from the run's node/value columns (entries have distinct nodes within
/// a step run), propagate ℓ rounds with the scaled-down pruning
/// threshold, and accumulate `ρ⁽ℓ⁾` into `out`, restoring the all-zero
/// invariant. Returns whether a cutoff truncated the run sequence.
fn seed_step_runs<S: HpStore, R: EntryRun>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    dense: &mut DenseScores,
    run: R,
    cutoff: Option<u16>,
    out: &mut [f64],
) -> bool {
    let sqrt_c = e.config.sqrt_c();
    let theta = e.config.theta;
    let len = run.len();
    let mut lo = 0usize;
    while lo < len {
        let step = run.key(lo).0;
        let mut hi = lo + 1;
        while hi < len && run.key(hi).0 == step {
            hi += 1;
        }
        if let Some(cut) = cutoff {
            if step >= cut {
                return true;
            }
        }
        for i in lo..hi {
            let k = run.key(i).1 as usize;
            dense.seed(k, run.value(i) * e.d[k]);
        }
        let threshold = sqrt_c.powi(step as i32) * theta;
        dense.propagate(graph, sqrt_c, threshold, step);
        dense.drain_into(out);
        lo = hi;
    }
    false
}

impl SlingIndex {
    /// Single-source query from `u` (Algorithm 6): returns `s̃(u, v)` for
    /// every node `v`. Allocates a workspace; prefer
    /// [`SlingIndex::single_source_with`] in loops.
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Vec<f64> {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        self.single_source_with(graph, &mut ws, u, &mut out);
        out
    }

    /// Single-source query into a caller-provided output vector.
    pub fn single_source_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(graph.num_nodes(), self.num_nodes, "wrong graph for index");
        single_source_core(self.engine_ref(), graph, ws, u, out)
            .expect("in-memory HP store cannot fail");
    }

    /// Baseline single-source strategy: Algorithm 3 once per node —
    /// `O(n/ε)` asymptotically, but slower in practice than Algorithm 6
    /// (the paper's Figure 2 comparison).
    pub fn single_source_via_pairs(&self, graph: &DiGraph, u: NodeId) -> Vec<f64> {
        let mut ws = QueryWorkspace::new();
        graph
            .nodes()
            .map(|v| self.single_pair_with(graph, &mut ws, u, v))
            .collect()
    }

    /// Range-checked single-source query.
    pub fn try_single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        if u.index() >= self.num_nodes {
            return Err(SlingError::NodeOutOfRange {
                node: u.0,
                n: self.num_nodes as u32,
            });
        }
        Ok(self.single_source(graph, u))
    }

    /// Top-k most similar nodes to `u` (excluding `u` itself), ordered by
    /// descending score with node-id tie-breaking. Built on Algorithm 6.
    pub fn top_k(&self, graph: &DiGraph, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let scores = self.single_source(graph, u);
        let mut ranked: Vec<(NodeId, f64)> = scores
            .iter()
            .enumerate()
            .filter(|&(i, &s)| i != u.index() && s > 0.0)
            .map(|(i, &s)| (NodeId::from_index(i), s))
            .collect();
        ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::reference::exact_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};
    use sling_graph::DiGraph;

    const C: f64 = 0.6;

    fn build(g: &DiGraph, eps: f64) -> SlingIndex {
        SlingIndex::build(g, &SlingConfig::from_epsilon(C, eps).with_seed(31)).unwrap()
    }

    #[test]
    fn single_source_within_eps_of_truth() {
        let eps = 0.05;
        for g in [
            cycle_graph(8),
            star_graph(6),
            complete_graph(5),
            two_cliques_bridge(4),
        ] {
            let idx = build(&g, eps);
            let truth = exact_simrank(&g, C, 60);
            for u in g.nodes() {
                let scores = idx.single_source(&g, u);
                for v in g.nodes() {
                    let err = (scores[v.index()] - truth[u.index()][v.index()]).abs();
                    assert!(err <= eps, "({u:?},{v:?}): err {err}");
                }
            }
        }
    }

    #[test]
    fn algorithm6_consistent_with_pairwise_algorithm3() {
        // Both estimators share d̃ and H̃; Algorithm 6 additionally prunes
        // with the scaled threshold, so they agree within the extra
        // truncation budget 2√c·θ/((1-√c)(1-c)).
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        let sc = C.sqrt();
        let slack = 2.0 * sc * idx.config().theta / ((1.0 - sc) * (1.0 - C)) + 1e-9;
        for u in g.nodes() {
            let a6 = idx.single_source(&g, u);
            let a3 = idx.single_source_via_pairs(&g, u);
            for v in g.nodes() {
                let diff = (a6[v.index()] - a3[v.index()]).abs();
                assert!(diff <= slack, "({u:?},{v:?}): diff {diff} > {slack}");
            }
        }
    }

    #[test]
    fn workspace_reuse_keeps_buffers_clean() {
        let g = two_cliques_bridge(4);
        let idx = build(&g, 0.05);
        let mut ws = SingleSourceWorkspace::new();
        let mut first = Vec::new();
        idx.single_source_with(&g, &mut ws, NodeId(0), &mut first);
        // Buffers must be zeroed after a query...
        assert!(ws.dense.cur.iter().all(|&x| x == 0.0));
        assert!(ws.dense.next.iter().all(|&x| x == 0.0));
        // ...so the same query repeated gives identical results.
        let mut second = Vec::new();
        idx.single_source_with(&g, &mut ws, NodeId(0), &mut second);
        assert_eq!(first, second);
        // And a different query is unaffected by the first.
        let mut direct = Vec::new();
        idx.single_source_with(
            &g,
            &mut SingleSourceWorkspace::new(),
            NodeId(3),
            &mut direct,
        );
        let mut reused = Vec::new();
        idx.single_source_with(&g, &mut ws, NodeId(3), &mut reused);
        assert_eq!(direct, reused);
    }

    /// Algorithm 6's streaming seed path must be bit-identical to the
    /// materializing reference kernel across the §5.2 × §5.3 matrix
    /// under both restore policies: the bare-index path (no
    /// RestoreCache) seeds from a two-segment §5.2 view, the engine
    /// path from cached full lists (second pass hits the cache).
    #[test]
    fn two_segment_single_source_matches_materialized_across_restore_matrix() {
        use sling_graph::generators::barabasi_albert;
        let g = barabasi_albert(300, 3, 11).unwrap();
        for (sr, enh) in [(true, false), (true, true)] {
            let config = SlingConfig::from_epsilon(C, 0.1)
                .with_seed(9)
                .with_space_reduction(sr)
                .with_enhancement(enh);
            let idx = SlingIndex::build(&g, &config).unwrap();
            assert!(idx.stats.reduced_nodes > 0);
            let engine = idx.query_engine();
            let mut ws = SingleSourceWorkspace::new();
            let mut ws2 = SingleSourceWorkspace::new();
            let (mut streamed, mut materialized) = (Vec::new(), Vec::new());
            for _pass in 0..2 {
                for u in [0u32, 1, 13, 144, 299] {
                    engine
                        .single_source_with(&g, &mut ws, NodeId(u), &mut streamed)
                        .unwrap();
                    engine
                        .single_source_materialized_with(&g, &mut ws2, NodeId(u), &mut materialized)
                        .unwrap();
                    for v in 0..streamed.len() {
                        assert_eq!(
                            streamed[v].to_bits(),
                            materialized[v].to_bits(),
                            "sr={sr} enh={enh} s({u},{v})"
                        );
                    }
                    // Bare index: no RestoreCache, so a reduced source
                    // seeds from the two-segment streaming view.
                    let bare = idx.single_source(&g, NodeId(u));
                    for v in 0..bare.len() {
                        assert_eq!(
                            bare[v].to_bits(),
                            materialized[v].to_bits(),
                            "sr={sr} enh={enh} two-segment s({u},{v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn diagonal_and_range_handling() {
        let g = star_graph(5);
        let idx = build(&g, 0.1);
        let scores = idx.single_source(&g, NodeId(0));
        assert_eq!(scores[0], 1.0);
        assert!(idx.try_single_source(&g, NodeId(99)).is_err());
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        // Node 1 lives in clique {0..4}; its top matches must come from
        // the same clique.
        let top = idx.top_k(&g, NodeId(1), 3);
        assert_eq!(top.len(), 3);
        for (v, s) in &top {
            assert!(v.0 < 5, "cross-clique node {v:?} in top-3");
            assert!(*s > 0.0);
        }
        // Scores descending.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    /// The dispatch between the direct and the tiled sweep must be
    /// unobservable: identical frontier bitsets and bit-identical dense
    /// scores, so `propagate`'s size gate is purely a performance choice.
    #[test]
    fn tiled_propagation_matches_direct_bitwise() {
        use sling_graph::generators::barabasi_albert;
        // Big enough that one round stages more than PROPAGATE_TILE
        // contributions, forcing at least one mid-frontier flush.
        let g = barabasi_albert(900, 4, 17).unwrap();
        let n = g.num_nodes();
        let sqrt_c = C.sqrt();
        for (threshold, rounds) in [(0.0, 1u16), (1e-4, 3), (1e-2, 5)] {
            let mut tiled = DenseScores::default();
            let mut direct = DenseScores::default();
            tiled.ensure(n);
            direct.ensure(n);
            // Seed a spread of nodes with assorted magnitudes, including
            // some the threshold prunes.
            for k in 0..n {
                if k % 3 == 0 {
                    tiled.seed(k, 1.0 / (k as f64 + 2.0));
                    direct.seed(k, 1.0 / (k as f64 + 2.0));
                }
            }
            // Call the sweeps directly: the fixture sits below the size
            // gate, so `propagate` itself would run both operands
            // through the direct path and the pin would be vacuous.
            tiled.propagate_tiled(&g, sqrt_c, threshold, rounds);
            direct.propagate_direct(&g, sqrt_c, threshold, rounds);
            // Identical frontier (it feeds the next round's iteration)
            // and bit-identical dense scores.
            assert_eq!(
                tiled.front_cur.bits, direct.front_cur.bits,
                "threshold {threshold}"
            );
            let tiled_bits: Vec<u64> = tiled.cur.iter().map(|v| v.to_bits()).collect();
            let direct_bits: Vec<u64> = direct.cur.iter().map(|v| v.to_bits()).collect();
            assert_eq!(tiled_bits, direct_bits, "threshold {threshold}");
        }
    }

    #[test]
    fn cycle_single_source_is_indicator() {
        let g = cycle_graph(7);
        let idx = build(&g, 0.05);
        let scores = idx.single_source(&g, NodeId(3));
        for v in g.nodes() {
            let expect = if v == NodeId(3) { 1.0 } else { 0.0 };
            assert_eq!(scores[v.index()], expect);
        }
    }
}
