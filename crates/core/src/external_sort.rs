//! Bounded-memory external sort of hitting-probability triples (§5.4).
//!
//! The out-of-core index builder streams Algorithm 2's triples through
//! this sorter: triples accumulate in a memory buffer of at most
//! `buffer_bytes`; full buffers are sorted and spilled to temporary run
//! files; a final k-way merge (binary heap over run heads) yields the
//! globally `(owner, step, target)`-sorted stream the index assembler
//! consumes. Total IO is one write and one read per triple plus the merge
//! — the `O((n/ε) log(n/ε))` access pattern described in §5.4.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};
use sling_graph::NodeId;

use crate::local_update::HpTriple;

/// Bytes per encoded triple: owner u32 + step u16 + target u32 + value f64.
pub const RECORD_BYTES: usize = 18;

fn encode(t: &HpTriple, out: &mut Vec<u8>) {
    out.put_u32_le(t.owner.0);
    out.put_u16_le(t.step);
    out.put_u32_le(t.target.0);
    out.put_f64_le(t.value);
}

fn decode(mut buf: &[u8]) -> HpTriple {
    let owner = NodeId(buf.get_u32_le());
    let step = buf.get_u16_le();
    let target = NodeId(buf.get_u32_le());
    let value = buf.get_f64_le();
    HpTriple {
        owner,
        step,
        target,
        value,
    }
}

#[inline]
fn key(t: &HpTriple) -> (u32, u16, u32) {
    (t.owner.0, t.step, t.target.0)
}

/// Accumulates triples, spilling sorted runs to `dir` whenever the
/// in-memory buffer exceeds `buffer_bytes`.
pub struct ExternalSorter {
    dir: PathBuf,
    capacity: usize,
    buf: Vec<HpTriple>,
    runs: Vec<PathBuf>,
    scratch: Vec<u8>,
}

impl ExternalSorter {
    /// New sorter spilling into `dir` (created if missing). `buffer_bytes`
    /// is a floor of one record.
    pub fn new(dir: impl AsRef<Path>, buffer_bytes: usize) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let capacity = (buffer_bytes / RECORD_BYTES).max(1);
        Ok(ExternalSorter {
            dir,
            capacity,
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            runs: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Add one triple, spilling a run if the buffer is full.
    pub fn push(&mut self, t: HpTriple) -> io::Result<()> {
        self.buf.push(t);
        if self.buf.len() >= self.capacity {
            self.spill()?;
        }
        Ok(())
    }

    /// Number of run files spilled so far (observable for tests and the
    /// Figure 10 harness).
    pub fn runs_spilled(&self) -> usize {
        self.runs.len()
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable_by_key(key);
        let path = self.dir.join(format!("run-{}.bin", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        self.scratch.clear();
        for t in &self.buf {
            encode(t, &mut self.scratch);
        }
        w.write_all(&self.scratch)?;
        w.flush()?;
        self.scratch.clear();
        self.buf.clear();
        self.runs.push(path);
        Ok(())
    }

    /// Finish: spill the tail and return the k-way merged, globally sorted
    /// stream. Run files are deleted when the iterator is dropped.
    pub fn into_sorted_iter(mut self) -> io::Result<MergeIter> {
        self.spill()?;
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            readers.push(RunReader::open(path)?);
        }
        let mut heap = BinaryHeap::with_capacity(readers.len());
        for (i, reader) in readers.iter_mut().enumerate() {
            if let Some(t) = reader.next_record()? {
                heap.push(Reverse((key(&t), i, HeapTriple(t))));
            }
        }
        Ok(MergeIter {
            readers,
            heap,
            paths: std::mem::take(&mut self.runs),
        })
    }
}

/// Wrapper giving `HpTriple` the `Ord` the heap needs; ordering is fully
/// determined by the key tuple that precedes it, so comparisons on the
/// payload never actually run.
struct HeapTriple(HpTriple);

impl PartialEq for HeapTriple {
    fn eq(&self, other: &Self) -> bool {
        key(&self.0) == key(&other.0)
    }
}
impl Eq for HeapTriple {}
impl PartialOrd for HeapTriple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTriple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        key(&self.0).cmp(&key(&other.0))
    }
}

struct RunReader {
    reader: BufReader<File>,
    record: [u8; RECORD_BYTES],
}

impl RunReader {
    fn open(path: &Path) -> io::Result<Self> {
        Ok(RunReader {
            reader: BufReader::with_capacity(1 << 16, File::open(path)?),
            record: [0u8; RECORD_BYTES],
        })
    }

    fn next_record(&mut self) -> io::Result<Option<HpTriple>> {
        match self.reader.read_exact(&mut self.record) {
            Ok(()) => Ok(Some(decode(&self.record))),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Globally sorted triple stream produced by [`ExternalSorter`].
pub struct MergeIter {
    readers: Vec<RunReader>,
    heap: BinaryHeap<Reverse<((u32, u16, u32), usize, HeapTriple)>>,
    paths: Vec<PathBuf>,
}

impl Iterator for MergeIter {
    type Item = io::Result<HpTriple>;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse((_, src, t)) = self.heap.pop()?;
        match self.readers[src].next_record() {
            Ok(Some(next)) => self.heap.push(Reverse((key(&next), src, HeapTriple(next)))),
            Ok(None) => {}
            Err(e) => return Some(Err(e)),
        }
        Some(Ok(t.0))
    }
}

impl Drop for MergeIter {
    fn drop(&mut self) {
        for path in &self.paths {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sling_extsort_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn random_triples(count: usize, seed: u64) -> Vec<HpTriple> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count)
            .map(|_| HpTriple {
                owner: NodeId(rng.random_range(0..500)),
                step: rng.random_range(0..16),
                target: NodeId(rng.random_range(0..500)),
                value: rng.random::<f64>(),
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = HpTriple {
            owner: NodeId(123),
            step: 7,
            target: NodeId(u32::MAX),
            value: 0.123456789,
        };
        let mut buf = Vec::new();
        encode(&t, &mut buf);
        assert_eq!(buf.len(), RECORD_BYTES);
        assert_eq!(decode(&buf), t);
    }

    #[test]
    fn sorts_across_many_runs() {
        let dir = tmpdir("many");
        let triples = random_triples(5000, 1);
        // Tiny buffer: forces dozens of spill files.
        let mut sorter = ExternalSorter::new(&dir, 128 * RECORD_BYTES).unwrap();
        for &t in &triples {
            sorter.push(t).unwrap();
        }
        assert!(sorter.runs_spilled() > 10);
        let merged: Vec<HpTriple> = sorter
            .into_sorted_iter()
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let mut expected = triples;
        expected.sort_by_key(key);
        assert_eq!(merged.len(), expected.len());
        assert!(merged.windows(2).all(|w| key(&w[0]) <= key(&w[1])));
        // Same multiset (values ride along correctly).
        let mut got = merged;
        got.sort_by(|a, b| {
            key(a)
                .cmp(&key(b))
                .then(a.value.partial_cmp(&b.value).unwrap())
        });
        expected.sort_by(|a, b| {
            key(a)
                .cmp(&key(b))
                .then(a.value.partial_cmp(&b.value).unwrap())
        });
        assert_eq!(got, expected);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn single_run_fits_in_buffer() {
        let dir = tmpdir("single");
        let mut sorter = ExternalSorter::new(&dir, 1 << 20).unwrap();
        for t in random_triples(100, 2) {
            sorter.push(t).unwrap();
        }
        assert_eq!(sorter.runs_spilled(), 0);
        let merged: Vec<_> = sorter
            .into_sorted_iter()
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(merged.len(), 100);
        assert!(merged.windows(2).all(|w| key(&w[0]) <= key(&w[1])));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_input_yields_empty_stream() {
        let dir = tmpdir("empty");
        let sorter = ExternalSorter::new(&dir, 1024).unwrap();
        assert_eq!(sorter.into_sorted_iter().unwrap().count(), 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn run_files_are_cleaned_up() {
        let dir = tmpdir("cleanup");
        let mut sorter = ExternalSorter::new(&dir, RECORD_BYTES).unwrap();
        for t in random_triples(64, 3) {
            sorter.push(t).unwrap();
        }
        let iter = sorter.into_sorted_iter().unwrap();
        drop(iter);
        let leftovers = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftovers, 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
