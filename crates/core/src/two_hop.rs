//! Algorithm 5 — exact step-1 and step-2 hitting probabilities, computed
//! on the fly (§5.2 space reduction).
//!
//! A √c-walk from `v` hits `v_x` at step 1 with probability exactly
//! `√c / |I(v)|` for each in-neighbor `v_x`, and hits `v_y` at step 2 with
//! probability `Σ_{v_x ∈ I(v), v_y ∈ I(v_x)} √c · h⁽¹⁾(v, v_x) / |I(v_x)|`.
//! Both are exact (no truncation), so substituting them for the stored
//! step-1/2 entries can only improve accuracy. The computation costs
//! `η(v) = |I(v)| + Σ_{x∈I(v)} |I(x)|` operations, which the index builder
//! only allows when `η(v) ≤ γ/θ = O(1/ε)`, preserving the `O(1/ε)` query
//! bound.

use sling_graph::{DiGraph, NodeId};

use crate::hp::HpEntry;

/// Reusable scratch for [`two_hop_into`]; avoids per-query allocation.
///
/// The step-2 accumulator is a **dense scratch**: an `n`-sized value
/// array plus the list of touched node ids. Profiling the §5.2 restore
/// (the dominant cost of the first, uncached hub query — see
/// `BENCH_query.json`) showed the old per-contribution `FxHashMap`
/// insert paying a hash + probe on every two-hop edge; the dense pass
/// is one indexed add per edge, and only the touched slots are sorted
/// and zeroed afterwards, so the per-query cost stays `O(η(v) +
/// |touched| log |touched|)` regardless of `n`.
#[derive(Debug, Default)]
pub struct TwoHopScratch {
    /// Per-node step-2 accumulator, zero outside `touched` between
    /// calls. Contributions are strictly positive, so `0.0` doubles as
    /// the "untouched" sentinel.
    dense: Vec<f64>,
    /// Node ids with a nonzero accumulation this call.
    touched: Vec<u32>,
}

impl TwoHopScratch {
    /// Retention ceiling of the dense accumulator: 2²¹ slots = 16 MiB
    /// per workspace. Deliberately much larger than the entry-buffer
    /// trim threshold — the array is `n`-sized *by design* (not
    /// hub-outlier growth), so trimming it at the entry threshold would
    /// free and re-zero it after every server session on any graph with
    /// more than a few thousand nodes, turning the warm scratch into an
    /// `O(n)` memset per session. Only graphs too big to pin 16 MiB per
    /// worker pay the re-zero on their next uncached restore.
    const DENSE_TRIM_SLOTS: usize = 1 << 21;

    /// Drop the touched list if a past restore grew its *capacity* past
    /// `threshold` entries (it tracks the two-hop neighborhood, so it
    /// obeys the same hub-outlier rule as the workspace entry buffers),
    /// and the dense accumulator only past
    /// [`TwoHopScratch::DENSE_TRIM_SLOTS`].
    pub(crate) fn trim_excess(&mut self, threshold: usize) {
        if self.dense.capacity() > Self::DENSE_TRIM_SLOTS {
            self.dense = Vec::new();
        }
        if self.touched.capacity() > threshold {
            self.touched = Vec::new();
        }
    }
}

/// Compute the exact step-1 and step-2 HPs from `v`, appending them to
/// `out` in `(step, node)` order.
pub fn two_hop_into(
    graph: &DiGraph,
    sqrt_c: f64,
    v: NodeId,
    scratch: &mut TwoHopScratch,
    out: &mut Vec<HpEntry>,
) {
    let inn = graph.in_neighbors(v);
    if inn.is_empty() {
        return;
    }
    let h1 = sqrt_c / inn.len() as f64;
    // Step 1: in-neighbor lists are sorted, so emission order is sorted.
    for &x in inn {
        out.push(HpEntry::new(1, x, h1));
    }
    // Step 2: flat gather over the two-hop in-paths into the dense
    // scratch. Per-target contributions accumulate in visit order —
    // exactly the order the map-based accumulator added them — so the
    // sums are bit-identical to the previous kernel.
    if scratch.dense.len() < graph.num_nodes() {
        scratch.dense.resize(graph.num_nodes(), 0.0);
    }
    scratch.touched.clear();
    for &x in inn {
        let inn2 = graph.in_neighbors(x);
        if inn2.is_empty() {
            continue;
        }
        let contrib = sqrt_c * h1 / inn2.len() as f64;
        debug_assert!(contrib > 0.0, "step-2 contributions are positive");
        for &y in inn2 {
            let slot = &mut scratch.dense[y.index()];
            if *slot == 0.0 {
                scratch.touched.push(y.0);
            }
            *slot += contrib;
        }
    }
    scratch.touched.sort_unstable();
    for &node in &scratch.touched {
        out.push(HpEntry::new(2, NodeId(node), scratch.dense[node as usize]));
        scratch.dense[node as usize] = 0.0;
    }
}

/// Allocating convenience wrapper around [`two_hop_into`].
pub fn two_hop_entries(graph: &DiGraph, sqrt_c: f64, v: NodeId) -> Vec<HpEntry> {
    let mut scratch = TwoHopScratch::default();
    let mut out = Vec::new();
    two_hop_into(graph, sqrt_c, v, &mut scratch, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::exact_hp_to_target;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};
    use sling_graph::DiGraph;

    const C: f64 = 0.6;

    fn check_against_reference(g: &DiGraph, v: NodeId) {
        let entries = two_hop_entries(g, C.sqrt(), v);
        // Reference: h^(ℓ)(v, t) for every target t.
        for e in &entries {
            let exact = exact_hp_to_target(g, C, e.node, 2);
            let h = exact[e.step as usize][v.index()];
            assert!(
                (e.value - h).abs() < 1e-12,
                "step {} node {:?}: got {} want {h}",
                e.step,
                e.node,
                e.value
            );
        }
        // Completeness: every nonzero exact step-1/2 HP appears.
        for target in g.nodes() {
            let exact = exact_hp_to_target(g, C, target, 2);
            for step in [1u16, 2] {
                let h = exact[step as usize][v.index()];
                if h > 1e-15 {
                    assert!(
                        entries.iter().any(|e| e.step == step && e.node == target),
                        "missing ({step}, {target:?}) with h={h}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_reference_on_assorted_graphs() {
        check_against_reference(&two_cliques_bridge(4), NodeId(0));
        check_against_reference(&complete_graph(5), NodeId(3));
        check_against_reference(&cycle_graph(7), NodeId(2));
        check_against_reference(&star_graph(6), NodeId(0));
    }

    #[test]
    fn dangling_node_has_no_entries() {
        let g = star_graph(4);
        assert!(two_hop_entries(&g, C.sqrt(), NodeId(2)).is_empty());
    }

    #[test]
    fn output_is_sorted_by_step_then_node() {
        let g = two_cliques_bridge(5);
        let e = two_hop_entries(&g, C.sqrt(), NodeId(1));
        assert!(e.windows(2).all(|w| w[0].key() < w[1].key()));
    }

    #[test]
    fn step_mass_sums_to_sqrt_c_powers_when_no_dangling() {
        // On a complete graph no walk dies, so step-ℓ mass is (√c)^ℓ.
        let g = complete_graph(6);
        let e = two_hop_entries(&g, C.sqrt(), NodeId(0));
        let m1: f64 = e.iter().filter(|x| x.step == 1).map(|x| x.value).sum();
        let m2: f64 = e.iter().filter(|x| x.step == 2).map(|x| x.value).sum();
        assert!((m1 - C.sqrt()).abs() < 1e-12);
        assert!((m2 - C).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = two_cliques_bridge(4);
        let mut scratch = TwoHopScratch::default();
        let mut a = Vec::new();
        two_hop_into(&g, C.sqrt(), NodeId(0), &mut scratch, &mut a);
        let mut b = Vec::new();
        two_hop_into(&g, C.sqrt(), NodeId(0), &mut scratch, &mut b);
        assert_eq!(a, b);
    }
}
