//! SimRank similarity joins over the SLING index.
//!
//! The paper's §8 surveys similarity joins — "all pairs of nodes whose
//! SimRank scores are among the largest k, or are larger than a predefined
//! threshold" — as a major SimRank query class. The SLING index answers
//! both without any additional precomputation:
//!
//! * [`SlingIndex::threshold_join`] — every unordered pair `{u, v}` with
//!   `s̃(u, v) ≥ tau`.
//! * [`SlingIndex::top_k_join`] — the `k` unordered pairs with the highest
//!   scores.
//!
//! Two execution strategies are provided:
//!
//! * **PerSource** runs Algorithm 6 once per node — `O(n · m log² 1/ε)`
//!   worst case but with tiny constants and `O(n)` transient memory.
//! * **InvertedLists** materializes the inverted HP lists `L(k, ℓ)` of §6
//!   for *all* nodes at once and accumulates Eq. (13) per pair:
//!   `s̃(u, v) = Σ_{ℓ,k} h̃⁽ℓ⁾(u,k) · d̃_k · h̃⁽ℓ⁾(v,k)`. Cost is
//!   `Σ_{ℓ,k} |L(k,ℓ)|²`, which on sparse similarity structures is far
//!   below `n` single-source queries, but degrades on graphs with hub
//!   nodes whose inverted lists are long (the classic quadratic blow-up of
//!   inverted-list joins). Transient memory is one entry per nonzero pair.
//!
//! The strategies differ in which approximation they evaluate, exactly as
//! the paper's two query algorithms do: **InvertedLists** evaluates the
//! Algorithm-3 sum (stored `H*` entries on both sides), while
//! **PerSource** evaluates Algorithm 6 (forward propagation with the
//! scaled pruning threshold). Both carry the index's ε guarantee, and they
//! agree pairwise within the extra truncation budget
//! `2√c·θ/((1-√c)(1-c))` — the same slack that separates Algorithms 3 and
//! 6 on single-source queries. Tests pin them to each other within that
//! slack and to the power-method ground truth within ε.

use sling_graph::{DiGraph, NodeId};

use crate::error::SlingError;
use crate::index::{effective_entries_into, Buf, QueryWorkspace, SlingIndex};
use crate::single_source::{single_source_core, SingleSourceWorkspace};
use crate::store::{EngineRef, HpStore};

/// How a join materializes pair scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// One Algorithm-6 query per node; `O(n)` transient memory.
    PerSource,
    /// Global inverted-list accumulation of Eq. (13); memory proportional
    /// to the number of nonzero pairs.
    InvertedLists,
}

/// One joined pair: `u < v` and its approximate SimRank score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinPair {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// `s̃(u, v)`, clamped to `[0, 1]`.
    pub score: f64,
}

fn sort_pairs(pairs: &mut [JoinPair]) {
    pairs.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.u.cmp(&b.u))
            .then(a.v.cmp(&b.v))
    });
}

impl SlingIndex {
    /// All unordered pairs `{u, v}` (`u ≠ v`) with `s̃(u, v) ≥ tau`,
    /// ordered by descending score (ties: ascending `(u, v)`).
    ///
    /// `tau` must be positive: a zero threshold would ask for all `n(n-1)/2`
    /// pairs, which is never the intent of a similarity join.
    ///
    /// ```
    /// use sling_core::join::JoinStrategy;
    /// use sling_core::{SlingConfig, SlingIndex};
    /// use sling_graph::generators::two_cliques_bridge;
    ///
    /// let g = two_cliques_bridge(4);
    /// let index = SlingIndex::build(&g, &SlingConfig::from_epsilon(0.6, 0.05)).unwrap();
    /// let pairs = index.threshold_join(&g, 0.1, JoinStrategy::PerSource).unwrap();
    /// assert!(pairs.iter().all(|p| p.score >= 0.1 && p.u < p.v));
    /// ```
    pub fn threshold_join(
        &self,
        graph: &DiGraph,
        tau: f64,
        strategy: JoinStrategy,
    ) -> Result<Vec<JoinPair>, SlingError> {
        threshold_join_core(self.engine_ref(), graph, tau, strategy)
    }

    /// The `k` unordered pairs with the largest scores (self-pairs
    /// excluded, matching the paper's top-k evaluation protocol), ordered
    /// by descending score.
    ///
    /// `prune` is a score threshold below which pairs can be discarded
    /// early; pass the smallest score still of interest (e.g. the paper's
    /// Figure 7 protocol only ranks pairs with non-negligible scores) or
    /// a tiny positive value for an exact global top-k over nonzero pairs.
    pub fn top_k_join(
        &self,
        graph: &DiGraph,
        k: usize,
        prune: f64,
        strategy: JoinStrategy,
    ) -> Result<Vec<JoinPair>, SlingError> {
        let mut pairs = self.threshold_join(graph, prune.max(f64::MIN_POSITIVE), strategy)?;
        pairs.truncate(k);
        Ok(pairs)
    }
}

/// Similarity join over any storage backend (see
/// [`SlingIndex::threshold_join`] for the contract).
pub(crate) fn threshold_join_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    tau: f64,
    strategy: JoinStrategy,
) -> Result<Vec<JoinPair>, SlingError> {
    if tau.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(SlingError::InvalidConfig(format!(
            "threshold join requires tau > 0 (got {tau})"
        )));
    }
    let mut pairs = match strategy {
        JoinStrategy::PerSource => join_per_source(e, graph, tau)?,
        JoinStrategy::InvertedLists => join_inverted(e, graph, tau)?,
    };
    sort_pairs(&mut pairs);
    Ok(pairs)
}

fn join_per_source<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    tau: f64,
) -> Result<Vec<JoinPair>, SlingError> {
    let mut ws = SingleSourceWorkspace::new();
    let mut scores = Vec::new();
    let mut out = Vec::new();
    for u in graph.nodes() {
        single_source_core(e, graph, &mut ws, u, &mut scores)?;
        for (i, &s) in scores.iter().enumerate().skip(u.index() + 1) {
            if s >= tau {
                out.push(JoinPair {
                    u,
                    v: NodeId::from_index(i),
                    score: s,
                });
            }
        }
    }
    Ok(out)
}

fn join_inverted<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    tau: f64,
) -> Result<Vec<JoinPair>, SlingError> {
    // 1. Materialize every node's effective entry list as global
    //    triples (step, k, owner, value), then group by (step, k) to
    //    obtain the inverted lists L(k, ℓ) of §6.
    let mut triples: Vec<(u16, u32, u32, f64)> = Vec::new();
    let mut ws = QueryWorkspace::new();
    for v in graph.nodes() {
        effective_entries_into(e, graph, v, &mut ws, Buf::A)?;
        for x in &ws.buf_a {
            triples.push((x.step, x.node.0, v.0, x.value));
        }
    }
    triples.sort_unstable_by_key(|&(step, k, owner, _)| (step, k, owner));

    // 2. Accumulate Eq. (13) per unordered pair across all lists.
    let mut acc: sling_graph::FxHashMap<(u32, u32), f64> = sling_graph::FxHashMap::default();
    let mut lo = 0;
    while lo < triples.len() {
        let (step, k, _, _) = triples[lo];
        let mut hi = lo;
        while hi < triples.len() && triples[hi].0 == step && triples[hi].1 == k {
            hi += 1;
        }
        let dk = e.d[k as usize];
        if dk > 0.0 {
            let list = &triples[lo..hi];
            for (i, &(_, _, a, ha)) in list.iter().enumerate() {
                let weighted = ha * dk;
                for &(_, _, b, hb) in &list[i + 1..] {
                    // owners within a list are strictly ascending.
                    *acc.entry((a, b)).or_insert(0.0) += weighted * hb;
                }
            }
        }
        lo = hi;
    }

    // 3. Threshold, clamp, done.
    Ok(acc
        .into_iter()
        .filter(|&(_, s)| s.min(1.0) >= tau)
        .map(|((a, b), s)| JoinPair {
            u: NodeId(a),
            v: NodeId(b),
            score: s.clamp(0.0, 1.0),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::reference::exact_simrank;
    use sling_graph::generators::{
        barabasi_albert, complete_graph, cycle_graph, star_graph, two_cliques_bridge,
    };

    const C: f64 = 0.6;

    fn build(g: &DiGraph, eps: f64) -> SlingIndex {
        SlingIndex::build(g, &SlingConfig::from_epsilon(C, eps).with_seed(23)).unwrap()
    }

    #[test]
    fn rejects_nonpositive_threshold() {
        let g = cycle_graph(4);
        let idx = build(&g, 0.1);
        assert!(idx
            .threshold_join(&g, 0.0, JoinStrategy::PerSource)
            .is_err());
        assert!(idx
            .threshold_join(&g, -0.5, JoinStrategy::InvertedLists)
            .is_err());
    }

    #[test]
    fn strategies_agree_within_truncation_slack() {
        let tau = 0.01;
        for g in [
            two_cliques_bridge(4),
            star_graph(7),
            complete_graph(5),
            barabasi_albert(60, 2, 3).unwrap(),
        ] {
            let idx = build(&g, 0.05);
            let sc = C.sqrt();
            let slack = 2.0 * sc * idx.config().theta / ((1.0 - sc) * (1.0 - C)) + 1e-9;
            let to_map = |pairs: Vec<JoinPair>| -> sling_graph::FxHashMap<(u32, u32), f64> {
                pairs
                    .into_iter()
                    .map(|p| ((p.u.0, p.v.0), p.score))
                    .collect()
            };
            let a = to_map(
                idx.threshold_join(&g, tau, JoinStrategy::PerSource)
                    .unwrap(),
            );
            let b = to_map(
                idx.threshold_join(&g, tau, JoinStrategy::InvertedLists)
                    .unwrap(),
            );
            for (key, &sa) in &a {
                match b.get(key) {
                    Some(&sb) => assert!((sa - sb).abs() <= slack, "{key:?}: {sa} vs {sb}"),
                    // A pair found by only one strategy must sit within
                    // the slack band around the threshold.
                    None => assert!(sa < tau + slack, "{key:?}: {sa} missing from inverted"),
                }
            }
            for (key, &sb) in &b {
                if !a.contains_key(key) {
                    assert!(sb < tau + slack, "{key:?}: {sb} missing from per-source");
                }
            }
        }
    }

    #[test]
    fn join_matches_ground_truth_pair_set() {
        let g = two_cliques_bridge(4);
        let eps = 0.05;
        let idx = build(&g, eps);
        let truth = exact_simrank(&g, C, 60);
        let tau = 0.15;
        let joined = idx
            .threshold_join(&g, tau, JoinStrategy::InvertedLists)
            .unwrap();
        let found: std::collections::BTreeSet<(u32, u32)> =
            joined.iter().map(|p| (p.u.0, p.v.0)).collect();
        for u in 0..g.num_nodes() {
            for v in (u + 1)..g.num_nodes() {
                let s = truth[u][v];
                // Pairs clearly above tau must be found; pairs clearly
                // below must not be (the ±eps band is allowed either way).
                if s >= tau + eps {
                    assert!(
                        found.contains(&(u as u32, v as u32)),
                        "missing ({u},{v}): s={s}"
                    );
                }
                if s < tau - eps {
                    assert!(
                        !found.contains(&(u as u32, v as u32)),
                        "spurious ({u},{v}): s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn join_scores_within_eps_of_truth() {
        let g = star_graph(6);
        let eps = 0.05;
        let idx = build(&g, eps);
        let truth = exact_simrank(&g, C, 60);
        for p in idx
            .threshold_join(&g, 0.01, JoinStrategy::PerSource)
            .unwrap()
        {
            let t = truth[p.u.index()][p.v.index()];
            assert!((p.score - t).abs() <= eps, "{p:?} truth {t}");
        }
    }

    #[test]
    fn results_ordered_and_deduplicated() {
        let g = barabasi_albert(80, 3, 5).unwrap();
        let idx = build(&g, 0.1);
        let joined = idx
            .threshold_join(&g, 0.02, JoinStrategy::InvertedLists)
            .unwrap();
        assert!(joined.windows(2).all(|w| w[0].score >= w[1].score));
        let mut keys: Vec<(u32, u32)> = joined.iter().map(|p| (p.u.0, p.v.0)).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate pairs emitted");
        assert!(joined.iter().all(|p| p.u < p.v), "pairs not canonicalized");
    }

    #[test]
    fn top_k_join_takes_best_pairs() {
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        let all = idx
            .threshold_join(&g, 0.001, JoinStrategy::PerSource)
            .unwrap();
        let top3 = idx
            .top_k_join(&g, 3, 0.001, JoinStrategy::PerSource)
            .unwrap();
        assert_eq!(&all[..3], &top3[..]);
        // Within-clique pairs dominate cross-clique ones.
        for p in &top3 {
            assert_eq!(p.u.0 < 5, p.v.0 < 5, "cross-clique pair {p:?} in top 3");
        }
    }

    #[test]
    fn cycle_has_no_joined_pairs() {
        // On a directed cycle every off-diagonal SimRank score is 0.
        let g = cycle_graph(6);
        let idx = build(&g, 0.05);
        for strategy in [JoinStrategy::PerSource, JoinStrategy::InvertedLists] {
            assert!(idx.threshold_join(&g, 0.01, strategy).unwrap().is_empty());
        }
    }
}
