//! The process-wide metrics registry: named counters, gauges, and
//! log-bucketed histograms with a stable Prometheus-text renderer and a
//! fixed-key-order JSON snapshot.
//!
//! Registration (cold path) takes a mutex; every handle it returns is
//! **lock-free on the hot path** — a [`Counter`] is one relaxed
//! `fetch_add`, a [`Histogram`] record is one relaxed `fetch_add` into a
//! log bucket. A metric name may be registered repeatedly to obtain
//! per-worker *shards* of the same logical series (one cache line per
//! writer); snapshots merge the shards. Gauges and derived counters are
//! closure-backed, so existing atomics anywhere in the process (cache
//! stats, generation epochs, connection gauges) surface in a scrape
//! without being rehomed.
//!
//! ## Naming scheme
//!
//! `sling_<subsystem>_<what>[_total|_ns]` in `[a-z0-9_]`: `_total`
//! suffixes monotone counters, `_ns` suffixes nanosecond histograms
//! (rendered with an exact power-of-two `le` ladder — see
//! [`cumulative_below_pow2`]). Renders are sorted by metric name, so
//! both expositions are byte-stable for a given set of values.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::histogram::{
    approx_sum_ns, cumulative_below_pow2, report_from_counts, Histogram, LatencyReport, BUCKETS,
};

/// Exponents of the fixed `le` ladder used when rendering histograms:
/// powers of two from 1 µs to ~17 s. Octave boundaries are bucket
/// boundaries, so every rendered cumulative count is exact.
const LE_EXPONENTS: [u32; 13] = [10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34];

/// A lock-free monotone counter handle (one shard of a named series).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (for tests / disabled paths).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

type ValueFn = Box<dyn Fn() -> u64 + Send + Sync>;
type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

enum Kind {
    /// Owned shards, summed on snapshot.
    Counter(Vec<Arc<AtomicU64>>),
    /// Closure-backed counters reading foreign atomics, summed.
    CounterFn(Vec<ValueFn>),
    /// Closure-backed gauges, summed (a single shard reads verbatim).
    GaugeFn(Vec<GaugeFn>),
    /// Histogram shards, bucket-merged on snapshot.
    Histogram(Vec<Arc<Histogram>>),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) | Kind::CounterFn(_) => "counter",
            Kind::GaugeFn(_) => "gauge",
            Kind::Histogram(_) => "histogram",
        }
    }
}

struct Metric {
    help: String,
    kind: Kind,
}

/// The registry. Cheap to share (`Arc`); see the module docs.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

fn assert_valid_name(name: &str) {
    let ok = !name.is_empty()
        && name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    assert!(ok, "invalid metric name {name:?} (want [a-z_][a-z0-9_]*)");
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn with_metric<R>(
        &self,
        name: &str,
        help: &str,
        new_kind: impl FnOnce() -> Kind,
        join: impl FnOnce(&mut Kind) -> R,
    ) -> R {
        assert_valid_name(name);
        let mut metrics = self.metrics.lock().unwrap();
        let metric = match metrics.entry(name.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(Metric {
                help: help.to_string(),
                kind: new_kind(),
            }),
        };
        join(&mut metric.kind)
    }

    /// Register (or shard) a monotone counter and return its handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.with_metric(
            name,
            help,
            || Kind::Counter(Vec::new()),
            |kind| match kind {
                Kind::Counter(cells) => {
                    let cell = Arc::new(AtomicU64::new(0));
                    cells.push(cell.clone());
                    Counter(cell)
                }
                other => panic!("{name} already registered as {}", other.type_name()),
            },
        )
    }

    /// Register a derived counter that reads an existing atomic/source.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.with_metric(
            name,
            help,
            || Kind::CounterFn(Vec::new()),
            |kind| match kind {
                Kind::CounterFn(fns) => fns.push(Box::new(f)),
                other => panic!("{name} already registered as {}", other.type_name()),
            },
        )
    }

    /// Register a closure-backed gauge (shards are summed).
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        self.with_metric(
            name,
            help,
            || Kind::GaugeFn(Vec::new()),
            |kind| match kind {
                Kind::GaugeFn(fns) => fns.push(Box::new(f)),
                other => panic!("{name} already registered as {}", other.type_name()),
            },
        )
    }

    /// Register (or shard) a histogram and return the shard handle.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.with_metric(
            name,
            help,
            || Kind::Histogram(Vec::new()),
            |kind| match kind {
                Kind::Histogram(shards) => {
                    let shard = Arc::new(Histogram::new());
                    shards.push(shard.clone());
                    shard
                }
                other => panic!("{name} already registered as {}", other.type_name()),
            },
        )
    }

    /// Merged value of a (possibly sharded) counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let metrics = self.metrics.lock().unwrap();
        match &metrics.get(name)?.kind {
            Kind::Counter(cells) => Some(cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()),
            Kind::CounterFn(fns) => Some(fns.iter().map(|f| f()).sum()),
            _ => None,
        }
    }

    /// Merged value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let metrics = self.metrics.lock().unwrap();
        match &metrics.get(name)?.kind {
            Kind::GaugeFn(fns) => Some(fns.iter().map(|f| f()).sum()),
            _ => None,
        }
    }

    /// Shard-merged percentile report of a histogram.
    pub fn histogram_report(&self, name: &str) -> Option<LatencyReport> {
        let metrics = self.metrics.lock().unwrap();
        match &metrics.get(name)?.kind {
            Kind::Histogram(shards) => {
                let mut acc = [0u64; BUCKETS];
                for shard in shards {
                    shard.snapshot_into(&mut acc);
                }
                Some(report_from_counts(&acc))
            }
            _ => None,
        }
    }

    /// Render the Prometheus text exposition format: `# HELP` / `# TYPE`
    /// per family, families sorted by name, histograms on the fixed
    /// power-of-two `le` ladder. Byte-stable for a given value set.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let _ = writeln!(out, "# HELP {name} {}", metric.help);
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind.type_name());
            match &metric.kind {
                Kind::Counter(cells) => {
                    let v: u64 = cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                    let _ = writeln!(out, "{name} {v}");
                }
                Kind::CounterFn(fns) => {
                    let v: u64 = fns.iter().map(|f| f()).sum();
                    let _ = writeln!(out, "{name} {v}");
                }
                Kind::GaugeFn(fns) => {
                    let v: f64 = fns.iter().map(|f| f()).sum();
                    let _ = writeln!(out, "{name} {v}");
                }
                Kind::Histogram(shards) => {
                    let mut acc = [0u64; BUCKETS];
                    for shard in shards {
                        shard.snapshot_into(&mut acc);
                    }
                    let count: u64 = acc.iter().sum();
                    for &exp in &LE_EXPONENTS {
                        let le = 1u64 << exp;
                        let cum = cumulative_below_pow2(&acc, exp);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{name}_sum {}", approx_sum_ns(&acc));
                    let _ = writeln!(out, "{name}_count {count}");
                }
            }
        }
        out
    }

    /// Render a JSON snapshot with a fixed key order (sorted by metric
    /// name; histogram sub-keys in a fixed order), one metric per line.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, metric) in metrics.iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match &metric.kind {
                Kind::Counter(cells) => {
                    let v: u64 = cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                    let _ = write!(out, "  \"{name}\": {v}");
                }
                Kind::CounterFn(fns) => {
                    let v: u64 = fns.iter().map(|f| f()).sum();
                    let _ = write!(out, "  \"{name}\": {v}");
                }
                Kind::GaugeFn(fns) => {
                    let v: f64 = fns.iter().map(|f| f()).sum();
                    let _ = write!(out, "  \"{name}\": {v}");
                }
                Kind::Histogram(shards) => {
                    let mut acc = [0u64; BUCKETS];
                    for shard in shards {
                        shard.snapshot_into(&mut acc);
                    }
                    let r = report_from_counts(&acc);
                    let _ = write!(
                        out,
                        "  \"{name}\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                         \"p999_us\": {}}}",
                        r.count, r.p50_us, r.p99_us, r.p999_us
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sling_test_ops_total", "ops");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter_value("sling_test_ops_total"), Some(5));

        reg.counter_fn("sling_test_derived_total", "derived", || 17);
        assert_eq!(reg.counter_value("sling_test_derived_total"), Some(17));

        reg.gauge_fn("sling_test_depth", "depth", || 2.5);
        reg.gauge_fn("sling_test_depth", "depth", || 1.5);
        assert_eq!(reg.gauge_value("sling_test_depth"), Some(4.0));

        let h = reg.histogram("sling_test_wait_ns", "wait");
        h.record(Duration::from_micros(10));
        let r = reg.histogram_report("sling_test_wait_ns").unwrap();
        assert_eq!(r.count, 1);
        assert_eq!(reg.counter_value("sling_test_wait_ns"), None);
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn sharded_counters_sum_exactly_across_threads() {
        // N threads hammering per-thread shards of one series: the
        // snapshot must equal the sum of per-thread contributions.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = reg.counter("sling_test_hammer_total", "hammered");
                let h = reg.histogram("sling_test_hammer_ns", "hammered");
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record_ns(i % 4096);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(reg.counter_value("sling_test_hammer_total"), Some(total));
        assert_eq!(
            reg.histogram_report("sling_test_hammer_ns").unwrap().count,
            total
        );
    }

    #[test]
    fn prometheus_render_golden() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sling_test_b_total", "b counter");
        c.add(3);
        reg.gauge_fn("sling_test_a_gauge", "a gauge", || 1.5);
        let h = reg.histogram("sling_test_c_ns", "c histogram");
        h.record_ns(1000); // below 1 µs
        h.record_ns(3000); // in (1024, 4096]
        let golden = "\
# HELP sling_test_a_gauge a gauge
# TYPE sling_test_a_gauge gauge
sling_test_a_gauge 1.5
# HELP sling_test_b_total b counter
# TYPE sling_test_b_total counter
sling_test_b_total 3
# HELP sling_test_c_ns c histogram
# TYPE sling_test_c_ns histogram
sling_test_c_ns_bucket{le=\"1024\"} 1
sling_test_c_ns_bucket{le=\"4096\"} 2
sling_test_c_ns_bucket{le=\"16384\"} 2
sling_test_c_ns_bucket{le=\"65536\"} 2
sling_test_c_ns_bucket{le=\"262144\"} 2
sling_test_c_ns_bucket{le=\"1048576\"} 2
sling_test_c_ns_bucket{le=\"4194304\"} 2
sling_test_c_ns_bucket{le=\"16777216\"} 2
sling_test_c_ns_bucket{le=\"67108864\"} 2
sling_test_c_ns_bucket{le=\"268435456\"} 2
sling_test_c_ns_bucket{le=\"1073741824\"} 2
sling_test_c_ns_bucket{le=\"4294967296\"} 2
sling_test_c_ns_bucket{le=\"17179869184\"} 2
sling_test_c_ns_bucket{le=\"+Inf\"} 2
sling_test_c_ns_sum 3776
sling_test_c_ns_count 2
";
        assert_eq!(reg.render_prometheus(), golden);
        // Rendering twice with no writes in between is byte-identical.
        assert_eq!(reg.render_prometheus(), golden);
    }

    #[test]
    fn json_snapshot_has_fixed_key_order() {
        let reg = MetricsRegistry::new();
        reg.counter("sling_test_z_total", "z").inc();
        reg.counter("sling_test_a_total", "a").add(2);
        let h = reg.histogram("sling_test_m_ns", "m");
        h.record(Duration::from_micros(8));
        let json = reg.render_json();
        let a = json.find("sling_test_a_total").unwrap();
        let m = json.find("sling_test_m_ns").unwrap();
        let z = json.find("sling_test_z_total").unwrap();
        assert!(a < m && m < z, "keys not sorted: {json}");
        assert!(json.contains("\"sling_test_a_total\": 2"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("sling_test_dup", "c");
        reg.histogram("sling_test_dup", "h");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        MetricsRegistry::new().counter("Sling-Bad", "nope");
    }
}
