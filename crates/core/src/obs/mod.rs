//! # obs — unified observability
//!
//! One subsystem for everything the stack can tell an operator:
//!
//! * [`registry`] — the [`MetricsRegistry`] of named counters, gauges,
//!   and histograms, with a stable Prometheus text renderer and a
//!   fixed-key-order JSON snapshot;
//! * [`histogram`] — the lock-free log-bucketed [`Histogram`] (shared
//!   with the server's latency reporting; one implementation in tree);
//! * [`trace`] — the zero-cost-when-disabled per-query [`QueryTrace`]
//!   stage breakdown and the ring-buffered [`SlowQueryLog`].
//!
//! ## Kernel and lifecycle counters
//!
//! The query kernels and lifecycle sit *below* any server, and their
//! hot paths must not thread a registry reference through every
//! backend call. They instead increment the process-wide relaxed
//! atomics in [`KERNEL`] / [`LIFECYCLE`] — one `fetch_add` per event,
//! loop-local accumulation where an event would land inside an inner
//! loop — and [`register_process_metrics`] surfaces them in a registry
//! as closure-backed counters. The counters are monotone and
//! process-global: rates and deltas, not per-engine gauges.

pub mod histogram;
pub mod registry;
pub mod trace;

pub use histogram::{merge_report, Histogram, LatencyReport};
pub use registry::{Counter, MetricsRegistry};
pub use trace::{QueryTrace, SlowQueryLog, SlowQueryRecord, StageNanos};

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide kernel event counters (see module docs).
#[derive(Debug)]
pub struct KernelCounters {
    /// `RestoreCache` lookups that returned a memoized full list.
    pub restore_cache_hits: AtomicU64,
    /// `RestoreCache` lookups that fell through to recomputation.
    pub restore_cache_misses: AtomicU64,
    /// Compressed blocks decoded (v2/v3 mmap + disk backends).
    pub block_decodes: AtomicU64,
    /// Bytes fetched from backend storage (block payloads, positioned
    /// disk reads) on behalf of queries.
    pub backend_bytes_read: AtomicU64,
    /// Intersect-merges dispatched to the galloping kernel (≥8× skew).
    pub merge_gallop: AtomicU64,
    /// Intersect-merges dispatched to the linear kernel.
    pub merge_linear: AtomicU64,
    /// Frontier bitset words swept by Algorithm-6 propagation.
    pub frontier_words: AtomicU64,
    /// `BufferedDiskStore` pool hits.
    pub buffered_disk_hits: AtomicU64,
    /// `BufferedDiskStore` pool misses (positioned read + admit).
    pub buffered_disk_misses: AtomicU64,
    /// `BufferedDiskStore` entries evicted to respect the budget.
    pub buffered_disk_evictions: AtomicU64,
}

impl KernelCounters {
    const fn new() -> Self {
        KernelCounters {
            restore_cache_hits: AtomicU64::new(0),
            restore_cache_misses: AtomicU64::new(0),
            block_decodes: AtomicU64::new(0),
            backend_bytes_read: AtomicU64::new(0),
            merge_gallop: AtomicU64::new(0),
            merge_linear: AtomicU64::new(0),
            frontier_words: AtomicU64::new(0),
            buffered_disk_hits: AtomicU64::new(0),
            buffered_disk_misses: AtomicU64::new(0),
            buffered_disk_evictions: AtomicU64::new(0),
        }
    }

    /// One relaxed increment; the kernels call this, never `fetch_add`
    /// directly, so every hook site reads the same way.
    #[inline]
    pub fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// One relaxed bulk add (for loop-local accumulations).
    #[inline]
    pub fn bump_by(cell: &AtomicU64, n: u64) {
        if n > 0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// The kernel counters. Static so `HpStore` impls and kernels can
/// increment without carrying a registry handle.
pub static KERNEL: KernelCounters = KernelCounters::new();

/// Process-wide index-lifecycle event counters.
#[derive(Debug)]
pub struct LifecycleCounters {
    /// Generations published into a `GenerationStore`.
    pub publishes: AtomicU64,
    /// `CURRENT` promotions (including rollbacks).
    pub promotions: AtomicU64,
    /// Retired generations removed by GC.
    pub gc_removed: AtomicU64,
    /// Warm-up priming passes run against a fresh engine.
    pub warmups: AtomicU64,
    /// Hot keys primed across all warm-up passes.
    pub warmup_keys: AtomicU64,
}

impl LifecycleCounters {
    const fn new() -> Self {
        LifecycleCounters {
            publishes: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            gc_removed: AtomicU64::new(0),
            warmups: AtomicU64::new(0),
            warmup_keys: AtomicU64::new(0),
        }
    }
}

/// The lifecycle counters (see [`KERNEL`] for the pattern).
pub static LIFECYCLE: LifecycleCounters = LifecycleCounters::new();

/// Process-wide client-resilience counters. `RetryingClient` lives in
/// `sling-server`, but the counters sit here so in-process clients
/// (benches, chaos tests) surface through the same registry the server
/// exports — `sling_retries_total` shows up in the server's own
/// `METRICS` when the harness shares the process.
#[derive(Debug)]
pub struct ClientCounters {
    /// Requests re-sent after a retryable failure.
    pub retries: AtomicU64,
    /// Connections re-established after an IO failure.
    pub reconnects: AtomicU64,
    /// Requests abandoned after exhausting the retry budget.
    pub giveups: AtomicU64,
}

impl ClientCounters {
    const fn new() -> Self {
        ClientCounters {
            retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
        }
    }
}

/// The client-resilience counters (see [`KERNEL`] for the pattern).
pub static CLIENT: ClientCounters = ClientCounters::new();

/// Process-wide traffic-trace recorder counters (the
/// [`crate::workload`] capture pipeline in `sling-server`): bumped by
/// whoever writes trace records, surfaced as `sling_trace_*` and in the
/// server's `STATS` line.
#[derive(Debug, Default)]
pub struct WorkloadCounters {
    /// Trace records captured (written to the recorder ring).
    pub trace_records: AtomicU64,
    /// Trace records dropped (ring overwritten before draining, or
    /// recorder contention).
    pub trace_dropped: AtomicU64,
    /// Trace bytes written to the capture file.
    pub trace_bytes: AtomicU64,
}

impl WorkloadCounters {
    const fn new() -> Self {
        WorkloadCounters {
            trace_records: AtomicU64::new(0),
            trace_dropped: AtomicU64::new(0),
            trace_bytes: AtomicU64::new(0),
        }
    }
}

/// The workload-capture counters (see [`KERNEL`] for the pattern).
pub static WORKLOAD: WorkloadCounters = WorkloadCounters::new();

macro_rules! register_static_counters {
    ($reg:expr, $src:expr, { $($name:literal => $field:ident: $help:literal,)+ }) => {
        $($reg.counter_fn($name, $help, || $src.$field.load(Ordering::Relaxed));)+
    };
}

/// Register the process-wide kernel and lifecycle counters into `reg`
/// under the `sling_kernel_*` / `sling_lifecycle_*` families.
pub fn register_process_metrics(reg: &MetricsRegistry) {
    register_static_counters!(reg, KERNEL, {
        "sling_kernel_restore_cache_hits_total" => restore_cache_hits:
            "RestoreCache lookups resolved to a memoized full list",
        "sling_kernel_restore_cache_misses_total" => restore_cache_misses:
            "RestoreCache lookups that recomputed the restore",
        "sling_kernel_block_decodes_total" => block_decodes:
            "compressed index blocks decoded",
        "sling_kernel_backend_bytes_read_total" => backend_bytes_read:
            "bytes fetched from backend storage for queries",
        "sling_kernel_merge_gallop_total" => merge_gallop:
            "intersect-merges dispatched to the galloping kernel",
        "sling_kernel_merge_linear_total" => merge_linear:
            "intersect-merges dispatched to the linear kernel",
        "sling_kernel_frontier_words_total" => frontier_words:
            "frontier bitset words swept by Algorithm-6 propagation",
        "sling_buffered_disk_hits_total" => buffered_disk_hits:
            "BufferedDiskStore pool hits",
        "sling_buffered_disk_misses_total" => buffered_disk_misses:
            "BufferedDiskStore pool misses",
        "sling_buffered_disk_evictions_total" => buffered_disk_evictions:
            "BufferedDiskStore pool evictions",
    });
    register_static_counters!(reg, LIFECYCLE, {
        "sling_lifecycle_publishes_total" => publishes:
            "index generations published",
        "sling_lifecycle_promotions_total" => promotions:
            "CURRENT promotions (including rollbacks)",
        "sling_lifecycle_gc_removed_total" => gc_removed:
            "retired generations removed by GC",
        "sling_lifecycle_warmups_total" => warmups:
            "warm-up priming passes",
        "sling_lifecycle_warmup_keys_total" => warmup_keys:
            "hot keys primed during warm-up",
    });
    register_static_counters!(reg, CLIENT, {
        "sling_retries_total" => retries:
            "client requests re-sent after a retryable failure",
        "sling_client_reconnects_total" => reconnects:
            "client connections re-established after an IO failure",
        "sling_client_giveups_total" => giveups:
            "client requests abandoned after exhausting retries",
    });
    register_static_counters!(reg, WORKLOAD, {
        "sling_trace_records_total" => trace_records:
            "traffic-trace records captured",
        "sling_trace_records_dropped_total" => trace_dropped:
            "traffic-trace records dropped by the recorder",
        "sling_trace_bytes_total" => trace_bytes:
            "traffic-trace bytes written",
    });
    reg.counter_fn(
        "sling_faults_injected_total",
        "faults injected by the deterministic fault registry",
        crate::faults::injected_total,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_metrics_register_and_read() {
        let reg = MetricsRegistry::new();
        register_process_metrics(&reg);
        // Statics are process-global, so only assert presence and
        // monotonicity — other tests may be incrementing concurrently.
        let before = reg
            .counter_value("sling_kernel_merge_linear_total")
            .expect("kernel counter registered");
        KernelCounters::bump(&KERNEL.merge_linear);
        let after = reg
            .counter_value("sling_kernel_merge_linear_total")
            .unwrap();
        assert!(after > before);
        assert!(reg
            .counter_value("sling_lifecycle_promotions_total")
            .is_some());
        let text = reg.render_prometheus();
        assert!(text.contains("sling_kernel_frontier_words_total"));
        assert!(text.contains("sling_buffered_disk_hits_total"));
    }

    #[test]
    fn bump_by_zero_is_a_no_op() {
        let cell = AtomicU64::new(5);
        KernelCounters::bump_by(&cell, 0);
        assert_eq!(cell.load(Ordering::Relaxed), 5);
        KernelCounters::bump_by(&cell, 3);
        assert_eq!(cell.load(Ordering::Relaxed), 8);
    }
}
