//! Lock-free log-bucketed histograms — the one histogram implementation
//! shared by the whole tree (the server re-exports it as its latency
//! histogram).
//!
//! Each writer (a server worker, a bench thread) owns one [`Histogram`]
//! shard and records into it with a single relaxed `fetch_add` per
//! sample — no locks, no shared cache lines between writers on the hot
//! path. Readers merge the shards on demand: `STATS` and `METRICS`
//! extract p50/p99/p999 via [`merge_report`] / [`report_from_counts`],
//! and the Prometheus renderer walks exact power-of-two cumulative
//! counts via [`cumulative_below_pow2`].
//!
//! Buckets are logarithmic with four sub-buckets per power-of-two
//! octave of nanoseconds, so every reported quantile is within ~12% of
//! the true value across the full ns→minutes range — plenty for a
//! serving dashboard, and far cheaper than recording raw samples
//! server-side. (Exact client-side percentiles come from
//! `sling bench-serve`, which keeps every sample.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Buckets: 8 unit buckets under 8 ns, then 4 sub-buckets per octave.
pub const BUCKETS: usize = 256;

/// Merged percentile snapshot of one or more histograms.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyReport {
    /// Samples recorded.
    pub count: u64,
    /// Median, µs (bucket midpoint).
    pub p50_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
}

/// One writer's histogram shard.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a nanosecond measurement.
#[inline]
fn bucket_of(n: u64) -> usize {
    if n < 8 {
        return n as usize;
    }
    let exp = 63 - n.leading_zeros() as usize; // >= 3
    let sub = ((n >> (exp - 2)) & 3) as usize; // top two mantissa bits
    (8 + (exp - 3) * 4 + sub).min(BUCKETS - 1)
}

/// Midpoint nanosecond value represented by bucket `idx`.
pub fn bucket_midpoint(idx: usize) -> f64 {
    if idx < 8 {
        return idx as f64;
    }
    // Saturate the octave: bucket_of never emits an index above 251
    // (exp 63, sub 3), but the defensive clamps that *name* the last
    // buckets must not compute `1u64 << 64`.
    let exp = (3 + (idx - 8) / 4).min(63);
    let sub = (idx - 8) % 4;
    let quarter = (1u64 << exp) as f64 / 4.0;
    (1u64 << exp) as f64 + sub as f64 * quarter + quarter / 2.0
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
        }
    }

    /// Record one duration (relaxed; exact ordering is not worth a
    /// fence on the hot path).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one raw nanosecond (or other log-scaled) value.
    #[inline]
    pub fn record_ns(&self, n: u64) {
        self.buckets[bucket_of(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Add this shard's bucket counts into `acc`.
    pub fn snapshot_into(&self, acc: &mut [u64; BUCKETS]) {
        for (a, b) in acc.iter_mut().zip(self.buckets.iter()) {
            *a += b.load(Ordering::Relaxed);
        }
    }
}

/// Sum of samples below `2^exp` ns. Exact, not interpolated: octave
/// boundaries are bucket boundaries, so the cumulative count at any
/// power of two is a prefix sum of whole buckets. This is what makes a
/// stable Prometheus `le` ladder possible on a log-bucketed histogram.
pub fn cumulative_below_pow2(acc: &[u64; BUCKETS], exp: u32) -> u64 {
    let end = if exp < 3 {
        1usize << exp
    } else {
        (8 + (exp as usize - 3) * 4).min(BUCKETS)
    };
    acc[..end].iter().sum()
}

/// Approximate sum of all recorded values (bucket midpoints), in ns.
pub fn approx_sum_ns(acc: &[u64; BUCKETS]) -> f64 {
    acc.iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(idx, &c)| c as f64 * bucket_midpoint(idx))
        .sum()
}

/// Extract the report quantiles from merged bucket counts.
pub fn report_from_counts(acc: &[u64; BUCKETS]) -> LatencyReport {
    let count: u64 = acc.iter().sum();
    if count == 0 {
        return LatencyReport::default();
    }
    let quantile = |q: f64| -> f64 {
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, &c) in acc.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_midpoint(idx) / 1e3;
            }
        }
        bucket_midpoint(BUCKETS - 1) / 1e3
    };
    LatencyReport {
        count,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        p999_us: quantile(0.999),
    }
}

/// Merge histogram shards and extract the report quantiles.
pub fn merge_report<'a, I>(histograms: I) -> LatencyReport
where
    I: IntoIterator<Item = &'a Histogram>,
{
    let mut acc = [0u64; BUCKETS];
    for h in histograms {
        h.snapshot_into(&mut acc);
    }
    report_from_counts(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        let mut prev = 0usize;
        for shift in 0..60 {
            let n = 1u64 << shift;
            let b = bucket_of(n);
            assert!(b >= prev, "bucket not monotone at 2^{shift}");
            prev = b;
            // The midpoint stays within the bucket's octave.
            let mid = bucket_midpoint(b);
            if n >= 8 {
                assert!(
                    mid >= n as f64 && mid <= 2.0 * n as f64,
                    "2^{shift}: mid {mid}"
                );
            }
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
        // The defensive clamps name the last buckets; computing their
        // midpoint must not overflow the shift (exp saturates at 63).
        for idx in 248..BUCKETS {
            assert!(bucket_midpoint(idx).is_finite());
        }
    }

    #[test]
    fn quantiles_land_within_bucket_resolution() {
        let h = Histogram::new();
        // 1000 samples at ~10 µs, 10 at ~1 ms: p50 ≈ 10 µs, p999 ≈ 1 ms.
        for _ in 0..1000 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        let r = merge_report(std::slice::from_ref(&h));
        assert_eq!(r.count, 1010);
        assert!((r.p50_us - 10.0).abs() / 10.0 < 0.25, "p50 {}", r.p50_us);
        assert!(
            (r.p999_us - 1000.0).abs() / 1000.0 < 0.25,
            "p999 {}",
            r.p999_us
        );
        assert!(r.p99_us <= r.p999_us);
    }

    #[test]
    fn empty_histograms_report_zeros() {
        let r = merge_report(&[Histogram::new(), Histogram::new()]);
        assert_eq!(r, LatencyReport::default());
    }

    #[test]
    fn merge_sums_across_workers() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(5));
        assert_eq!(merge_report(&[a, b]).count, 2);
    }

    #[test]
    fn cumulative_pow2_is_exact_at_octave_boundaries() {
        let h = Histogram::new();
        // 3 samples below 1024 ns, 2 in [1024, 4096), 1 far above.
        h.record_ns(7);
        h.record_ns(500);
        h.record_ns(1000);
        h.record_ns(1024);
        h.record_ns(4000);
        h.record_ns(1 << 20);
        let mut acc = [0u64; BUCKETS];
        h.snapshot_into(&mut acc);
        assert_eq!(cumulative_below_pow2(&acc, 10), 3);
        assert_eq!(cumulative_below_pow2(&acc, 12), 5);
        assert_eq!(cumulative_below_pow2(&acc, 21), 6);
        assert_eq!(cumulative_below_pow2(&acc, 0), 0);
        assert_eq!(cumulative_below_pow2(&acc, 2), 0);
        let sum = approx_sum_ns(&acc);
        assert!(sum > 0.0 && sum.is_finite());
    }
}
