//! Per-query stage tracing and the ring-buffered slow-query log.
//!
//! A [`QueryTrace`] lives inside every
//! [`QueryWorkspace`](crate::QueryWorkspace) (and, through it, every
//! `SingleSourceWorkspace`). Disabled — the default — it is **zero
//! cost**: every hook is one predictable branch on a bool, no clock
//! reads, no atomics. Enabled, the kernels charge wall time to four
//! stages:
//!
//! * `entry_fetch` — resolving backend entry runs ([`EntryAccess`]
//!   borrows, positioned disk reads, block decodes),
//! * `restore` — the §5.2 recomputation / §5.3 mark expansion
//!   (including `RestoreCache` resolution),
//! * `merge` — the Algorithm-3 intersect-merge (linear or galloping),
//! * `propagate` — the Algorithm-6 frontier propagation.
//!
//! Callers drain the accumulated [`StageNanos`] per query
//! ([`QueryTrace::take`]) and feed them to stage histograms, the
//! slow-query log, or a bench breakdown table.
//!
//! [`EntryAccess`]: crate::store::EntryAccess

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Wall time charged to each kernel stage, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Backend entry-run resolution (fetch/decode/read).
    pub entry_fetch: u64,
    /// §5.2 restore + §5.3 expansion (incl. RestoreCache resolution).
    pub restore: u64,
    /// Algorithm-3 intersect-merge.
    pub merge: u64,
    /// Algorithm-6 propagation.
    pub propagate: u64,
}

impl StageNanos {
    /// Sum of all stage times.
    pub fn total(&self) -> u64 {
        self.entry_fetch + self.restore + self.merge + self.propagate
    }

    /// Accumulate another breakdown into this one.
    pub fn add(&mut self, other: &StageNanos) {
        self.entry_fetch += other.entry_fetch;
        self.restore += other.restore;
        self.merge += other.merge;
        self.propagate += other.propagate;
    }
}

/// Per-workspace stage tracer. See the module docs; disabled by default.
#[derive(Debug, Default)]
pub struct QueryTrace {
    enabled: bool,
    stages: StageNanos,
}

impl QueryTrace {
    /// Enable or disable tracing (also clears any accumulated stages).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.stages = StageNanos::default();
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start a stage timer; `None` (no clock read) when disabled.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn elapsed(t0: Option<Instant>) -> u64 {
        match t0 {
            Some(t0) => t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            None => 0,
        }
    }

    #[inline]
    pub fn add_entry_fetch(&mut self, t0: Option<Instant>) {
        self.stages.entry_fetch += Self::elapsed(t0);
    }

    #[inline]
    pub fn add_restore(&mut self, t0: Option<Instant>) {
        self.stages.restore += Self::elapsed(t0);
    }

    #[inline]
    pub fn add_merge(&mut self, t0: Option<Instant>) {
        self.stages.merge += Self::elapsed(t0);
    }

    #[inline]
    pub fn add_propagate(&mut self, t0: Option<Instant>) {
        self.stages.propagate += Self::elapsed(t0);
    }

    /// Merge an externally measured breakdown (e.g. from a nested
    /// workspace) into this trace.
    pub fn absorb(&mut self, stages: &StageNanos) {
        if self.enabled {
            self.stages.add(stages);
        }
    }

    /// Drain the breakdown accumulated since the last `take`.
    pub fn take(&mut self) -> StageNanos {
        std::mem::take(&mut self.stages)
    }
}

/// One structured slow-query record: everything an operator needs to
/// attribute a slow request without re-running it.
#[derive(Clone, Debug)]
pub struct SlowQueryRecord {
    /// Protocol verb (`PAIR`, `SOURCE`, `TOPK`, ...).
    pub verb: &'static str,
    /// Request key, e.g. `3,77` for a pair or `3` for a source.
    pub key: String,
    /// Index generation serving the query.
    pub generation: String,
    /// Engine epoch at query time.
    pub epoch: u64,
    /// End-to-end handler time.
    pub total: Duration,
    /// Per-stage kernel breakdown.
    pub stages: StageNanos,
}

impl fmt::Display for SlowQueryRecord {
    /// One line, `key=value` pairs in a fixed order — grep-friendly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slow verb={} key={} generation={} epoch={} total_us={} entry_fetch_us={} \
             restore_us={} merge_us={} propagate_us={}",
            self.verb,
            self.key,
            self.generation,
            self.epoch,
            self.total.as_micros(),
            self.stages.entry_fetch / 1_000,
            self.stages.restore / 1_000,
            self.stages.merge / 1_000,
            self.stages.propagate / 1_000,
        )
    }
}

/// Ring buffer of the most recent slow queries, with a configurable
/// admission threshold. `record` is called per request, so the common
/// fast-path (under threshold) is one comparison — no lock.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold: Duration,
    capacity: usize,
    ring: Mutex<VecDeque<SlowQueryRecord>>,
    admitted: std::sync::atomic::AtomicU64,
}

impl SlowQueryLog {
    /// `threshold = Duration::ZERO` disables the log entirely.
    pub fn new(threshold: Duration, capacity: usize) -> Self {
        SlowQueryLog {
            threshold,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            admitted: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Admit `record` if it is at or above threshold, evicting the
    /// oldest entry once the ring is full.
    pub fn record(&self, record: SlowQueryRecord) {
        if self.threshold.is_zero() || record.total < self.threshold {
            return;
        }
        self.admitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Total records admitted since startup (including evicted ones).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Oldest-first snapshot of the retained records.
    pub fn snapshot(&self) -> Vec<SlowQueryRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(verb: &'static str, total_us: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            verb,
            key: "3,77".to_string(),
            generation: "gen-0001".to_string(),
            epoch: 2,
            total: Duration::from_micros(total_us),
            stages: StageNanos {
                entry_fetch: 1_000,
                restore: 2_000,
                merge: 3_000,
                propagate: 0,
            },
        }
    }

    #[test]
    fn disabled_trace_reads_no_clock_and_accumulates_nothing() {
        let mut t = QueryTrace::default();
        assert!(!t.is_enabled());
        let timer = t.timer();
        assert!(timer.is_none());
        t.add_merge(timer);
        t.add_entry_fetch(None);
        assert_eq!(t.take(), StageNanos::default());
    }

    #[test]
    fn enabled_trace_charges_stages() {
        let mut t = QueryTrace::default();
        t.set_enabled(true);
        let timer = t.timer();
        assert!(timer.is_some());
        std::thread::sleep(Duration::from_millis(1));
        t.add_restore(timer);
        let stages = t.take();
        assert!(stages.restore >= 1_000_000, "restore {}", stages.restore);
        assert_eq!(stages.merge, 0);
        // take() drained it.
        assert_eq!(t.take(), StageNanos::default());
    }

    #[test]
    fn slow_log_respects_threshold() {
        let log = SlowQueryLog::new(Duration::from_micros(100), 8);
        log.record(rec("PAIR", 99));
        assert_eq!(log.snapshot().len(), 0);
        log.record(rec("PAIR", 100));
        log.record(rec("SOURCE", 5_000));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].verb, "PAIR");
        assert_eq!(log.admitted(), 2);
        // Zero threshold disables entirely.
        let off = SlowQueryLog::new(Duration::ZERO, 8);
        off.record(rec("PAIR", u64::MAX >> 20));
        assert_eq!(off.snapshot().len(), 0);
    }

    #[test]
    fn slow_log_ring_evicts_oldest() {
        let log = SlowQueryLog::new(Duration::from_micros(1), 3);
        for i in 0..5u64 {
            let mut r = rec("PAIR", 10 + i);
            r.epoch = i;
            log.record(r);
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        let epochs: Vec<u64> = snap.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4], "oldest evicted first");
        assert_eq!(log.admitted(), 5);
    }

    #[test]
    fn record_renders_one_grepable_line() {
        let line = rec("TOPK", 1234).to_string();
        assert_eq!(
            line,
            "slow verb=TOPK key=3,77 generation=gen-0001 epoch=2 total_us=1234 \
             entry_fetch_us=1 restore_us=2 merge_us=3 propagate_us=0"
        );
        assert!(!line.contains('\n'));
    }
}
