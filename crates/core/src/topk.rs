//! Top-k single-source SimRank queries.
//!
//! The paper's §8 surveys top-k SimRank queries as a major related query
//! type; the SLING index supports them directly. This module provides two
//! query strategies on top of Algorithm 6:
//!
//! * [`SlingIndex::top_k_heap`] — run the full single-source query, then
//!   select the k best in `O(n log k)` with a bounded min-heap instead of
//!   sorting all `n` scores.
//! * [`SlingIndex::top_k_approx`] — an early-terminating variant. The
//!   step-ℓ term of Eq. (13) contributes at most `c^ℓ` to *any* pair's
//!   score (each hitting-probability row sums to `(√c)^ℓ` and `d_k ≤ 1`),
//!   so once the steps still unprocessed can contribute at most `slack`,
//!   propagation stops. Every returned score is then within `slack` of the
//!   full Algorithm-6 estimate, and since deep steps are the expensive
//!   ones to propagate, the saving is real on graphs with long HP tails.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sling_graph::{DiGraph, NodeId};

use crate::error::SlingError;
use crate::index::SlingIndex;
use crate::single_source::{single_source_with_cutoff, SingleSourceWorkspace};
use crate::store::{EngineRef, HpStore};

/// A `(score, node)` pair ordered by descending score with ascending
/// node-id tie-breaking — "greater" means "ranks higher".
#[derive(Clone, Copy, Debug, PartialEq)]
struct Ranked {
    score: f64,
    node: u32,
}

impl Eq for Ranked {}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // Scores are finite (clamped to [0, 1] by the query paths).
        self.score
            .partial_cmp(&other.score)
            .expect("SimRank scores are finite")
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Select the `k` best `(node, score)` pairs from a dense score vector,
/// excluding `exclude` and zero scores, in `O(n log k)`. Public so
/// external harnesses (the CLI's `bench-query`, the criterion benches)
/// can compose it with the buffer-reusing single-source APIs.
pub fn select_top_k(scores: &[f64], exclude: Option<NodeId>, k: usize) -> Vec<(NodeId, f64)> {
    if k == 0 {
        return Vec::new();
    }
    // Min-heap of the k best seen so far: `Reverse` puts the worst kept
    // candidate at the root for O(log k) eviction.
    let mut heap: BinaryHeap<std::cmp::Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
    for (i, &score) in scores.iter().enumerate() {
        if score <= 0.0 || Some(NodeId::from_index(i)) == exclude {
            continue;
        }
        let cand = Ranked {
            score,
            node: i as u32,
        };
        if heap.len() < k {
            heap.push(std::cmp::Reverse(cand));
        } else if cand > heap.peek().expect("heap non-empty").0 {
            heap.pop();
            heap.push(std::cmp::Reverse(cand));
        }
    }
    let mut out: Vec<(NodeId, f64)> = heap
        .into_iter()
        .map(|std::cmp::Reverse(r)| (NodeId(r.node), r.score))
        .collect();
    out.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

impl SlingIndex {
    /// Top-k most similar nodes to `u` (excluding `u`), selected with a
    /// bounded heap. Result is identical to [`SlingIndex::top_k`] but the
    /// selection step costs `O(n log k)` instead of `O(n log n)`.
    ///
    /// ```
    /// use sling_core::{SlingConfig, SlingIndex};
    /// use sling_graph::generators::two_cliques_bridge;
    ///
    /// let g = two_cliques_bridge(5);
    /// let index = SlingIndex::build(&g, &SlingConfig::from_epsilon(0.6, 0.05)).unwrap();
    /// let top = index.top_k_heap(&g, 0u32.into(), 3);
    /// assert_eq!(top.len(), 3);
    /// assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    /// ```
    pub fn top_k_heap(&self, graph: &DiGraph, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let scores = self.single_source(graph, u);
        select_top_k(&scores, Some(u), k)
    }

    /// Early-terminating top-k: stops propagating Algorithm 6's step runs
    /// once the unprocessed steps can add at most `slack` to any score.
    ///
    /// Each returned score `s` underestimates the full Algorithm-6 result
    /// by at most `slack`, so with the index's ε guarantee the total error
    /// versus true SimRank is at most `ε + slack`. With `slack = 0.0` this
    /// is exactly [`SlingIndex::top_k_heap`].
    pub fn top_k_approx(
        &self,
        graph: &DiGraph,
        u: NodeId,
        k: usize,
        slack: f64,
    ) -> Vec<(NodeId, f64)> {
        let mut ws = SingleSourceWorkspace::new();
        let mut scores = Vec::new();
        self.single_source_truncated(graph, &mut ws, u, slack, &mut scores);
        select_top_k(&scores, Some(u), k)
    }

    /// Algorithm 6 with early termination: skip step runs whose maximum
    /// possible remaining contribution (`Σ_{ℓ' ≥ ℓ} c^ℓ' = c^ℓ/(1-c)`)
    /// is at most `slack`. Returns the residual bound that was dropped
    /// (0.0 when every stored step was processed).
    pub fn single_source_truncated(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        slack: f64,
        out: &mut Vec<f64>,
    ) -> f64 {
        debug_assert_eq!(graph.num_nodes(), self.num_nodes, "wrong graph for index");
        single_source_truncated_core(self.engine_ref(), graph, ws, u, slack, out)
            .expect("in-memory HP store cannot fail")
    }
}

/// Early-terminating Algorithm 6 over any storage backend (see
/// [`SlingIndex::single_source_truncated`]): maps `slack` to a step
/// cutoff, then runs the shared streaming driver
/// ([`single_source_with_cutoff`]).
pub(crate) fn single_source_truncated_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut SingleSourceWorkspace,
    u: NodeId,
    slack: f64,
    out: &mut Vec<f64>,
) -> Result<f64, SlingError> {
    let c = e.config.c;
    // Largest step we must still process: the smallest ℓ with
    // c^ℓ/(1-c) ≤ slack can be dropped along with everything deeper.
    let cutoff: Option<u16> = if slack <= 0.0 {
        None
    } else {
        // c^ℓ ≤ slack (1-c)  ⇔  ℓ ≥ log(slack (1-c)) / log(c).
        let bound = (slack * (1.0 - c)).ln() / c.ln();
        if bound <= 0.0 {
            Some(0)
        } else {
            Some(bound.ceil() as u16)
        }
    };
    single_source_with_cutoff(e, graph, ws, u, cutoff, false, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::{barabasi_albert, complete_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    fn build(g: &DiGraph, eps: f64) -> SlingIndex {
        SlingIndex::build(g, &SlingConfig::from_epsilon(C, eps).with_seed(17)).unwrap()
    }

    #[test]
    fn select_top_k_basic() {
        let scores = vec![0.1, 0.5, 0.0, 0.5, 0.3];
        let top = select_top_k(&scores, None, 3);
        // Ties broken by ascending node id.
        assert_eq!(
            top,
            vec![(NodeId(1), 0.5), (NodeId(3), 0.5), (NodeId(4), 0.3)]
        );
    }

    #[test]
    fn select_top_k_excludes_and_clips() {
        let scores = vec![0.9, 0.2];
        assert_eq!(
            select_top_k(&scores, Some(NodeId(0)), 5),
            vec![(NodeId(1), 0.2)]
        );
        assert!(select_top_k(&scores, None, 0).is_empty());
    }

    #[test]
    fn heap_matches_sort_based_top_k() {
        let g = barabasi_albert(300, 3, 5).unwrap();
        let idx = build(&g, 0.1);
        for u in [NodeId(0), NodeId(7), NodeId(123)] {
            for k in [1, 5, 50] {
                let sorted = idx.top_k(&g, u, k);
                let heaped = idx.top_k_heap(&g, u, k);
                assert_eq!(sorted, heaped, "u = {u:?}, k = {k}");
            }
        }
    }

    #[test]
    fn approx_with_zero_slack_is_exact() {
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        for u in g.nodes() {
            assert_eq!(idx.top_k_approx(&g, u, 4, 0.0), idx.top_k_heap(&g, u, 4));
        }
    }

    #[test]
    fn approx_scores_within_slack() {
        let g = barabasi_albert(200, 3, 9).unwrap();
        let idx = build(&g, 0.1);
        let slack = 0.02;
        for u in [NodeId(1), NodeId(50), NodeId(150)] {
            let full = idx.single_source(&g, u);
            let mut ws = SingleSourceWorkspace::new();
            let mut truncated = Vec::new();
            let residual = idx.single_source_truncated(&g, &mut ws, u, slack, &mut truncated);
            assert!(residual <= slack + 1e-12);
            for v in g.nodes() {
                let diff = full[v.index()] - truncated[v.index()];
                assert!(
                    (-1e-12..=slack + 1e-12).contains(&diff),
                    "({u:?},{v:?}): full {} vs truncated {}",
                    full[v.index()],
                    truncated[v.index()]
                );
            }
        }
    }

    #[test]
    fn huge_slack_keeps_only_step_zero() {
        // slack ≥ c/(1-c) allows dropping every step except ℓ = 0; the
        // diagonal survives because step 0 always has h(0)(u,u) = 1.
        let g = complete_graph(4);
        let idx = build(&g, 0.1);
        let top = idx.top_k_approx(&g, NodeId(0), 3, C / (1.0 - C) + 0.01);
        // With only step 0 processed, off-diagonal scores vanish.
        assert!(top.iter().all(|&(_, s)| s >= 0.0));
        let mut ws = SingleSourceWorkspace::new();
        let mut scores = Vec::new();
        let residual =
            idx.single_source_truncated(&g, &mut ws, NodeId(0), C / (1.0 - C) + 0.01, &mut scores);
        assert!(residual > 0.0);
        assert_eq!(scores[0], 1.0);
    }

    #[test]
    fn truncated_respects_exact_diagonal_flag() {
        let g = two_cliques_bridge(4);
        let idx = build(&g, 0.1);
        let mut ws = SingleSourceWorkspace::new();
        let mut scores = Vec::new();
        idx.single_source_truncated(&g, &mut ws, NodeId(2), 0.01, &mut scores);
        assert_eq!(scores[2], 1.0);
    }

    #[test]
    fn workspace_clean_after_truncated_query() {
        let g = two_cliques_bridge(4);
        let idx = build(&g, 0.05);
        let mut ws = SingleSourceWorkspace::new();
        let mut a = Vec::new();
        idx.single_source_truncated(&g, &mut ws, NodeId(0), 0.05, &mut a);
        let mut b = Vec::new();
        idx.single_source_truncated(&g, &mut ws, NodeId(0), 0.05, &mut b);
        assert_eq!(a, b);
    }
}
